"""Bench: ablation A1 — visibility-aware delivery (Sec. 4.4 discussion)."""

from repro.experiments import ablations


def test_delivery_culling(benchmark):
    result = benchmark.pedantic(
        ablations.run_delivery_culling,
        kwargs={"n_users": 5, "duration_s": 30.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print(f"\nA1: {result.baseline_mbps:.2f} -> {result.culled_mbps:.2f} Mbps "
          f"({result.savings_fraction:.0%} saved)")
    assert result.culled_mbps < result.baseline_mbps
    assert 0.02 < result.savings_fraction < 0.6
