"""Bench: ablation A5 — FEC for the loss-fragile semantic stream."""

from repro.experiments import ablations


def test_fec_resilience_sweep(benchmark):
    result = benchmark.pedantic(
        ablations.run_fec_resilience,
        kwargs={"duration_s": 8.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    assert result.fec_always_helps()
    by_loss = {p.loss_rate: p for p in result.points}
    # At 5% loss: plain delivery loses ~5% of frames, parity recovers
    # almost all of them at 25% bandwidth overhead.
    assert by_loss[0.05].availability_plain < 0.97
    assert by_loss[0.05].availability_fec > 0.98
