"""Bench: ablation A4 — layered semantic codec (rate adaptation)."""

from repro.experiments import ablations


def test_layered_codec_sweep(benchmark):
    result = benchmark.pedantic(
        ablations.run_layered_codec, kwargs={"duration_s": 8.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    # Where FaceTime fails below 700 Kbps, the layered sender survives to
    # the BASE layer's rate.
    assert result.cutoff_kbps() <= 300.0
    by_limit = {p.limit_kbps: p for p in result.points}
    assert by_limit[600.0].availability >= 0.9       # FaceTime: broken here
    assert by_limit[300.0].availability >= 0.9
    assert by_limit[300.0].degraded                  # hands frozen at BASE
    assert by_limit[100.0].availability == 0.0       # below even BASE
