"""Bench: ablation A2 — geo-distributed servers (Sec. 4.1 discussion)."""

from repro.experiments import ablations


def test_server_policies(benchmark):
    results = benchmark.pedantic(
        ablations.run_server_policies, rounds=1, iterations=1
    )
    for r in results:
        print(f"\nA2 {r.scenario}: {r.initiator_nearest_ms:.0f} -> "
              f"{r.geo_distributed_ms:.0f} ms "
              f"({r.improvement_fraction:.0%} better)")
        assert r.geo_distributed_ms < r.initiator_nearest_ms
    # The intercontinental case shows the paper's > 100 ms QoE concern.
    assert results[1].initiator_nearest_ms > 200
