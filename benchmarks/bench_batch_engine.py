"""Bench: scalar event loop vs the struct-of-arrays cohort engine.

Runs the same media workload — N sessions, each clocking 90 Hz frame
bursts through a drop-tail uplink and windowing the departed bytes —
two ways:

* **scalar**: one :class:`repro.netsim.engine.Simulator` plus one
  :class:`repro.netsim.link.Link` per session, a Python callback per
  packet (the event-driven oracle);
* **batched**: one :class:`repro.netsim.batch.BatchSimulator` hosting
  every session as a lane, one ``schedule_cohort`` event per tick that
  advances *all* lanes with numpy, then the vectorized service kernels
  (:func:`~repro.netsim.batch.fifo_departures`,
  :func:`~repro.netsim.batch.windowed_lane_bytes`) for departures and
  throughput windows.

Before timing anything the two paths are checked against each other:
per-lane departure times must agree within 1e-9 s (the documented fp
tolerance of the Lindley prefix-max) and per-(lane, window) byte totals
must match exactly.

Reported "events/sec" counts *logical media events* — packet
transmissions simulated per wall-clock second — which both paths
perform in identical number, so the ratio is a fair work-throughput
comparison (raw engine callback counts differ by design: the batch
path's whole point is firing one cohort callback where the scalar path
fires N).  The CI gate asserts the batched path clears 5x the scalar
events/sec at cohorts of 64+ sessions.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.netsim.batch import (
    BatchSimulator,
    fifo_departures,
    windowed_lane_bytes,
)
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import IPPROTO_UDP, Packet

FPS = 90.0
BURST = 3  # datagrams per frame tick (exercises within-tick queueing)
RATE_BPS = 2e6  # drains a burst between ticks but queues within one
QUEUE_BYTES = 1 << 20  # large enough that nothing drops
WINDOW_S = 1.0
SKIP_HEAD_S = 1.0
MIN_SPEEDUP = 5.0  # CI gate at cohorts >= GATE_COHORT
GATE_COHORT = 64


def payload_size(lane: int, tick: int, j: int) -> int:
    """Deterministic per-datagram payload size, identical in both paths."""
    return 200 + (lane * 131 + tick * 17 + j * 53) % 701


def payload_sizes_vec(lanes: np.ndarray, tick: int, j: int) -> np.ndarray:
    """Vectorized :func:`payload_size` over a lane array."""
    return 200 + (lanes * 131 + tick * 17 + j * 53) % 701


def run_scalar(n: int, duration_s: float) -> Dict[str, object]:
    """The oracle: N independent simulators, one callback per packet."""
    t_start = time.perf_counter()
    dep_by_lane: List[List[Tuple[float, int]]] = [[] for _ in range(n)]
    packets = 0
    engine_events = 0
    for lane in range(n):
        sim = Simulator()
        link = Link(RATE_BPS, queue_bytes=QUEUE_BYTES, name=f"lane{lane}")
        out = dep_by_lane[lane]
        tick_box = [0]

        def on_tick(lane=lane, sim=sim, link=link, out=out,
                    tick_box=tick_box):
            tick = tick_box[0]
            tick_box[0] = tick + 1
            for j in range(BURST):
                pkt = Packet(
                    src="10.0.0.2", dst="10.0.1.2",
                    src_port=4433, dst_port=4433, protocol=IPPROTO_UDP,
                    payload=bytes(payload_size(lane, tick, j)),
                )
                link.transmit(
                    sim, pkt,
                    lambda p, sim=sim, out=out:
                    out.append((sim.now, p.wire_bytes)),
                )

        sim.schedule_every(1.0 / FPS, on_tick, until=duration_s)
        sim.run(until=duration_s)
        assert link.stats.packets_dropped == 0
        packets += link.stats.packets_sent
        engine_events += sim.events_fired
    elapsed = time.perf_counter() - t_start

    n_windows = int((duration_s - SKIP_HEAD_S) / WINDOW_S)
    windows = np.zeros((n, n_windows))
    for lane, records in enumerate(dep_by_lane):
        for ts, wire in records:
            idx = int((ts - SKIP_HEAD_S) / WINDOW_S)
            if ts >= SKIP_HEAD_S and idx < n_windows:
                windows[lane, idx] += wire
    return {
        "elapsed": elapsed,
        "packets": packets,
        "engine_events": engine_events,
        "departures": [np.array([t for t, _w in rec])
                       for rec in dep_by_lane],
        "windows": windows,
    }


def run_batched(n: int, duration_s: float) -> Dict[str, object]:
    """One shared cohort engine; ticks advance every lane with numpy."""
    t_start = time.perf_counter()
    batch = BatchSimulator(n_lanes=n)
    lanes = np.arange(n, dtype=np.int64)
    tick_times: List[float] = []
    tick_wires: List[np.ndarray] = []  # (BURST, n) wire bytes per tick

    def on_tick():
        tick = len(tick_times)
        tick_times.append(batch.now)
        tick_wires.append(np.stack([
            payload_sizes_vec(lanes, tick, j) + 28 for j in range(BURST)
        ]))

    # Same tick arithmetic as schedule_every: base 0, k * dt, k < until.
    dt = 1.0 / FPS
    tick = 0
    while tick * dt < duration_s - 1e-12:
        batch.schedule_cohort(tick * dt, lanes, on_tick)
        tick += 1
    batch.run(until=duration_s)

    times = np.repeat(np.asarray(tick_times), BURST)
    # (ticks, BURST, n) -> per-lane flat streams in arrival order.
    wires = np.stack(tick_wires)
    n_ticks = wires.shape[0]
    flat_wires = wires.reshape(n_ticks * BURST, n)
    dep_by_lane: List[np.ndarray] = []
    all_dep: List[np.ndarray] = []
    all_lane: List[np.ndarray] = []
    all_wire: List[np.ndarray] = []
    for lane in range(n):
        w = flat_wires[:, lane]
        dep = fifo_departures(times, w * (8.0 / RATE_BPS))
        dep_by_lane.append(dep)
        all_dep.append(dep)
        all_lane.append(np.full(len(dep), lane, dtype=np.int64))
        all_wire.append(w)
    n_windows = int((duration_s - SKIP_HEAD_S) / WINDOW_S)
    windows = windowed_lane_bytes(
        np.concatenate(all_dep), np.concatenate(all_lane),
        np.concatenate(all_wire), n, SKIP_HEAD_S, WINDOW_S, n_windows,
    )
    elapsed = time.perf_counter() - t_start
    return {
        "elapsed": elapsed,
        "packets": int(flat_wires.size),
        "engine_events": batch.events_fired,
        "departures": dep_by_lane,
        "windows": windows,
        "stats": batch.stats(),
    }


def check_equivalence(scalar: Dict[str, object],
                      batched: Dict[str, object]) -> None:
    """Hold the two paths together before trusting either timing."""
    assert scalar["packets"] == batched["packets"], (
        scalar["packets"], batched["packets"])
    s_dep = scalar["departures"]
    b_dep = batched["departures"]
    assert len(s_dep) == len(b_dep)
    for lane, (s, b) in enumerate(zip(s_dep, b_dep)):
        assert len(s) == len(b), f"lane {lane}: {len(s)} vs {len(b)}"
        err = float(np.max(np.abs(s - b))) if len(s) else 0.0
        assert err < 1e-9, f"lane {lane}: departure mismatch {err}"
    assert np.array_equal(scalar["windows"], batched["windows"])


def bench_cohort(n: int, duration_s: float) -> Dict[str, float]:
    scalar = run_scalar(n, duration_s)
    batched = run_batched(n, duration_s)
    check_equivalence(scalar, batched)
    return {
        "cohort": n,
        "packets": scalar["packets"],
        "scalar_s": scalar["elapsed"],
        "batch_s": batched["elapsed"],
        "scalar_eps": scalar["packets"] / scalar["elapsed"],
        "batch_eps": batched["packets"] / batched["elapsed"],
        "scalar_engine_events": scalar["engine_events"],
        "batch_engine_events": batched["engine_events"],
        "sessions_per_s": n / batched["elapsed"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: short duration, cohorts 1 and 64")
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds per run")
    parser.add_argument("--cohorts", type=int, nargs="*", default=None,
                        help="cohort sizes to sweep")
    args = parser.parse_args(argv)
    duration = args.duration or (8.0 if args.quick else 20.0)
    cohorts = args.cohorts or ((1, GATE_COHORT) if args.quick
                               else (1, 16, 64, 256))

    print(f"workload: {FPS:.0f} Hz x {BURST} datagrams/tick, "
          f"{duration:.0f} s simulated (equivalence checked per run)")
    print("cohort   packets  scalar_s  batch_s  speedup"
          "   scalar ev/s    batch ev/s  sessions/s")
    gate_ok = True
    for n in cohorts:
        row = bench_cohort(n, duration)
        speedup = row["batch_eps"] / row["scalar_eps"]
        print(f"{row['cohort']:6d}  {row['packets']:8d}  "
              f"{row['scalar_s']:8.3f}  {row['batch_s']:7.3f}  "
              f"{speedup:6.1f}x  {row['scalar_eps']:12.0f}  "
              f"{row['batch_eps']:12.0f}  {row['sessions_per_s']:10.0f}")
        if row["cohort"] >= GATE_COHORT and speedup < MIN_SPEEDUP:
            gate_ok = False
            print(f"  FAIL: cohort {row['cohort']} speedup {speedup:.1f}x "
                  f"< required {MIN_SPEEDUP:.0f}x")
    if not gate_ok:
        return 1
    print(f"gate: batched events/sec >= {MIN_SPEEDUP:.0f}x scalar at "
          f"cohort >= {GATE_COHORT}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
