"""Bench: ablation A6 — cloud rendering offload (the Sec. 4.5 remedy)."""

from repro import calibration
from repro.experiments import cloud_rendering


def test_cloud_rendering_tradeoff(benchmark):
    result = benchmark.pedantic(
        cloud_rendering.run, kwargs={"duration_s": 12.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    by_users = {p.n_users: p for p in result.points}
    # Local rendering works to the cap, then collapses.
    assert by_users[5].local_effective_fps > 85.0
    assert by_users[6].local_effective_fps < 80.0
    # The cloud removes the ceiling but sells interactivity + bandwidth.
    assert result.cloud_removes_gpu_ceiling()
    assert by_users[8].cloud_effective_fps > 85.0
    assert result.cloud_costs_interactivity()
    assert result.cloud_costs_bandwidth()
    # Local viewport latency stays under the paper's 16 ms bound; cloud
    # rides the network RTT.
    assert by_users[5].local_viewport_latency_ms < \
        calibration.DISPLAY_LATENCY_DIFF_BOUND_MS
    assert by_users[5].cloud_viewport_latency_ms > 40.0
