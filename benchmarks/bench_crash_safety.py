"""Bench: what crash-safety costs, and what resume buys back.

Three questions, one small campaign grid each:

- ``journal overhead``  — a journaled sweep vs a bare one: every cell is
  fsynced to the checkpoint journal, so this measures the durability tax
  (expected: small against real cell work).
- ``resume replay``     — resuming a fully-journaled sweep vs recomputing
  it: replay decodes stored payloads instead of simulating sessions, so
  it should win by a wide margin.
- ``watchdog overhead`` — an armed-but-idle deadline watchdog vs none:
  the pool's event loop wakes to check deadlines; when nothing hangs
  that must be close to free.
"""

import time

from repro.core.campaign import Campaign
from repro.core.journal import RunJournal

GRID = dict(
    vcas=("Zoom", "Webex"),
    user_counts=(2, 3),
    duration_s=4.0,
    repeats=1,
)


def _campaign() -> Campaign:
    return Campaign.grid(**GRID, base_seed=0)


def test_journaled_sweep(benchmark, tmp_path):
    """A cold journaled run: per-cell fsync included."""
    campaign = _campaign()
    with RunJournal(tmp_path / "run.jsonl") as journal:
        benchmark.pedantic(campaign.run,
                           kwargs={"jobs": 1, "journal": journal},
                           rounds=1, iterations=1)
    assert campaign.last_run_stats.executed == len(campaign.tasks())


def test_resume_replay(benchmark, tmp_path):
    """Resuming a finished sweep must not recompute a single cell."""
    path = tmp_path / "run.jsonl"
    cold = _campaign()
    with RunJournal(path) as journal:
        cold.run(jobs=1, journal=journal)
    warm = _campaign()
    with RunJournal(path) as journal:
        benchmark.pedantic(
            warm.run,
            kwargs={"jobs": 1, "journal": journal, "resume": True},
            rounds=1, iterations=1,
        )
    stats = warm.last_run_stats
    assert stats.resumed == len(warm.tasks())
    assert stats.executed == 0
    assert warm.records == cold.records


def test_watchdog_armed_idle(benchmark):
    """Deadline checks on a pool where nothing ever hangs."""
    campaign = _campaign()
    benchmark.pedantic(campaign.run,
                       kwargs={"jobs": 2, "timeout": 300.0},
                       rounds=1, iterations=1)
    assert campaign.last_run_stats.timeouts == 0
    assert campaign.last_run_stats.executed == len(campaign.tasks())


def test_crash_safety_summary(tmp_path):
    """One comparative table: bare vs journaled vs resumed wall time."""
    started = time.monotonic()
    bare = _campaign()
    bare.run(jobs=1)
    bare_s = time.monotonic() - started

    path = tmp_path / "run.jsonl"
    started = time.monotonic()
    journaled = _campaign()
    with RunJournal(path) as journal:
        journaled.run(jobs=1, journal=journal)
    journaled_s = time.monotonic() - started

    started = time.monotonic()
    resumed = _campaign()
    with RunJournal(path) as journal:
        resumed.run(jobs=1, journal=journal, resume=True)
    resumed_s = time.monotonic() - started

    assert bare.records == journaled.records == resumed.records
    assert resumed.last_run_stats.resumed == len(resumed.tasks())
    overhead = (journaled_s - bare_s) / max(bare_s, 1e-9)
    print(
        f"\nbare {bare_s:6.2f} s | journaled {journaled_s:6.2f} s "
        f"(+{overhead:.0%} fsync tax) | resume {resumed_s:6.2f} s "
        f"({bare_s / max(resumed_s, 1e-9):.0f}x faster than recompute)"
    )
