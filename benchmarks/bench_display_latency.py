"""Bench: the Sec. 4.3 display-latency sweep (0-1000 ms tc delay)."""

from repro import calibration
from repro.experiments import content_delivery


def test_display_latency_sweep(benchmark):
    result = benchmark.pedantic(
        content_delivery.run_display_latency, kwargs={"seed": 0},
        rounds=1, iterations=1,
    )
    local = result.series["local"]
    print("\ninjected delay -> difference (local reconstruction):")
    for delay, diff in local:
        print(f"  {delay:6.0f} ms -> {diff:5.1f} ms")

    # The paper's finding: < 16 ms, invariant under injected delay.
    assert result.local_mode_invariant(
        calibration.DISPLAY_LATENCY_DIFF_BOUND_MS
    )
    # And the counterfactual discriminates.
    assert result.remote_mode_tracks_delay()
