"""Bench: what distribution buys, and what its machinery costs.

Four questions:

- ``serial baseline``   — a >= 50-cell campaign on one process: the
  wall-clock every other row is judged against.
- ``3-worker fleet``    — the same campaign with three ``repro worker``
  processes pulling from the shared store; prints the speedup vs the
  serial baseline (expect close to 3x minus claim/commit overhead,
  cells being embarrassingly parallel).
- ``lease latency``     — micro: claims and stale-lease takeovers per
  second on the bare queue, no cell work at all.
- ``distributed-off``   — the plain local path after the dist layer
  landed: ``run(store=None)`` dispatches straight to the PR 4 runner,
  so the overhead must be one ``if``.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/bench_distributed.py -q -s``
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.core.campaign import Campaign
from repro.core.dist.queue import TaskSpec, WorkQueue
from repro.core.dist.store import layout
from repro.core.cache import code_fingerprint
from repro.core.parallel import CellTask

#: 4 VCAs x 2 user counts x 7 repeats = 56 cells (>= 50 per the issue).
GRID = dict(vcas=("FaceTime", "Zoom", "Webex", "Teams"),
            user_counts=(2, 3), duration_s=1.0, repeats=7)

_TIMES: dict = {}


def _campaign() -> Campaign:
    return Campaign.grid(**GRID, base_seed=5)


def _spawn_workers(store: Path, count: int) -> list:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--store", str(store),
             "--id", f"bench-w{i}", "--poll", "0.05",
             "--heartbeat-interval", "0.5", "--idle-exit", "30", "--quiet"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for i in range(count)
    ]


def test_serial_baseline_56_cells(benchmark):
    campaign = _campaign()
    started = time.monotonic()
    benchmark.pedantic(campaign.run, kwargs={"jobs": 1}, rounds=1,
                       iterations=1)
    _TIMES["serial"] = time.monotonic() - started
    _TIMES["records"] = [r.as_row() for r in campaign.records]
    assert len(campaign.records) == 56


def test_three_worker_fleet_56_cells(benchmark, tmp_path):
    store = tmp_path / "store"
    workers = _spawn_workers(store, 3)
    campaign = _campaign()
    started = time.monotonic()
    try:
        benchmark.pedantic(
            campaign.run,
            kwargs={"store": store, "worker_wait_s": 30.0},
            rounds=1, iterations=1,
        )
    finally:
        elapsed = time.monotonic() - started
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            proc.wait(timeout=30)
    assert len(campaign.records) == 56
    if "records" in _TIMES:
        assert [r.as_row() for r in campaign.records] == _TIMES["records"]
    if "serial" in _TIMES:
        cores = os.cpu_count() or 1
        speedup = _TIMES["serial"] / elapsed
        print(f"\n[bench] 56 cells: serial {_TIMES['serial']:.1f} s, "
              f"3 workers {elapsed:.1f} s -> speedup {speedup:.2f}x "
              f"on {cores} core(s) "
              f"(takeovers={campaign.last_dist['takeovers']}, "
              f"workers={len(campaign.last_dist['workers'])})")
        # Cells are CPU-bound, so speedup needs real cores: on a
        # single-core host the number measures protocol overhead, not
        # parallelism, and the assertion would test the machine.
        if cores >= 4:
            assert speedup > 1.5, (
                f"3 workers on {cores} cores should beat serial, "
                f"got {speedup:.2f}x")


# ---------------------------------------------------------------------------
# protocol micro-benches: no cell work, just the queue machinery
# ---------------------------------------------------------------------------

def _noop(value: int) -> int:
    return value


def _publish_specs(store: Path, count: int) -> WorkQueue:
    specs = []
    for i in range(count):
        task = CellTask(name=f"noop-{i}", fn=_noop, kwargs={"value": i})
        specs.append(TaskSpec(key=task.cache_key(), name=task.name,
                              task=task))
    queue = WorkQueue(layout(store).create(), worker="bench-pub")
    queue.publish(specs, f"bench-{count}", code_fingerprint())
    return queue


def test_lease_claim_latency(benchmark, tmp_path):
    """Mean time to claim one pending cell (atomic rename + spec read)."""
    count = 200
    _publish_specs(tmp_path / "store", count)
    claimer = WorkQueue(layout(tmp_path / "store"), worker="bench-claim")

    def claim_all() -> int:
        claimed = 0
        while claimer.claim(steal=False) is not None:
            claimed += 1
        return claimed

    started = time.monotonic()
    claimed = benchmark.pedantic(claim_all, rounds=1, iterations=1)
    per_claim_ms = (time.monotonic() - started) / count * 1000.0
    assert claimed == count
    print(f"\n[bench] lease claim: {per_claim_ms:.2f} ms/cell "
          f"({count} cells)")


def test_lease_takeover_latency(benchmark, tmp_path):
    """Mean time to detect a stale owner and steal its lease."""
    count = 100
    queue = _publish_specs(tmp_path / "store", count)
    victim = WorkQueue(queue.layout, worker="bench-victim")
    while victim.claim(steal=False) is not None:
        pass  # victim holds every lease and never heartbeats
    time.sleep(0.05)
    thief = WorkQueue(queue.layout, worker="bench-thief")

    def steal_all() -> int:
        stolen = 0
        while thief.claim(stale_after_s=0.01) is not None:
            stolen += 1
        return stolen

    started = time.monotonic()
    stolen = benchmark.pedantic(steal_all, rounds=1, iterations=1)
    per_steal_ms = (time.monotonic() - started) / count * 1000.0
    assert stolen == count
    print(f"\n[bench] lease takeover: {per_steal_ms:.2f} ms/lease "
          f"({count} leases, token 1 -> 2)")


def test_distributed_off_path_overhead(benchmark):
    """``run(store=None)`` must cost what the PR 4 runner costs: the
    dist layer adds one branch, nothing else, to local campaigns."""
    campaign = Campaign.grid(vcas=("Zoom",), user_counts=(2,),
                             duration_s=1.0, repeats=2, base_seed=5)
    benchmark.pedantic(campaign.run, kwargs={"jobs": 1}, rounds=1,
                       iterations=1)
    assert campaign.last_dist is None  # the dist machinery never engaged
    assert len(campaign.records) == 2
