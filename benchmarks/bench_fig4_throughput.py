"""Bench: regenerate Fig. 4 (two-party throughput per VCA)."""

import pytest

from repro.experiments import fig4


def test_fig4_throughput(benchmark):
    result = benchmark.pedantic(
        fig4.run,
        kwargs={"duration_s": 15.0, "repeats": 3, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())

    # The paper's headline ordering and anchors.
    assert result.ordering_holds()
    assert result.summaries["F"].mean < 0.7
    assert result.summaries["W"].mean > 4.0
    for label, target in fig4.PAPER_MEANS_MBPS.items():
        assert result.summaries[label].mean == pytest.approx(target, rel=0.15)
