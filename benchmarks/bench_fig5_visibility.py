"""Bench: regenerate Fig. 5 (visibility-aware optimizations) + A3."""

import numpy as np
import pytest

from repro.experiments import fig5
from repro.rendering.camera import Camera
from repro.rendering.lod import LodPolicy, PersonaView
from repro.rendering.pipeline import RenderPipeline


def test_fig5_scenarios(benchmark):
    result = benchmark.pedantic(
        fig5.run, kwargs={"frames_per_scenario": 300, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    for name, (tri_paper, gpu_paper) in fig5.PAPER_ANCHORS.items():
        assert result.triangles[name] == tri_paper
        assert result.gpu_ms[name].mean == pytest.approx(gpu_paper, abs=0.15)


def test_occlusion_not_adopted(benchmark):
    result = benchmark.pedantic(
        fig5.run_occlusion, kwargs={"occlusion_aware": False},
        rounds=1, iterations=1,
    )
    assert not result.optimization_adopted()


def test_ablation_a3_occlusion_aware(benchmark):
    result = benchmark.pedantic(
        fig5.run_occlusion, kwargs={"occlusion_aware": True},
        rounds=1, iterations=1,
    )
    print(f"\nA3: {result.spread_triangles} -> {result.line_triangles} triangles")
    assert result.optimization_adopted()


def test_render_frame_speed(benchmark):
    """Micro-bench: one pipeline frame with four personas."""
    pipeline = RenderPipeline(seed=0)
    camera = Camera(np.zeros(3), np.array([1.0, 0.0, 0.0]))
    views = [
        PersonaView(f"p{i}", np.array([1.5, 0.3 * i - 0.45, 0.0]), 10.0 * i)
        for i in range(4)
    ]
    stats = benchmark(pipeline.render_frame, 0, camera, views)
    assert stats.triangles > 0
