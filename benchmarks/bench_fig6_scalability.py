"""Bench: regenerate Fig. 6 (scalability of spatial personas)."""

import pytest

from repro import calibration
from repro.experiments import fig6


def test_fig6_rendering(benchmark):
    result = benchmark.pedantic(
        fig6.run_rendering,
        kwargs={"duration_s": 30.0, "repeats": 3, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    # Fig. 6(b) anchors.
    assert result.gpu_ms[2].mean == pytest.approx(
        calibration.GPU_MS_TWO_USERS[0], abs=2 * calibration.GPU_MS_TWO_USERS[1]
    )
    assert result.gpu_ms[5].mean == pytest.approx(
        calibration.GPU_MS_FIVE_USERS[0], abs=calibration.GPU_MS_FIVE_USERS[1]
    )
    assert result.cpu_ms[5].mean == pytest.approx(
        calibration.CPU_MS_FIVE_USERS[0], abs=0.5
    )
    # Shape: monotone growth, deadline pressure, foveation-flattened tail.
    assert result.triangles_grow_with_users()
    assert result.gpu_approaches_deadline()
    assert result.p5_grows_slower_than_mean()


def test_fig6_network(benchmark):
    result = benchmark.pedantic(
        fig6.run_network,
        kwargs={"duration_s": 12.0, "repeats": 3, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    assert result.grows_linearly()
    assert result.downlink_mbps[5].mean == pytest.approx(
        4 * calibration.SPATIAL_PERSONA_MBPS, rel=0.15
    )
