"""Bench: displayed frame rate vs. user count (the five-persona cap)."""

from repro.experiments import framerate


def test_frame_rate_scalability(benchmark):
    result = benchmark.pedantic(
        framerate.run, kwargs={"duration_s": 25.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    # 2-5 users hold the 90 FPS target; a sixth user would not.
    for n in (2, 3, 4, 5):
        assert result.reports[n].effective_fps > 85.0
    assert result.degrades_monotonically()
    assert result.cap_is_justified()
    assert result.reports[6].effective_fps < 80.0
