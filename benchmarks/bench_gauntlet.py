"""Bench: the fault gauntlet's two performance contracts.

Two gates, both asserted before anything is reported:

* **faults-disabled overhead**: attaching the deferred
  :class:`~repro.faults.cohort.CohortInjector` to a cohort and sealing
  it with *zero* fault events must cost < 2% wall clock against the
  plain PR 7 cohort engine (min-of-N interleaved runs, so scheduler
  noise cancels).  The fault layer is pay-for-what-you-break: a cohort
  that schedules nothing must run at baseline speed.
* **vectorized fan-out**: :func:`~repro.faults.domains.
  impairment_timeline` (one ``np.ix_`` window per domain event) must
  clear 10x the per-(event, tick, lane) scalar oracle
  :func:`~repro.faults.domains.impairment_timeline_scalar` on a
  fleet-sized plan — after the two are checked exactly equal.

Usage::

    PYTHONPATH=src python benchmarks/bench_gauntlet.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.faults.domains import (
    build_plan,
    impairment_timeline,
    impairment_timeline_scalar,
)

MAX_OVERHEAD = 0.02  # gate (a): sealed-empty injector vs PR 7 cohort
MIN_SPEEDUP = 10.0  # gate (b): vectorized fan-out vs scalar oracle


def test_gauntlet_sweep(benchmark):
    from repro.experiments import gauntlet

    result = benchmark.pedantic(
        gauntlet.run,
        kwargs={"scenarios": ["region-outage", "mixed"],
                "fleet_sizes": [50, 200], "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    worst = result.worst()
    # A correlated incident must actually hurt — and the defenses must
    # bring some sessions back before the campaign ends.
    assert worst["qoe_delta"] < 0.0
    assert worst["events"] > 0
    assert all(r["recovered_fraction"] > 0.0 for r in result.records)


# ---------------------------------------------------------------------------
# gate (a): faults-disabled cohort overhead
# ---------------------------------------------------------------------------


def _cohort_run_s(with_injector: bool, n_lanes: int,
                  duration_s: float) -> float:
    """One cohort run's wall clock, with or without the fault layer."""
    from repro.core.testbed import default_two_user_testbed
    from repro.experiments.gauntlet import lane_seed
    from repro.faults.cohort import CohortInjector
    from repro.vca.cohort import CohortRunner
    from repro.vca.profiles import PROFILES

    profile = PROFILES["FaceTime"]
    runner = CohortRunner()
    injector = None
    if with_injector:
        injector = CohortInjector.of(runner.batch, deferred=True)
    for lane in range(n_lanes):
        testbed = default_two_user_testbed()
        runner.add(lambda sim, lane=lane, testbed=testbed: testbed.session(
            profile, seed=lane_seed(0, lane), sim=sim))
    if injector is not None:
        injector.seal()
        assert injector.cohort_events_armed == 0  # faults disabled
    t_start = time.perf_counter()
    runner.run(duration_s)
    return time.perf_counter() - t_start


def bench_overhead(n_lanes: int, duration_s: float, repeats: int) -> dict:
    """Interleaved min-of-N: the fairest overhead estimate wall clocks
    allow, since both variants ride the same machine weather."""
    _cohort_run_s(False, n_lanes, duration_s)  # warm caches
    baseline, armed = [], []
    for _ in range(repeats):
        baseline.append(_cohort_run_s(False, n_lanes, duration_s))
        armed.append(_cohort_run_s(True, n_lanes, duration_s))
    overhead = min(armed) / min(baseline) - 1.0
    return {"lanes": n_lanes, "duration_s": duration_s,
            "baseline_s": min(baseline), "armed_s": min(armed),
            "overhead": overhead}


# ---------------------------------------------------------------------------
# gate (b): vectorized domain fan-out vs the scalar oracle
# ---------------------------------------------------------------------------


def bench_fanout(n_lanes: int, duration_s: float, repeats: int) -> dict:
    lane_regions = np.arange(n_lanes) % 12
    plan = build_plan("mixed", 1, duration_s, lane_regions, n_regions=12)
    ticks = np.arange(0.0, duration_s, 1.0)

    # equivalence first: the array path must reproduce the oracle exactly
    vec = impairment_timeline(plan, ticks)
    ref = impairment_timeline_scalar(plan, ticks)
    assert (vec.delay_ms == ref.delay_ms).all()
    assert (vec.wifi_rate == ref.wifi_rate).all()
    assert (vec.load == ref.load).all()

    t0 = time.perf_counter()
    for _ in range(repeats):
        impairment_timeline(plan, ticks)
    vec_s = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    impairment_timeline_scalar(plan, ticks)
    scalar_s = time.perf_counter() - t0

    return {"lanes": n_lanes, "events": len(plan.events),
            "ticks": len(ticks), "scalar_s": scalar_s, "vector_s": vec_s,
            "speedup": scalar_s / vec_s}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: smaller cohort and fleet")
    args = parser.parse_args(argv)
    if args.quick:
        overhead_args = (2, 6.0, 5)
        fanout_args = (200, 120.0, 20)
    else:
        overhead_args = (4, 10.0, 4)
        fanout_args = (400, 240.0, 20)
    gate_ok = True

    row = bench_overhead(*overhead_args)
    print(f"faults-disabled cohort: {row['lanes']} lanes x "
          f"{row['duration_s']:.0f}s  baseline {row['baseline_s']:.3f}s  "
          f"sealed-empty injector {row['armed_s']:.3f}s  "
          f"overhead {row['overhead']:+.2%}")
    if row["overhead"] >= MAX_OVERHEAD:
        gate_ok = False
        print(f"  FAIL: overhead {row['overhead']:+.2%} "
              f">= allowed {MAX_OVERHEAD:.0%}")

    row = bench_fanout(*fanout_args)
    print(f"domain fan-out: {row['events']} events x {row['ticks']} ticks "
          f"x {row['lanes']} lanes (exact equality checked)  "
          f"scalar {row['scalar_s']:.3f}s  vector {row['vector_s']:.4f}s  "
          f"speedup {row['speedup']:.0f}x")
    if row["speedup"] < MIN_SPEEDUP:
        gate_ok = False
        print(f"  FAIL: speedup {row['speedup']:.1f}x "
              f"< required {MIN_SPEEDUP:.0f}x")

    if not gate_ok:
        return 1
    print(f"gates: empty-injector overhead < {MAX_OVERHEAD:.0%} and "
          f"vectorized fan-out >= {MIN_SPEEDUP:.0f}x scalar: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
