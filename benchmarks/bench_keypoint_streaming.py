"""Bench: the Sec. 4.3 keypoint streaming experiment (0.64 ± 0.02 Mbps)."""

import pytest

from repro import calibration
from repro.experiments import content_delivery
from repro.keypoints.codec import SemanticCodec
from repro.keypoints.motion import capture_session


def test_keypoint_streaming_experiment(benchmark):
    result = benchmark.pedantic(
        content_delivery.run_keypoint_streaming,
        kwargs={"frames": calibration.RGBD_CAPTURE_FRAMES, "seed": 0},
        rounds=1, iterations=1,
    )
    summary = result.mbps
    print(f"\nkeypoint streaming: {summary.mean:.3f} ± {summary.std:.3f} Mbps "
          f"(paper 0.64 ± 0.02)")
    paper_mean, paper_std = calibration.KEYPOINT_STREAMING_MBPS
    assert summary.mean == pytest.approx(paper_mean, abs=3 * paper_std)
    assert result.matches_spatial_persona()


def test_semantic_encode_speed(benchmark):
    """Micro-bench: one semantic frame encode (sender per-frame cost)."""
    frame = capture_session(1, seed=0)[0]
    codec = SemanticCodec(seed=0)
    encoded = benchmark(codec.encode, frame)
    assert encoded.byte_size > 0


def test_semantic_decode_speed(benchmark):
    """Micro-bench: one semantic frame decode (receiver per-frame cost)."""
    codec = SemanticCodec(seed=0)
    encoded = codec.encode(capture_session(1, seed=0)[0])
    decoded = benchmark(codec.decode, encoded)
    assert decoded.points.shape == (74, 3)
