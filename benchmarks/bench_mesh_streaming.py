"""Bench: the Sec. 4.3 Draco streaming experiment (107.4 ± 14.1 Mbps)."""

import pytest

from repro import calibration
from repro.experiments import content_delivery
from repro.mesh.codec import DracoLikeCodec
from repro.mesh.generate import persona_mesh


def test_mesh_streaming_experiment(benchmark):
    result = benchmark.pedantic(
        content_delivery.run_mesh_streaming, kwargs={"seed": 0},
        rounds=1, iterations=1,
    )
    summary = result.summary
    print(f"\nmesh streaming: {summary.mean:.1f} ± {summary.std:.1f} Mbps "
          f"(paper 107.4 ± 14.1)")
    paper_mean, paper_std = calibration.DRACO_STREAMING_MBPS
    assert summary.mean == pytest.approx(paper_mean, abs=2 * paper_std)
    assert result.dwarfs_spatial_persona()


def test_draco_encode_speed(benchmark):
    """Micro-bench: one persona-mesh encode (the per-frame cost)."""
    mesh = persona_mesh(seed=0)
    codec = DracoLikeCodec()
    encoded = benchmark(codec.encode, mesh)
    assert encoded.byte_size > 0


def test_draco_decode_speed(benchmark):
    """Micro-bench: one persona-mesh decode."""
    codec = DracoLikeCodec()
    encoded = codec.encode(persona_mesh(seed=0))
    decoded = benchmark(codec.decode, encoded)
    assert decoded.triangle_count == calibration.PERSONA_TRIANGLES
