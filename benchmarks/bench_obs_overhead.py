"""Bench: observability must be free when it is switched off.

The engine's hot loop gained a probe hook (:attr:`Simulator.on_event`) and
built-in counters.  The contract — stated in ``repro/netsim/engine.py`` —
is that with no probe installed and no tracer configured the event loop
costs **< 2%** over the pre-instrumentation engine.  This bench holds the
loop to it by racing the instrumented :class:`Simulator` against an
embedded copy of the pre-instrumentation engine (the exact hot paths it
shipped with: ``itertools.count`` sequence numbers, no probe checks, no
high-water tracking) on a pure event-churn workload.

Timing method: the two engines run interleaved for several rounds and the
*minimum* round is compared — min-of-N is the standard way to measure a
tight CPU-bound loop because every source of noise (scheduler, GC,
frequency scaling) only ever adds time.

A second, informational test reports what an *installed* probe costs, so
regressions in the enabled path are visible in benchmark logs without
gating CI on it.
"""

import gc
import heapq
import itertools
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.netsim.engine import EventHandle, Simulator

#: Chains of self-rescheduling callbacks: enough events that per-event
#: loop overhead dominates, small enough for a sub-second round.
CHAINS = 32
EVENTS_PER_CHAIN = 1500
ROUNDS = 9
OVERHEAD_BUDGET = 0.02


class _BaselineSimulator:
    """The pre-instrumentation event loop, hot paths copied verbatim."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[
            Tuple[float, int, Callable[[], Any], EventHandle]
        ] = []
        self._counter = itertools.count()
        self._running = False
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at {self._now:.6f}"
            )
        handle = EventHandle(time, next(self._counter))
        heapq.heappush(self._queue, (time, handle._seq, callback, handle))
        return handle

    def run(self, until: Optional[float] = None) -> None:
        self._running = True
        try:
            while self._queue:
                time, _seq, callback, handle = self._queue[0]
                if handle._cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_pending -= 1
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self._now = time
                handle._fired = True
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False


def _churn(sim) -> int:
    """Drive ``CHAINS`` self-rescheduling event chains to completion."""
    fired = [0]

    def make_chain(offset: float):
        remaining = [EVENTS_PER_CHAIN]

        def tick() -> None:
            fired[0] += 1
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(0.001, tick)

        sim.schedule_at(offset, tick)

    for chain in range(CHAINS):
        make_chain(chain * 1e-5)
    sim.run()
    return fired[0]


def _one_round(factory) -> float:
    sim = factory()
    gc.disable()
    started = time.perf_counter()
    fired = _churn(sim)
    elapsed = time.perf_counter() - started
    gc.enable()
    assert fired == CHAINS * EVENTS_PER_CHAIN
    return elapsed


def _race(factory_a, factory_b, rounds: int = ROUNDS) -> Tuple[float, float]:
    """Best-of-N for two engines with strictly interleaved rounds.

    Interleaving matters: running all of A's rounds before all of B's
    folds any drift in machine load or CPU frequency into the comparison
    and shows up as phantom overhead.
    """
    _one_round(factory_a)  # warmup both code paths
    _one_round(factory_b)
    best_a = best_b = float("inf")
    for _ in range(rounds):
        best_a = min(best_a, _one_round(factory_a))
        best_b = min(best_b, _one_round(factory_b))
    return best_a, best_b


def test_disabled_path_overhead_under_budget():
    """No probe, no tracer: the instrumented loop stays within 2%.

    The measured overhead sits around 1% (the plain-int sequence counter
    and hoisted loop locals buy back most of what the probe checks cost),
    but shared CI runners spike; a bounded retry keeps the gate meaningful
    — a *real* regression exceeds the budget on every attempt.
    """
    overhead = float("inf")
    for attempt in range(3):
        baseline_s, instrumented_s = _race(_BaselineSimulator, Simulator)
        overhead = min(overhead, instrumented_s / baseline_s - 1.0)
        print(f"\nevent-loop overhead (probe off), attempt {attempt}: "
              f"{instrumented_s / baseline_s - 1.0:+.2%} "
              f"(baseline {baseline_s * 1e3:.1f} ms, "
              f"instrumented {instrumented_s * 1e3:.1f} ms, "
              f"{CHAINS * EVENTS_PER_CHAIN} events, best of {ROUNDS})")
        if overhead < OVERHEAD_BUDGET:
            break
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled-path overhead {overhead:+.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget on every attempt"
    )


def test_enabled_probe_cost_informational():
    """What an installed probe costs per event — reported, not gated."""

    def probed() -> Simulator:
        sim = Simulator()
        edges = [0]

        def probe(kind, time_s, handle) -> None:
            edges[0] += 1

        sim.on_event = probe
        return sim

    off_s, on_s = _race(Simulator, probed, rounds=5)
    events = CHAINS * EVENTS_PER_CHAIN
    print(f"\nprobe enabled: {(on_s / off_s - 1.0):+.2%} "
          f"({(on_s - off_s) / (2 * events) * 1e9:.0f} ns per edge)")
    # Sanity only: an installed Python probe costs something, but the
    # workload must still complete in the same order of magnitude.
    assert on_s < off_s * 10
