"""Bench: serial vs sharded campaign wall time, and cache hit-rate.

Three timed paths over the same (VCA x user count) grid:

- ``serial``   — the historical one-process loop (``jobs=1``),
- ``parallel`` — the process-pool runner at ``jobs=4`` (on a 4-core
  runner this lands at >=2x the serial figure; the grid is
  embarrassingly parallel, so speedup tracks available cores),
- ``replay``   — an unchanged re-run against a warm result cache, which
  must serve >=95% of cells from disk and produce identical records.
"""

import time

from repro.core.cache import ResultCache
from repro.core.campaign import Campaign

GRID = dict(
    vcas=("FaceTime", "Zoom", "Webex", "Teams"),
    user_counts=(2, 3),
    duration_s=4.0,
    repeats=1,
)


def _campaign() -> Campaign:
    return Campaign.grid(**GRID, base_seed=0)


def test_serial_campaign(benchmark):
    campaign = _campaign()
    benchmark.pedantic(campaign.run, kwargs={"jobs": 1},
                       rounds=1, iterations=1)
    assert len(campaign.records) == len(campaign.tasks())


def test_parallel_campaign_jobs4(benchmark):
    campaign = _campaign()
    benchmark.pedantic(campaign.run, kwargs={"jobs": 4},
                       rounds=1, iterations=1)
    assert campaign.last_run_stats.executed == len(campaign.tasks())


def test_cache_replay_hit_rate(benchmark, tmp_path):
    cold = _campaign()
    cold.run(jobs=1, cache=ResultCache(tmp_path))
    warm = _campaign()
    benchmark.pedantic(
        warm.run, kwargs={"jobs": 1, "cache": ResultCache(tmp_path)},
        rounds=1, iterations=1,
    )
    stats = warm.last_run_stats
    assert stats.hit_rate() >= 0.95
    assert warm.records == cold.records


def test_speedup_summary(tmp_path):
    """One comparative table: serial vs parallel vs replay wall time."""
    started = time.monotonic()
    serial = _campaign()
    serial.run(jobs=1)
    serial_s = time.monotonic() - started

    started = time.monotonic()
    parallel = _campaign()
    parallel.run(jobs=4, cache=ResultCache(tmp_path))
    parallel_s = time.monotonic() - started

    started = time.monotonic()
    replay = _campaign()
    replay.run(jobs=1, cache=ResultCache(tmp_path))
    replay_s = time.monotonic() - started

    assert serial.records == parallel.records == replay.records
    assert replay.last_run_stats.hit_rate() >= 0.95
    print(
        f"\nserial {serial_s:6.2f} s | jobs=4 {parallel_s:6.2f} s "
        f"(speedup {serial_s / max(parallel_s, 1e-9):.2f}x) | "
        f"cache replay {replay_s:6.2f} s "
        f"({replay.last_run_stats.hit_rate():.0%} hits)"
    )
