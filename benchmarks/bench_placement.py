"""Bench: server-placement assessment (how good are the observed fleets?)."""

from repro.geo.placement import assess_fleet
from repro.geo.servers import ALL_FLEETS


def test_fleet_placement_assessment(benchmark):
    def assess_all():
        return {
            vca: assess_fleet(fleet) for vca, fleet in ALL_FLEETS.items()
        }

    assessments = benchmark(assess_all)
    for vca, a in assessments.items():
        print(f"\n{vca:9s} observed {a.observed_mean_rtt_ms:5.1f} ms "
              f"optimal {a.optimal_mean_rtt_ms:5.1f} ms "
              f"efficiency {a.efficiency:.2f}", end="")
    # Four spread-out FaceTime servers are near-optimal; Teams's single
    # West Coast relay leaves the Eastern users paying (Table 1's story).
    assert assessments["FaceTime"].efficiency > 0.8
    assert assessments["Teams"].efficiency < 0.8
