"""Bench: vectorized placement scoring vs the scalar path model.

Two workloads:

* **pytest-benchmark**: the fleet-assessment sweep over all four paper
  fleets (the original placement bench, unchanged semantics); and
* **argparse main**: the RTT-matrix kernel duel — ``mean_rtt_ms`` scored
  the vectorized way (:meth:`PathModel.base_rtt_ms_arrays` chunks) vs a
  faithful scalar reference looping ``base_rtt_ms`` over every
  (site, client) pair, on the full continental-US candidate lattice.

Before timing, the two paths are checked **bit-exactly** equal — the
shared-ufunc-core contract the planet-scale optimizer relies on.  The CI
gate asserts the vectorized kernel clears ``MIN_SPEEDUP``x the scalar
loop on the full grid.

Usage::

    PYTHONPATH=src python benchmarks/bench_placement.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel
from repro.geo.placement import assess_fleet, candidate_sites, mean_rtt_ms
from repro.geo.servers import ALL_FLEETS

MIN_SPEEDUP = 10.0  # CI gate on the full candidate grid


def test_fleet_placement_assessment(benchmark):
    def assess_all():
        return {
            vca: assess_fleet(fleet) for vca, fleet in ALL_FLEETS.items()
        }

    assessments = benchmark(assess_all)
    for vca, a in assessments.items():
        print(f"\n{vca:9s} observed {a.observed_mean_rtt_ms:5.1f} ms "
              f"optimal {a.optimal_mean_rtt_ms:5.1f} ms "
              f"efficiency {a.efficiency:.2f}", end="")
    # Four spread-out FaceTime servers are near-optimal; Teams's single
    # West Coast relay leaves the Eastern users paying (Table 1's story).
    assert assessments["FaceTime"].efficiency > 0.8
    assert assessments["Teams"].efficiency < 0.8


def scalar_mean_rtt_ms(servers, clients, model, weights):
    """Reference implementation: the pre-vectorization scalar loop."""
    total = 0.0
    for client, weight in zip(clients, weights):
        best = min(model.base_rtt_ms(client, s) for s in servers)
        total += weight * best
    return total


def sample_clients(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    lats = rng.uniform(26.0, 48.0, n)
    lons = rng.uniform(-124.0, -68.0, n)
    points = [GeoPoint(f"c{i}", float(la), float(lo))
              for i, (la, lo) in enumerate(zip(lats, lons))]
    weights = rng.uniform(0.5, 2.0, n)
    return points, weights / weights.sum()


def bench_grid(n_clients: int, repeats: int) -> dict:
    model = PathModel()
    sites = candidate_sites()
    clients, weights = sample_clients(n_clients)

    # equivalence first: vectorized must be bit-exact vs the scalar model
    vec = mean_rtt_ms(sites, clients, model, weights=weights)
    ref = scalar_mean_rtt_ms(sites, clients, model, weights)
    assert np.isclose(vec, ref, rtol=1e-12), (vec, ref)

    t0 = time.perf_counter()
    for _ in range(repeats):
        mean_rtt_ms(sites, clients, model, weights=weights)
    vec_s = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    scalar_mean_rtt_ms(sites, clients, model, weights)
    scalar_s = time.perf_counter() - t0

    return {
        "sites": len(sites),
        "clients": n_clients,
        "scalar_s": scalar_s,
        "vector_s": vec_s,
        "speedup": scalar_s / vec_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: fewer client counts and repeats")
    parser.add_argument("--clients", type=int, nargs="*", default=None,
                        help="client-population sizes to sweep")
    args = parser.parse_args(argv)
    repeats = 3 if args.quick else 10
    client_counts = args.clients or ((200,) if args.quick else (200, 1000))

    print(f"candidate grid: {len(candidate_sites())} continental-US sites "
          f"(bit-exactness checked per run)")
    print(" sites  clients  scalar_s  vector_s  speedup")
    gate_ok = True
    for n in client_counts:
        row = bench_grid(n, repeats)
        print(f"{row['sites']:6d}  {row['clients']:7d}  "
              f"{row['scalar_s']:8.3f}  {row['vector_s']:8.4f}  "
              f"{row['speedup']:6.0f}x")
        if row["speedup"] < MIN_SPEEDUP:
            gate_ok = False
            print(f"  FAIL: speedup {row['speedup']:.1f}x "
                  f"< required {MIN_SPEEDUP:.0f}x")
    if not gate_ok:
        return 1
    print(f"gate: vectorized mean_rtt_ms >= {MIN_SPEEDUP:.0f}x scalar "
          f"on the full grid: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
