"""Bench: regenerate the Sec. 4.1 protocol/P2P/anycast findings."""

from repro.experiments import protocols


def test_protocol_matrix(benchmark):
    matrix = benchmark.pedantic(
        protocols.run_protocol_matrix, kwargs={"seed": 0},
        rounds=1, iterations=1,
    )
    for obs in matrix:
        print(f"\n{obs.vca:10s} {obs.device_mix:26s} -> "
              f"{obs.observed_protocol} p2p={obs.p2p}", end="")
    by_key = {(o.vca, o.device_mix): o for o in matrix}
    avp2 = "Vision Pro+Vision Pro"
    mixed = "Vision Pro+MacBook"
    assert by_key[("FaceTime", avp2)].observed_protocol == "quic"
    assert by_key[("FaceTime", mixed)].observed_protocol == "rtp"
    assert by_key[("FaceTime", mixed)].p2p
    assert not by_key[("FaceTime", avp2)].p2p
    for vca in ("Zoom", "Webex", "Teams"):
        assert by_key[(vca, avp2)].observed_protocol == "rtp"


def test_anycast_check(benchmark):
    verdicts = benchmark.pedantic(
        protocols.run_anycast_check, kwargs={"repeats": 5, "seed": 0},
        rounds=1, iterations=1,
    )
    assert all(v is False for v in verdicts.values())
