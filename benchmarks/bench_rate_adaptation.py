"""Bench: the Sec. 4.3 rate-adaptation sweep (700 Kbps cutoff)."""

from repro import calibration
from repro.experiments import rate_adaptation


def test_rate_adaptation_sweep(benchmark):
    result = benchmark.pedantic(
        rate_adaptation.run, kwargs={"duration_s": 12.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    assert result.cutoff_kbps() == calibration.RATE_ADAPTATION_CUTOFF_KBPS
    assert result.no_rate_adaptation()
