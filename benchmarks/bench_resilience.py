"""Bench: the resilience study (fault gauntlet across the four VCAs)."""

from repro.experiments import resilience


def test_resilience_study(benchmark):
    result = benchmark.pedantic(
        resilience.run, kwargs={"duration_s": 20.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    assert result.all_recovered()
    # Relayed profiles fail over; the P2P profile has no relay to lose.
    assert result.row("FaceTime").failovers >= 1
    assert result.row("Zoom").failovers == 0
