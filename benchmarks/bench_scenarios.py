"""Bench: the scenario layer's two performance contracts.

Two gates, both asserted before anything is reported:

* **generation throughput**: :class:`~repro.scenario.generator.
  ScenarioGenerator` must emit and serialize at least 200 specs/s —
  spec generation is the inner loop of every seeded campaign, and its
  per-field sha256 salt chain must stay cheap next to the sessions it
  describes.
* **quantile playout delay**: :func:`~repro.vca.jitterbuffer.
  minimal_playout_delay_ms` (partition + searchsorted) must clear 20x
  the O(n·m) grid scan it replaced on a campaign-sized stream — after
  the two are checked exactly equal on the same stream.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.scenario.generator import (
    DISTRIBUTIONS,
    ScenarioGenerator,
    to_jsonl,
)
from repro.vca.jitterbuffer import minimal_playout_delay_ms

MIN_SPECS_PER_S = 200.0  # gate (a): generation + canonical JSON
MIN_SPEEDUP = 20.0  # gate (b): quantile vs the grid scan it replaced


def test_scenario_batch(benchmark):
    from repro.scenario.campaign import run_batch

    generator = ScenarioGenerator(0, DISTRIBUTIONS["paper-calls"])
    specs = generator.batch(4)
    result = benchmark.pedantic(
        run_batch, args=(specs,), rounds=1, iterations=1,
    )
    print("\n" + result.format_table())
    assert len(result) == 4
    assert all(0.0 <= r["qoe"] <= 1.0 for r in result.records)


# ---------------------------------------------------------------------------
# gate (a): generation throughput
# ---------------------------------------------------------------------------


def bench_generation(count: int) -> dict:
    generator = ScenarioGenerator(0, DISTRIBUTIONS["paper-calls"])
    generator.batch(5)  # warm imports and caches
    t0 = time.perf_counter()
    text = to_jsonl(generator.batch(count))
    elapsed = time.perf_counter() - t0
    # Determinism sanity while we are here: same seed, same bytes.
    assert text == to_jsonl(ScenarioGenerator(
        0, DISTRIBUTIONS["paper-calls"]).batch(count))
    return {"count": count, "elapsed_s": elapsed,
            "specs_per_s": count / elapsed,
            "bytes": len(text.encode())}


# ---------------------------------------------------------------------------
# gate (b): quantile playout delay vs the O(n·m) grid scan
# ---------------------------------------------------------------------------


def _grid_scan(one_way_ms: np.ndarray, late_budget: float,
               resolution_ms: float, max_delay_ms: float) -> float:
    """The replaced reference implementation (kept for the gate)."""
    delays_ms = np.arange(0.0, max_delay_ms + resolution_ms, resolution_ms)
    for delay in delays_ms:
        if float(np.mean(one_way_ms > delay)) <= late_budget:
            return float(delay)
    raise ValueError("cannot meet")


def bench_quantile(frames: int, repeats: int) -> dict:
    rng = np.random.default_rng(0)
    send = np.sort(rng.uniform(0.0, 60.0, size=frames))
    arrival = send + rng.gamma(2.0, 0.05, size=frames)
    timestamps = list(zip(send, arrival))
    one_way_ms = (arrival - send) * 1000.0
    budget, resolution, max_delay = 0.01, 0.1, 500.0

    # equivalence first: identical grid-snapped answers
    fast = minimal_playout_delay_ms(timestamps, late_budget=budget,
                                    resolution_ms=resolution,
                                    max_delay_ms=max_delay)
    assert fast == _grid_scan(one_way_ms, budget, resolution, max_delay)

    t0 = time.perf_counter()
    for _ in range(repeats):
        minimal_playout_delay_ms(timestamps, late_budget=budget,
                                 resolution_ms=resolution,
                                 max_delay_ms=max_delay)
    fast_s = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    _grid_scan(one_way_ms, budget, resolution, max_delay)
    scan_s = time.perf_counter() - t0

    return {"frames": frames, "delay_ms": fast, "scan_s": scan_s,
            "fast_s": fast_s, "speedup": scan_s / fast_s}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: smaller batch and stream")
    args = parser.parse_args(argv)
    if args.quick:
        gen_count, quant_args = 300, (20_000, 5)
    else:
        gen_count, quant_args = 1000, (60_000, 5)
    gate_ok = True

    row = bench_generation(gen_count)
    print(f"generation: {row['count']} specs in {row['elapsed_s']:.3f}s "
          f"({row['specs_per_s']:.0f}/s, {row['bytes']} JSONL bytes, "
          f"byte-identical re-run checked)")
    if row["specs_per_s"] < MIN_SPECS_PER_S:
        gate_ok = False
        print(f"  FAIL: {row['specs_per_s']:.0f}/s "
              f"< required {MIN_SPECS_PER_S:.0f}/s")

    row = bench_quantile(*quant_args)
    print(f"playout delay: {row['frames']} frames (exact equality "
          f"checked)  grid scan {row['scan_s']:.3f}s  quantile "
          f"{row['fast_s']:.4f}s  speedup {row['speedup']:.0f}x")
    if row["speedup"] < MIN_SPEEDUP:
        gate_ok = False
        print(f"  FAIL: speedup {row['speedup']:.1f}x "
              f"< required {MIN_SPEEDUP:.0f}x")

    if not gate_ok:
        return 1
    print(f"gates: generation >= {MIN_SPECS_PER_S:.0f} specs/s and "
          f"quantile >= {MIN_SPEEDUP:.0f}x grid scan: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
