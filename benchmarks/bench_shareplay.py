"""Bench: SharePlay shared content next to spatial personas (Sec. 5)."""

from repro.experiments import shareplay


def test_shareplay_study(benchmark):
    outcomes = benchmark.pedantic(
        shareplay.run, kwargs={"duration_s": 8.0, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + shareplay.format_table(outcomes))
    # Shared content dominates bandwidth; the persona is untouched on a
    # fast AP but starves behind heavy content on a 2 Mbps uplink.
    assert outcomes["movie"].host_uplink_mbps > 5.0
    for outcome in outcomes.values():
        assert outcome.persona_survives_unconstrained
    assert outcomes["game"].shaped_persona_availability < 0.9
    assert outcomes["whiteboard"].shaped_persona_availability > 0.97
