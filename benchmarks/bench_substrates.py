"""Micro-benchmarks of the simulation substrates themselves.

These do not map to a paper table; they characterize the reproduction's
own performance (events/second, codec throughput) so regressions in the
simulator are caught alongside the experiment benches.
"""

import numpy as np

from repro.geo.regions import city
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_UDP, Packet
from repro.vca.profiles import FACETIME
from repro.vca.session import Participant, TelepresenceSession
from repro.devices.models import VisionPro


def test_event_engine_throughput(benchmark):
    """Schedule and drain 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.now

    assert benchmark(run) > 0


def test_network_packet_throughput(benchmark):
    """Push 2k packets through the full fabric (shaper-free path)."""

    def run():
        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        b = Host("10.0.1.2", city("dallas"))
        network.attach(a)
        network.attach(b)
        delivered = []
        b.bind(5000, delivered.append)
        for i in range(2_000):
            sim.schedule(i * 1e-4, lambda: a.send(Packet(
                a.address, b.address, 4000, 5000, IPPROTO_UDP, b"x" * 500
            )))
        sim.run()
        return len(delivered)

    assert benchmark(run) == 2_000


def test_spatial_session_simulation_speed(benchmark):
    """One simulated second of a 5-user spatial FaceTime session."""

    cities = ["san jose", "dallas", "washington", "chicago", "seattle"]

    def run():
        participants = [
            Participant(f"U{i+1}", VisionPro(), city(cities[i]))
            for i in range(5)
        ]
        session = TelepresenceSession(FACETIME, participants, seed=0)
        result = session.run(1.0)
        return sum(
            len(c.records) for c in result.captures.values()
        )

    assert benchmark(run) > 0
