"""Bench: regenerate Table 1 (server RTT matrix) and check its shape."""

import numpy as np

from repro import calibration
from repro.experiments import table1


def test_table1_matrix(benchmark):
    result = benchmark.pedantic(
        table1.run, kwargs={"repeats": 5, "seed": 0}, rounds=1, iterations=1
    )
    print("\n" + result.format_table())

    # Shape assertions against the paper.
    assert result.max_std_ms() < calibration.TABLE1_RTT_STD_BOUND_MS
    errors = [abs(m - p) for _, _, m, p in result.paper_comparison()]
    assert float(np.mean(errors)) < 8.0
    # Diagonals small, coast-to-coast large (the ~80 ms finding).
    assert result.mean_ms("W", "FaceTime", "W") < 15
    assert result.mean_ms("W", "FaceTime", "E") > 60
