"""Benchmark harness configuration.

Every ``bench_*`` module regenerates one table or figure of the paper.
Heavy experiment benches run a single round via ``benchmark.pedantic`` and
assert the paper's shape on the produced result; substrate micro-benches
(codecs, network, rendering) use the default timing loop.

Run with::

    pytest benchmarks/ --benchmark-only
"""

collect_ignore_glob: list = []
