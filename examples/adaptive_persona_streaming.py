#!/usr/bin/env python3
"""Beyond the paper: rate-adaptive spatial personas and dynamic sessions.

Two extensions the paper motivates but FaceTime lacks:

1. **Layered semantic codec (ablation A4)** — where FaceTime shows "poor
   connection" below 700 Kbps, a layered sender degrades gracefully
   (hands freeze at the BASE layer) and survives down to ~200 Kbps.  QoE
   scores make the comparison concrete.
2. **Mid-session joins/leaves** — each membership change steps every
   client's downlink by one stream (the Fig. 6(c) forwarding mechanism,
   observed live).
"""

from repro.experiments import ablations, rate_adaptation
from repro.vca.dynamics import DynamicSession
from repro.vca.profiles import FACETIME
from repro.vca.qoe import QoeFactors, score


def main() -> None:
    print("=== FaceTime today (fixed-rate semantic stream) ===")
    fixed = rate_adaptation.run(
        limits_kbps=(1000.0, 700.0, 600.0, 400.0, 200.0), duration_s=10.0
    )
    print(fixed.format_table())

    print("\n=== With a layered codec (ablation A4) ===")
    layered = ablations.run_layered_codec(
        limits_kbps=(1000.0, 700.0, 600.0, 400.0, 200.0, 100.0),
        duration_s=10.0,
    )
    print(layered.format_table())
    print(f"availability cutoff: {layered.cutoff_kbps():.0f} Kbps "
          f"(fixed-rate FaceTime: {fixed.cutoff_kbps():.0f} Kbps)")

    print("\n=== QoE comparison at a 400 Kbps uplink ===")
    fixed_at_400 = next(p for p in fixed.points if p.limit_kbps == 400.0)
    layered_at_400 = next(p for p in layered.points if p.limit_kbps == 400.0)
    fixed_qoe = score(QoeFactors(
        one_way_delay_ms=40.0,
        persona_availability=fixed_at_400.availability,
        displayed_fps=90.0,
    ))
    layered_qoe = score(QoeFactors(
        one_way_delay_ms=40.0,
        persona_availability=layered_at_400.availability,
        displayed_fps=90.0,
        triangle_fraction=0.6,  # BASE layer: face animated, hands frozen
    ))
    print(f"  fixed-rate persona : QoE {fixed_qoe:.2f} "
          f"(availability {fixed_at_400.availability:.0%})")
    print(f"  layered persona    : QoE {layered_qoe:.2f} "
          f"(availability {layered_at_400.availability:.0%}, degraded)")

    print("\n=== Mid-session membership dynamics ===")
    session = DynamicSession(
        FACETIME,
        [(0.0, "U2", True), (5.0, "U3", True), (10.0, "U4", True),
         (15.0, "U3", False)],
        seed=0,
    )
    result = session.run(20.0)
    for label, (start, end) in {
        "U1+U2": (1.0, 4.5), "+U3": (6.0, 9.5),
        "+U4": (11.0, 14.5), "-U3": (16.0, 19.5),
    }.items():
        mbps = result.downlink_mbps_between(start, end)
        print(f"  {label:6s} U1 downlink {mbps:.2f} Mbps")


if __name__ == "__main__":
    main()
