#!/usr/bin/env python3
"""What is being delivered? — the Sec. 4.3 elimination analysis.

Walks the paper's three hypotheses for the spatial persona's content:

1. direct 3D mesh streaming (Draco-compressed heads at 90 FPS),
2. sender-rendered 2D video (display-latency probe under tc delay),
3. semantic keypoints (74 points, LZMA, 90 FPS),

and prints which one is consistent with the measured ~0.67 Mbps stream.
"""

from repro import calibration
from repro.experiments import content_delivery


def main() -> None:
    print("=== Hypothesis 1: direct 3D streaming ===")
    mesh = content_delivery.run_mesh_streaming(seed=0)
    for name, mbps in mesh.per_mesh_mbps.items():
        print(f"  {name:18s} {mbps:6.1f} Mbps")
    print(f"  mean {mesh.summary.mean:.1f} ± {mesh.summary.std:.1f} Mbps "
          f"(paper: 107.4 ± 14.1)")
    print(f"  >> ruled out (vs {calibration.SPATIAL_PERSONA_MBPS} Mbps "
          f"measured): {mesh.dwarfs_spatial_persona()}")

    print("\n=== Hypothesis 2: sender-rendered 2D video ===")
    latency = content_delivery.run_display_latency(seed=0)
    print("  injected delay -> passthrough-vs-persona difference (ms)")
    local = latency.series["local"]
    remote = latency.series["remote"]
    for (delay, diff_local), (_, diff_remote) in zip(local, remote):
        print(f"  {delay:6.0f} ms   local-reconstruction {diff_local:7.1f}"
              f"   sender-rendered {diff_remote:8.1f}")
    print(f"  >> measured behaviour matches local reconstruction "
          f"(< {calibration.DISPLAY_LATENCY_DIFF_BOUND_MS:.0f} ms, "
          f"invariant): {latency.local_mode_invariant()}")

    print("\n=== Hypothesis 3: semantic keypoints ===")
    keypoints = content_delivery.run_keypoint_streaming(seed=0)
    print(f"  74 keypoints + LZMA at 90 FPS: "
          f"{keypoints.mbps.mean:.3f} ± {keypoints.mbps.std:.3f} Mbps "
          f"(paper: 0.64 ± 0.02)")
    print(f"  >> consistent with the {calibration.SPATIAL_PERSONA_MBPS} Mbps "
          f"persona stream: {keypoints.matches_spatial_persona()}")


if __name__ == "__main__":
    main()
