#!/usr/bin/env python3
"""Device-mix study: who gets a spatial persona, and over what transport?

Reproduces the Sec. 4.1 sweep: every VCA is exercised with an all-Vision-Pro
pair and with a Vision Pro + MacBook pair, and the passive classifier reads
the protocol off the captured bytes.  Also prints the server-selection and
anycast findings.
"""

from repro.experiments import protocols


def main() -> None:
    print("=== Protocol per device mix (classified from captured bytes) ===")
    print(f"{'VCA':10s} {'devices':26s} {'proto':6s} {'p2p':5s} {'RTP PT'}")
    for obs in protocols.run_protocol_matrix(seed=0):
        pt = obs.dominant_payload_type if obs.dominant_payload_type else "-"
        print(f"{obs.vca:10s} {obs.device_mix:26s} "
              f"{obs.observed_protocol:6s} {str(obs.p2p):5s} {pt}")

    print("\n=== FaceTime RTP fallback uses the 2D-call payload types ===")
    print("consistent with plain 2D calls:",
          protocols.facetime_fallback_keeps_2d_payload_type(seed=0))

    print("\n=== Server selection follows the initiator only ===")
    for obs in protocols.run_server_selection():
        print(f"{obs.vca:10s} initiator={obs.initiator_city:12s} "
              f"-> server {obs.selected_label}")

    print("\n=== Anycast check from all eight vantage points ===")
    for vca, anycast in protocols.run_anycast_check().items():
        print(f"{vca:10s} anycast: {anycast}")


if __name__ == "__main__":
    main()
