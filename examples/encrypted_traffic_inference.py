#!/usr/bin/env python3
"""Infer what an encrypted telepresence stream carries — without decrypting.

Sec. 5 of the paper: the spatial persona is end-to-end encrypted, so
content decryption is impractical; "analyzing IP headers and packet
transmission patterns may help better understand the delivered content".
This example does exactly that.  It captures three kinds of session at the
AP, splits flows by 5-tuple, and classifies each stream purely from sizes
and timing — then cross-checks the RTP sessions' loss via cleartext
sequence numbers.
"""

from repro.analysis.patterns import (
    classify_content,
    estimate_rtp_loss,
    largest_flow,
    profile_records,
)
from repro.core.testbed import default_two_user_testbed
from repro.geo.regions import city
from repro.netsim.capture import Direction
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.shaper import TrafficShaper
from repro.vca.media import MeshSource
from repro.vca.profiles import FACETIME, WEBEX, ZOOM


def show(label: str, records) -> None:
    profile = profile_records(largest_flow(records))
    verdict = classify_content(profile)
    print(f"{label:28s} {profile.estimated_fps:5.1f} fps  "
          f"{profile.mean_frame_bytes:8.0f} B/frame  "
          f"cv={profile.frame_size_cv:.2f}  "
          f"{profile.mean_packets_per_frame:5.1f} pkt/frame  "
          f"-> {verdict.value}")


def main() -> None:
    print("pattern-level classification (no payload bytes inspected):\n")

    spatial = default_two_user_testbed().session(FACETIME, seed=0).run(8.0)
    show("FaceTime spatial (QUIC)",
         spatial.capture_of("U1").filter(direction=Direction.UPLINK))

    video = default_two_user_testbed().session(WEBEX, seed=0).run(8.0)
    show("Webex 2D video (RTP)",
         video.capture_of("U1").filter(direction=Direction.UPLINK))

    sim = Simulator()
    network = Network(sim)
    sender = Host("10.0.0.2", city("san jose"))
    sink = Host("10.0.1.2", city("dallas"))
    network.attach(sender)
    network.attach(sink)
    sink.bind(40000, lambda p: None)
    capture = network.start_capture(sender.address)
    MeshSource(seed=0).attach(sim, sender, sink.address)
    sim.run(until=1.0)
    show("hypothetical Draco mesh",
         capture.filter(direction=Direction.UPLINK))

    print("\nRTP loss inference from cleartext sequence numbers:")
    session = default_two_user_testbed().session(ZOOM, seed=1)
    session.shape_uplink("U2", TrafficShaper(loss=0.06, seed=7))
    result = session.run(8.0)
    estimate = estimate_rtp_loss(
        result.capture_of("U1").filter(direction=Direction.DOWNLINK)
    )
    print(f"  injected loss 6.0% -> inferred {estimate.loss_rate:.1%} "
          f"({estimate.received}/{estimate.expected} packets seen)")


if __name__ == "__main__":
    main()
