#!/usr/bin/env python3
"""Automated measurement campaign — the tooling the paper promises.

Sec. 5: "We are currently building open-source tools ... to facilitate
automated and large-scale crowd-sourced measurement experiments."  On the
simulated testbed that tool is :class:`repro.core.campaign.Campaign`: give
it a configuration grid, it runs every session unattended, classifies
protocols from the captures, and exports a CSV.
"""

import tempfile
from pathlib import Path

from repro.core.campaign import Campaign


def main() -> None:
    campaign = Campaign.grid(
        vcas=("FaceTime", "Zoom", "Webex", "Teams"),
        user_counts=(2, 3, 4, 5),
        duration_s=10.0,
        repeats=2,
    )
    print(f"running {sum(c.repeats for c in campaign.cells)} sessions...")
    campaign.run(progress=lambda msg: print(f"  {msg}"))

    print("\nper-VCA summary (U1's AP):")
    for vca, summary in sorted(campaign.summary_by("vca").items()):
        print(f"  {vca:10s} uplink {summary['uplink_mbps_mean']:5.2f} Mbps  "
              f"downlink {summary['downlink_mbps_mean']:5.2f} Mbps  "
              f"({summary['sessions']:.0f} sessions)")

    print("\nper-user-count summary (the Fig. 6(c) growth):")
    for n, summary in sorted(campaign.summary_by("n_users").items(),
                             key=lambda kv: int(kv[0])):
        print(f"  {n} users: downlink "
              f"{summary['downlink_mbps_mean']:5.2f} Mbps")

    out = Path(tempfile.gettempdir()) / "telepresence_campaign.csv"
    campaign.to_csv(out)
    print(f"\nfull records: {out} "
          f"({len(campaign.records)} rows)")


if __name__ == "__main__":
    main()
