#!/usr/bin/env python3
"""Quickstart: run one immersive FaceTime session and inspect it.

Builds the paper's Fig. 3 testbed (two Vision Pro users behind their own
WiFi APs), places a FaceTime call, and prints what the paper's tooling
would observe: negotiated protocol, persona kind, selected relay server,
uplink/downlink throughput at U1's AP, and the receiver-side persona
availability.
"""

from repro.analysis import classify_capture, throughput_summary
from repro.core import default_two_user_testbed
from repro.netsim import Direction
from repro.vca import FACETIME


def main() -> None:
    testbed = default_two_user_testbed()  # U1 in San Jose, U2 in Dallas
    session = testbed.session(FACETIME, seed=0)
    print(f"persona kind : {session.persona_kind.value}")
    print(f"protocol     : {session.protocol.value}")
    print(f"p2p          : {session.p2p}")
    print(f"relay server : {session.server.location.name} "
          f"({session.server.vca}/{session.server.label})")

    result = session.run(duration_s=30.0)

    capture = result.capture_of("U1")
    up = throughput_summary(capture, Direction.UPLINK)
    down = throughput_summary(capture, Direction.DOWNLINK)
    print(f"\nU1 uplink    : {up.mean:.2f} Mbps "
          f"(p5 {up.p5:.2f} / p95 {up.p95:.2f})")
    print(f"U1 downlink  : {down.mean:.2f} Mbps")

    report = classify_capture(capture)
    print(f"classifier   : {report.dominant} "
          f"({report.quic_packets} QUIC / {report.rtp_packets} RTP packets)")

    receiver = result.receiver_of("U2")
    u1_address = result.addresses["U1"]
    stats = receiver.stats[u1_address]
    print(f"\nU2 sees U1's persona at {stats.delivered_fps():.1f} FPS "
          f"(availability {stats.availability():.1%}, "
          f"poor connection: {stats.poor_connection()})")


if __name__ == "__main__":
    main()
