#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Prints a paper-vs-measured report for Table 1, Fig. 4, the Sec. 4.3
content analysis, Fig. 5, Fig. 6, and the three ablations.  This is the
script behind EXPERIMENTS.md; expect a few minutes of runtime.

Usage::

    python examples/reproduce_paper.py [--quick]

``--quick`` shortens session durations and repeats (for smoke runs).
"""

import argparse
import sys

import numpy as np

from repro import calibration
from repro.experiments import (
    ablations,
    content_delivery,
    fig4,
    fig5,
    fig6,
    protocols,
    rate_adaptation,
    table1,
)


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shorter sessions / fewer repeats")
    args = parser.parse_args()
    duration = 10.0 if args.quick else 30.0
    repeats = 2 if args.quick else calibration.MIN_REPEATS

    banner("Table 1 — server RTT matrix (ms)")
    t1 = table1.run(repeats=repeats, seed=0)
    print(t1.format_table())
    errors = [abs(m - p) for _, _, m, p in t1.paper_comparison()]
    print(f"\nmean |error| vs paper: {np.mean(errors):.1f} ms "
          f"(worst {max(errors):.1f} ms); "
          f"max cell std {t1.max_std_ms():.1f} ms (paper bound < 7 ms)")

    banner("Sec. 4.1 — protocols, P2P, server selection, anycast")
    for obs in protocols.run_protocol_matrix(seed=0):
        print(f"  {obs.vca:10s} {obs.device_mix:26s} -> "
              f"{obs.observed_protocol:5s} p2p={obs.p2p}")
    print("  RTP fallback keeps 2D payload types:",
          protocols.facetime_fallback_keeps_2d_payload_type(seed=0))
    print("  anycast verdicts:", protocols.run_anycast_check(seed=0))

    banner("Fig. 4 — two-party uplink throughput (Mbps)")
    f4 = fig4.run(duration_s=duration, repeats=repeats, seed=0)
    print(f4.format_table())
    print("paper means:", fig4.PAPER_MEANS_MBPS)
    print("ordering F < Z < F* < T < W holds:", f4.ordering_holds())

    banner("Sec. 4.3 — what is being delivered?")
    mesh = content_delivery.run_mesh_streaming(seed=0)
    print(f"  Draco mesh streaming : {mesh.summary.mean:.1f} ± "
          f"{mesh.summary.std:.1f} Mbps (paper 107.4 ± 14.1)")
    keypoints = content_delivery.run_keypoint_streaming(seed=0)
    print(f"  keypoints + LZMA     : {keypoints.mbps.mean:.3f} ± "
          f"{keypoints.mbps.std:.3f} Mbps (paper 0.64 ± 0.02)")
    latency = content_delivery.run_display_latency(seed=0)
    print(f"  display-latency diff invariant under 0-1000 ms tc delay: "
          f"{latency.local_mode_invariant()} (paper: < 16 ms)")

    banner("Sec. 4.3 — rate adaptation")
    ra = rate_adaptation.run(duration_s=duration / 2, seed=0)
    print(ra.format_table())
    print(f"cutoff: {ra.cutoff_kbps():.0f} Kbps (paper: 700); "
          f"no rate adaptation: {ra.no_rate_adaptation()}")

    banner("Fig. 5 — visibility-aware optimizations")
    f5 = fig5.run(seed=0)
    print(f5.format_table())
    reductions = f5.reductions_vs_baseline()
    print(f"GPU reductions: V {reductions['V']:.0%} (paper 59%), "
          f"F {reductions['F']:.0%} (paper 39%), "
          f"D {reductions['D']:.0%} (paper 40%)")
    occ = fig5.run_occlusion(occlusion_aware=False)
    print(f"occlusion optimization adopted: {occ.optimization_adopted()} "
          f"(paper: not adopted)")
    invariance = fig5.run_delivery_invariance(seed=0)
    print(f"bandwidth unchanged: {invariance.bandwidth_unchanged()}; "
          f"CPU unchanged: {invariance.cpu_unchanged()} (paper: both)")

    banner("Fig. 6 — scalability, 2-5 users")
    rendering = fig6.run_rendering(duration_s=duration, repeats=repeats, seed=0)
    print(rendering.format_table())
    print(f"GPU p95 at 5 users > 9 ms: {rendering.gpu_approaches_deadline()} "
          f"(deadline {calibration.FRAME_DEADLINE_MS:.1f} ms)")
    network = fig6.run_network(duration_s=duration / 2, repeats=repeats, seed=0)
    print(network.format_table())
    print("downlink linear:", network.grows_linearly())

    banner("Ablations — the optimizations the paper proposes")
    a1 = ablations.run_delivery_culling(n_users=5, duration_s=duration)
    print(f"A1 visibility-aware delivery: {a1.baseline_mbps:.2f} -> "
          f"{a1.culled_mbps:.2f} Mbps ({a1.savings_fraction:.0%} saved)")
    for a2 in ablations.run_server_policies():
        print(f"A2 {a2.scenario}: worst pair RTT "
              f"{a2.initiator_nearest_ms:.0f} -> {a2.geo_distributed_ms:.0f} ms "
              f"({a2.improvement_fraction:.0%} better)")
    a3 = fig5.run_occlusion(occlusion_aware=True)
    print(f"A3 occlusion-aware rendering: {a3.spread_triangles} -> "
          f"{a3.line_triangles} triangles when personas line up")


if __name__ == "__main__":
    sys.exit(main())
