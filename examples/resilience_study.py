#!/usr/bin/env python3
"""Beyond the paper: how the telepresence stack survives a hostile network.

The paper measures the four VCAs on a clean testbed.  This study throws
the standard fault gauntlet at each of them — a link blackout, a relay
outage, a loss burst, a bandwidth collapse, and a WiFi degradation — with
the resilience runtime enabled, and reports how gracefully each call
degrades and recovers:

- the graceful-degradation ladder (textured mesh -> simplified mesh ->
  keypoints -> audio-only) walks down under pressure and climbs back,
- relayed sessions detect the dead relay and fail over to the best
  healthy server of the fleet (exponential backoff while none exists),
- the receiver-side report gives per-fault time-to-recover, stall time,
  ladder occupancy, and the windowed MOS under faults.

Run with ``PYTHONPATH=src python examples/resilience_study.py``.
"""

from repro.experiments import resilience
from repro.faults import FaultSchedule, ResilienceConfig
from repro.core.testbed import default_two_user_testbed
from repro.vca.profiles import PROFILES

DURATION_S = 30.0


def main() -> None:
    print("=== The standard gauntlet, all four profiles ===")
    study = resilience.run(duration_s=DURATION_S, seed=0)
    print(study.format_table())
    print(f"all profiles recovered: {study.all_recovered()}")

    print("\n=== FaceTime in detail ===")
    detail = study.details["FaceTime"]
    report = detail.report(resilience.OBSERVER, resilience.VICTIM)
    for rec in report.recoveries:
        state = ("absorbed by the ladder" if rec.absorbed
                 else f"recovered in {rec.time_to_recover_s:.2f} s")
        print(f"  {rec.event.kind.value:18s} at t={rec.event.start_s:5.1f}s"
              f"  -> {state}")
    for event in detail.reconnect_events:
        print(f"  relay failover {event.from_server} -> {event.to_server}"
              f" (downtime {event.downtime_s * 1000:.0f} ms)")
    ladder = detail.ladders[resilience.VICTIM]
    print("  ladder walk:")
    for time_s, level in ladder.transitions:
        print(f"    t={time_s:5.2f}s  {level.name}")

    print("\n=== Same seed, same gauntlet, identical outcome ===")
    again = resilience.run(duration_s=DURATION_S, seed=0,
                           profiles=("FaceTime",))
    identical = (
        again.row("FaceTime") == study.row("FaceTime")
        and again.details["FaceTime"].ladders[resilience.VICTIM].transitions
        == ladder.transitions
    )
    print(f"deterministic: {identical}")

    print("\n=== A seeded-random storm (FaceTime) ===")
    schedule = FaultSchedule.random(
        seed=23, duration_s=DURATION_S, targets=["U1", "U2"],
        events_per_minute=12.0,
    )
    session = default_two_user_testbed().session(
        PROFILES["FaceTime"], seed=0,
        faults=schedule, resilience=ResilienceConfig(),
    )
    result = session.run(DURATION_S).resilience
    report = result.report("U1", "U2")
    print(f"faults drawn: {len(schedule)}, stall {report.total_stall_s:.2f} s,"
          f" MOS {report.mos_mean:.2f}, recovered {report.all_recovered}")


if __name__ == "__main__":
    main()
