#!/usr/bin/env python3
"""Scalability study: 2 to 5 Vision Pro users (the paper's Fig. 6).

Runs natural multi-party sessions and prints the rendered-triangle, CPU,
GPU, and downlink-throughput scaling — including the observation that
motivates FaceTime's five-persona cap: the GPU's 95th percentile passes
9 ms at five users, brushing the 11.1 ms / 90 FPS deadline.
"""

from repro import calibration
from repro.experiments import fig6


def main() -> None:
    print("=== Rendering scalability (Fig. 6a, 6b) ===")
    rendering = fig6.run_rendering(duration_s=40.0, repeats=3, seed=0)
    print(rendering.format_table())
    print(f"\nGPU p95 at 5 users: {rendering.gpu_ms[5].p95:.2f} ms "
          f"(deadline {calibration.FRAME_DEADLINE_MS:.1f} ms) -> "
          f"approaching deadline: {rendering.gpu_approaches_deadline()}")
    print("triangles grow with users:", rendering.triangles_grow_with_users())
    print("p5 grows slower than mean (foveation):",
          rendering.p5_grows_slower_than_mean())

    print("\n=== Network scalability (Fig. 6c) ===")
    network = fig6.run_network(duration_s=15.0, repeats=3, seed=0)
    print(network.format_table())
    print("downlink grows linearly (pure SFU forwarding):",
          network.grows_linearly())


if __name__ == "__main__":
    main()
