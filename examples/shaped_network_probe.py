#!/usr/bin/env python3
"""tc-style shaping probe: the rate-adaptation cliff (Sec. 4.3).

Sweeps a token-bucket limit over U1's uplink during a spatial-persona
session.  The sender keeps offering its fixed ~0.68 Mbps — no rate
adaptation — so availability collapses once the limit crosses the stream's
operating point, reproducing the "poor connection" cutoff below 700 Kbps.
"""

from repro.experiments import rate_adaptation


def main() -> None:
    result = rate_adaptation.run(duration_s=15.0, seed=0)
    print(result.format_table())
    print(f"\ncutoff (lowest working limit) : {result.cutoff_kbps():.0f} Kbps "
          f"(paper: persona unavailable below 700 Kbps)")
    print(f"sender adapts its rate?       : "
          f"{not result.no_rate_adaptation()} "
          f"(offered rate constant across all limits)")


if __name__ == "__main__":
    main()
