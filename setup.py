"""Setuptools shim.

Kept so ``pip install -e .`` works on environments whose setuptools lacks a
bundled ``bdist_wheel`` (the offline test rig); all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
