"""repro — simulation-based reproduction of "A First Look at Immersive
Telepresence on Apple Vision Pro" (IMC 2024).

The package builds every substrate the paper's measurement study rests on
— a discrete-event network, RTP/QUIC transports, a geographic RTT model,
3D mesh and semantic keypoint codecs, a calibrated Vision Pro rendering
pipeline, and behavioural models of FaceTime/Zoom/Webex/Teams — and then
re-runs every table and figure of the paper on top of them.

Quick start::

    from repro.core import default_two_user_testbed
    from repro.vca import FACETIME
    from repro.analysis import throughput_summary
    from repro.netsim import Direction

    testbed = default_two_user_testbed()        # U1 + U2, both Vision Pro
    session = testbed.session(FACETIME, seed=0)
    result = session.run(duration_s=30)
    print(result.protocol)                      # Protocol.QUIC
    print(throughput_summary(result.capture_of("U1"), Direction.UPLINK))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro import calibration

__version__ = "1.0.0"

__all__ = ["calibration", "__version__"]
