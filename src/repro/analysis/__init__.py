"""Measurement analysis: the Wireshark-side of the study.

Turns packet captures into the observables the paper reports — windowed
throughput distributions (Fig. 4, Fig. 6(c)), protocol identification from
raw bytes (Sec. 4.1), and latency statistics (Table 1, Sec. 4.3).
"""

from repro.analysis.stats import SummaryStats, summarize_samples
from repro.analysis.throughput import (
    throughput_windows_mbps,
    throughput_summary,
)
from repro.analysis.protocol import ProtocolReport, classify_capture
from repro.analysis.latency import measure_server_rtts
from repro.analysis.qoe_estimation import PassiveQoeEstimate, estimate_from_capture
from repro.analysis.patterns import (
    Burst,
    InferredContent,
    TrafficProfile,
    classify_content,
    estimate_rtp_loss,
    largest_flow,
    profile_records,
    segment_bursts,
    split_flows,
)

__all__ = [
    "SummaryStats",
    "summarize_samples",
    "throughput_windows_mbps",
    "throughput_summary",
    "ProtocolReport",
    "classify_capture",
    "measure_server_rtts",
    "Burst",
    "InferredContent",
    "TrafficProfile",
    "classify_content",
    "estimate_rtp_loss",
    "largest_flow",
    "profile_records",
    "segment_bursts",
    "split_flows",
    "PassiveQoeEstimate",
    "estimate_from_capture",
]
