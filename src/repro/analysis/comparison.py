"""Structured paper-vs-measured validation.

A :class:`AnchorCheck` pairs one measured scalar with its published
anchor; :func:`validate_all` runs the cheap subset of experiments and
returns every check, so a single call (or ``pytest`` assertion) certifies
the whole calibration is intact after a model change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro import calibration


@dataclass(frozen=True)
class AnchorCheck:
    """One paper-vs-measured comparison."""

    name: str
    source: str
    measured: float
    paper_mean: float
    paper_std: float
    sigmas: float = 3.0

    @property
    def error(self) -> float:
        """Measured minus paper mean."""
        return self.measured - self.paper_mean

    @property
    def within_band(self) -> bool:
        """Whether the measurement lies within ``sigmas`` published stds."""
        band = max(self.paper_std, 1e-9) * self.sigmas
        return abs(self.error) <= band

    def row(self) -> str:
        """One report line."""
        flag = "ok " if self.within_band else "OFF"
        return (
            f"[{flag}] {self.name:28s} measured {self.measured:9.3f} "
            f"paper {self.paper_mean:9.3f} ± {self.paper_std:.3f} "
            f"({self.source})"
        )


def _gpu_checks() -> List[AnchorCheck]:
    from repro.experiments import fig5

    result = fig5.run(frames_per_scenario=150, seed=0)
    anchors = {
        "BL": calibration.GPU_MS_BASELINE,
        "V": calibration.GPU_MS_VIEWPORT,
        "F": calibration.GPU_MS_FOVEATED,
        "D": calibration.GPU_MS_DISTANCE,
    }
    return [
        AnchorCheck(
            name=f"fig5 gpu_ms {name}",
            source="Fig. 5",
            measured=result.gpu_ms[name].mean,
            paper_mean=mean,
            paper_std=std,
        )
        for name, (mean, std) in anchors.items()
    ]


def _codec_checks() -> List[AnchorCheck]:
    from repro.experiments import content_delivery

    mesh = content_delivery.run_mesh_streaming(seed=0)
    keypoints = content_delivery.run_keypoint_streaming(frames=400, seed=0)
    return [
        AnchorCheck(
            name="draco streaming Mbps",
            source="Sec. 4.3",
            measured=mesh.summary.mean,
            paper_mean=calibration.DRACO_STREAMING_MBPS[0],
            paper_std=calibration.DRACO_STREAMING_MBPS[1],
            sigmas=2.0,
        ),
        AnchorCheck(
            name="keypoint streaming Mbps",
            source="Sec. 4.3",
            measured=keypoints.mbps.mean,
            paper_mean=calibration.KEYPOINT_STREAMING_MBPS[0],
            paper_std=calibration.KEYPOINT_STREAMING_MBPS[1],
        ),
    ]


def _scalability_checks() -> List[AnchorCheck]:
    from repro.experiments import fig6

    rendering = fig6.run_rendering(duration_s=20.0, repeats=2, seed=0)
    pairs = [
        ("gpu_ms 2 users", rendering.gpu_ms[2].mean,
         calibration.GPU_MS_TWO_USERS),
        ("gpu_ms 5 users", rendering.gpu_ms[5].mean,
         calibration.GPU_MS_FIVE_USERS),
        ("cpu_ms 2 users", rendering.cpu_ms[2].mean,
         calibration.CPU_MS_TWO_USERS),
        ("cpu_ms 5 users", rendering.cpu_ms[5].mean,
         calibration.CPU_MS_FIVE_USERS),
    ]
    return [
        AnchorCheck(
            name=f"fig6 {name}",
            source="Fig. 6",
            measured=measured,
            paper_mean=mean,
            paper_std=std,
            sigmas=1.5,
        )
        for name, measured, (mean, std) in pairs
    ]


def _table1_checks() -> List[AnchorCheck]:
    from repro.experiments import table1

    result = table1.run(repeats=5, seed=0)
    errors = [
        abs(m - p) for _, _, m, p in result.paper_comparison()
    ]
    return [
        AnchorCheck(
            name="table1 mean |error| ms",
            source="Table 1",
            measured=float(np.mean(errors)),
            paper_mean=0.0,
            paper_std=calibration.TABLE1_RTT_STD_BOUND_MS,
            sigmas=1.2,
        )
    ]


def validate_all() -> List[AnchorCheck]:
    """Run every anchor check (takes on the order of a minute)."""
    checks: List[AnchorCheck] = []
    for builder in (_gpu_checks, _codec_checks, _scalability_checks,
                    _table1_checks):
        checks.extend(builder())
    return checks


def format_report(checks: List[AnchorCheck]) -> str:
    """Printable validation report."""
    lines = [check.row() for check in checks]
    failed = sum(1 for c in checks if not c.within_band)
    lines.append(
        f"{len(checks) - failed}/{len(checks)} anchors within band"
    )
    return "\n".join(lines)
