"""Active latency measurement: TCP pings to VCA servers.

The paper measures network latency with TCP pings from the WiFi APs to the
providers' servers, because Apple blocks ICMP (Sec. 3.2).  The probes here
run through the full simulated path — AP queues, shapers, wide-area core —
so the measured RTT is an emergent quantity, not a lookup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import SummaryStats, summarize_samples
from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel, DEFAULT_PATH_MODEL
from repro.geo.servers import Server
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.transport.probing import TcpPingResponder, tcp_ping


def measure_server_rtts(
    client_location: GeoPoint,
    servers: Sequence[Server],
    repeats: int = 5,
    path_model: Optional[PathModel] = None,
    seed: int = 0,
) -> Dict[str, SummaryStats]:
    """TCP-ping every server from one client location.

    Returns a map from ``"<vca>/<label>"`` to the RTT summary in ms.

    Each (client, server) pair gets a fresh simulated testbed so probe
    traffic never interferes across measurements, matching how the paper
    measures servers independently.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results: Dict[str, SummaryStats] = {}
    for index, server in enumerate(servers):
        model = (path_model or DEFAULT_PATH_MODEL).spawn(seed * 1000 + index)
        sim = Simulator()
        network = Network(sim, model)
        client = Host("10.9.0.2", client_location, name="probe-client")
        server_host = Host(server.address, server.location,
                           name=f"{server.vca}-{server.label}")
        network.attach(client)
        network.attach(server_host)
        TcpPingResponder(server_host)
        # Jitter the core path per probe by perturbing via the model's
        # sampled delay: the network uses the deterministic one-way delay,
        # so per-probe jitter is added as measured noise here.
        rtts = tcp_ping(sim, client, server.address, count=repeats)
        if len(rtts) != repeats:
            raise RuntimeError(
                f"lost probes to {server.vca}/{server.label}: "
                f"{len(rtts)}/{repeats} answered"
            )
        noise = model.sample_rtt_ms(client_location, server.location, repeats)
        base = model.base_rtt_ms(client_location, server.location)
        samples = list(np.asarray(rtts) + (noise - base))
        results[f"{server.vca}/{server.label}"] = summarize_samples(samples)
    return results
