"""Encrypted-traffic inference from packet transmission patterns.

Sec. 5 of the paper notes that the spatial persona stream is end-to-end
encrypted (QUIC + TLS 1.3), so content decryption is off the table, and
suggests "analyzing IP headers and packet transmission patterns" instead.
This module implements that program against captures:

- burst segmentation by inter-arrival gap (media frames are sent as
  back-to-back packet trains once per frame tick),
- frame-rate and frame-size estimation from the burst train,
- a content-type classifier (semantic / 2D video / mesh) that needs only
  sizes and timing — it works identically on encrypted payloads, and
- RTP loss estimation from cleartext sequence numbers (the one header
  field a passive observer does get on non-QUIC sessions, as prior work
  on Zoom [52] exploits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.netsim.capture import CapturedPacket
from repro.transport.rtp import RtpHeader, looks_like_rtp


def split_flows(records: Sequence[CapturedPacket]
                ) -> "dict[tuple, List[CapturedPacket]]":
    """Group capture records by 5-tuple, like Wireshark's conversations.

    Media applications put audio and video on distinct ports, so flow
    splitting is the first step of any pattern analysis.
    """
    flows: dict = {}
    for rec in records:
        flows.setdefault(rec.flow, []).append(rec)
    return flows


def largest_flow(records: Sequence[CapturedPacket]) -> List[CapturedPacket]:
    """The flow carrying the most bytes (usually the video/persona stream).

    Raises:
        ValueError: On an empty capture.
    """
    flows = split_flows(records)
    if not flows:
        raise ValueError("no records to split")
    return max(flows.values(), key=lambda rs: sum(r.wire_bytes for r in rs))


@dataclass(frozen=True)
class Burst:
    """One packet train, presumed to carry one media frame."""

    start: float
    end: float
    packets: int
    payload_bytes: int


def segment_bursts(records: Sequence[CapturedPacket],
                   gap_s: float = 0.004) -> List[Burst]:
    """Group records into bursts separated by more than ``gap_s``.

    Media sources emit each frame as a back-to-back train; consecutive
    frames at 30-90 FPS are >= 11 ms apart, so a few milliseconds of gap
    cleanly separates them.
    """
    if gap_s <= 0:
        raise ValueError("gap must be positive")
    bursts: List[Burst] = []
    start = end = None
    packets = 0
    size = 0
    for rec in records:
        if start is None:
            start, end, packets, size = rec.timestamp, rec.timestamp, 1, rec.wire_bytes
            continue
        if rec.timestamp - end > gap_s:
            bursts.append(Burst(start, end, packets, size))
            start, end, packets, size = rec.timestamp, rec.timestamp, 1, rec.wire_bytes
        else:
            end = rec.timestamp
            packets += 1
            size += rec.wire_bytes
    if start is not None:
        bursts.append(Burst(start, end, packets, size))
    return bursts


@dataclass(frozen=True)
class TrafficProfile:
    """Pattern-level description of one captured media stream."""

    burst_count: int
    estimated_fps: float
    mean_frame_bytes: float
    frame_size_cv: float       # coefficient of variation of burst sizes
    mean_packets_per_frame: float
    mean_mbps: float


def profile_records(records: Sequence[CapturedPacket],
                    gap_s: float = 0.004) -> TrafficProfile:
    """Estimate frame rate / frame sizes from sizes and timing alone.

    Raises:
        ValueError: With fewer than two bursts (nothing to rate).
    """
    bursts = segment_bursts(records, gap_s)
    if len(bursts) < 2:
        raise ValueError("need at least two bursts to profile a stream")
    span = bursts[-1].start - bursts[0].start
    sizes = np.array([b.payload_bytes for b in bursts], dtype=float)
    fps = (len(bursts) - 1) / span if span > 0 else 0.0
    return TrafficProfile(
        burst_count=len(bursts),
        estimated_fps=fps,
        mean_frame_bytes=float(sizes.mean()),
        frame_size_cv=float(sizes.std() / sizes.mean()) if sizes.mean() else 0.0,
        mean_packets_per_frame=float(np.mean([b.packets for b in bursts])),
        mean_mbps=float(sizes.sum() * 8.0 / span / 1e6) if span > 0 else 0.0,
    )


class InferredContent(enum.Enum):
    """What the pattern classifier believes a stream carries."""

    SEMANTIC_KEYPOINTS = "semantic"
    VIDEO_2D = "video"
    MESH_3D = "mesh"
    UNKNOWN = "unknown"


def classify_content(profile: TrafficProfile) -> InferredContent:
    """Classify a stream from its transmission pattern.

    The three delivery approaches of Sec. 4.3 have cleanly separable
    signatures:

    - **semantic**: ~90 bursts/s, single small packet, near-constant size;
    - **2D video**: ~24-60 bursts/s, a few packets per frame, bursty sizes
      (the I/P group-of-pictures pattern gives a high size CV);
    - **mesh**: ~90 bursts/s of *many* MTU-sized packets (>100 KB/frame).
    """
    if profile.mean_frame_bytes > 20_000 and profile.mean_packets_per_frame > 20:
        return InferredContent.MESH_3D
    if (
        profile.estimated_fps > 60
        and profile.mean_packets_per_frame < 3
        and profile.frame_size_cv < 0.2
    ):
        return InferredContent.SEMANTIC_KEYPOINTS
    if 10 <= profile.estimated_fps <= 65 and profile.frame_size_cv >= 0.15:
        return InferredContent.VIDEO_2D
    return InferredContent.UNKNOWN


@dataclass(frozen=True)
class RtpLossEstimate:
    """Loss inferred from cleartext RTP sequence numbers."""

    received: int
    expected: int

    @property
    def loss_rate(self) -> float:
        """Estimated fraction of packets lost in the network."""
        if self.expected <= 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.expected)


def estimate_rtp_loss(records: Sequence[CapturedPacket]) -> RtpLossEstimate:
    """Count sequence gaps across the RTP records of one direction.

    Only usable on RTP sessions — QUIC hides its packet numbers from a
    passive observer, which is exactly the paper's Sec. 5 point.
    """
    sequences = []
    for rec in records:
        if looks_like_rtp(rec.snap):
            try:
                sequences.append(RtpHeader.parse(rec.snap).sequence)
            except ValueError:
                continue
    if not sequences:
        return RtpLossEstimate(received=0, expected=0)
    # Unwrap the 16-bit counter.
    extended = [sequences[0]]
    for seq in sequences[1:]:
        prev = extended[-1]
        candidate = (prev & ~0xFFFF) | seq
        if candidate < prev - 0x8000:
            candidate += 0x10000
        extended.append(candidate)
    expected = max(extended) - min(extended) + 1
    return RtpLossEstimate(received=len(set(extended)), expected=expected)
