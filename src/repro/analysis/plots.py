"""ASCII box-and-whisker plots for terminal-friendly figures.

The paper's Figures 4-6 are box plots (5th/25th/75th/95th percentiles,
median, mean).  This module renders the same summaries as monospace art so
every experiment's output can be eyeballed against the paper without a
plotting stack.

Example output::

    F     |--[=|==]------------------|          mean 0.68
    Z        |----[==|=]----|                   mean 1.52
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.stats import SummaryStats


def render_box(stats: SummaryStats, lo: float, hi: float,
               width: int = 50) -> str:
    """One box-plot row scaled into [lo, hi] over ``width`` columns.

    Glyphs: ``|--[==|==]--|`` → whiskers at p5/p95, box at p25/p75,
    ``|`` inside the box at the median, ``*`` at the mean.

    Raises:
        ValueError: On a degenerate range or tiny width.
    """
    if hi <= lo:
        raise ValueError("need hi > lo")
    if width < 10:
        raise ValueError("width too small to draw a box")

    def col(value: float) -> int:
        clamped = min(max(value, lo), hi)
        return round((clamped - lo) / (hi - lo) * (width - 1))

    cells = [" "] * width
    for i in range(col(stats.p5), col(stats.p95) + 1):
        cells[i] = "-"
    for i in range(col(stats.p25), col(stats.p75) + 1):
        cells[i] = "="
    # Structural glyphs win over markers when columns collide: the mean is
    # also printed as text by box_plot, so losing its glyph is harmless.
    cells[col(stats.mean)] = "*"
    cells[col(stats.median)] = "|"
    cells[col(stats.p5)] = "|"
    cells[col(stats.p95)] = "|"
    cells[col(stats.p25)] = "["
    cells[col(stats.p75)] = "]"
    return "".join(cells)


def box_plot(
    series: Dict[str, SummaryStats],
    width: int = 50,
    unit: str = "",
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """A multi-row box plot with a shared scale and axis caption.

    Raises:
        ValueError: With no series.
    """
    if not series:
        raise ValueError("nothing to plot")
    lo_val = min(s.p5 for s in series.values()) if lo is None else lo
    hi_val = max(s.p95 for s in series.values()) if hi is None else hi
    if hi_val <= lo_val:
        hi_val = lo_val + 1.0
    span = hi_val - lo_val
    lo_val -= 0.05 * span
    hi_val += 0.05 * span
    label_width = max(len(k) for k in series)
    lines = []
    for name, stats in series.items():
        row = render_box(stats, lo_val, hi_val, width)
        lines.append(f"{name:<{label_width}s} {row} mean {stats.mean:.2f}{unit}")
    axis = (
        f"{'':<{label_width}s} {lo_val:<{width // 2}.2f}"
        f"{hi_val:>{width - width // 2}.2f}"
    )
    lines.append(axis)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend glyph string (8 levels).

    Raises:
        ValueError: On empty input.
    """
    if not values:
        raise ValueError("nothing to plot")
    glyphs = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi <= lo:
        return glyphs[0] * len(values)
    out = []
    for v in values:
        index = int((v - lo) / (hi - lo) * (len(glyphs) - 1))
        out.append(glyphs[index])
    return "".join(out)
