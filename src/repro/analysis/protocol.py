"""Passive protocol identification from captured bytes.

Sec. 4.1 identifies each session's transport by inspecting packets with
Wireshark: QUIC is recognizable by its header invariants, RTP by the
version bits and a stable Payload Type.  The classifier here does the same
against the snap bytes retained in captures — it never looks at the
simulator's metadata, so it sees exactly what a passive observer sees.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.netsim.capture import CapturedPacket, PacketCapture
from repro.transport.quic import is_quic_datagram
from repro.transport.rtp import RtpHeader, looks_like_rtp


@dataclass
class ProtocolReport:
    """What a passive observer concludes about a capture."""

    quic_packets: int = 0
    rtp_packets: int = 0
    other_packets: int = 0
    payload_types: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        """Total classified packets."""
        return self.quic_packets + self.rtp_packets + self.other_packets

    @property
    def dominant(self) -> str:
        """The majority protocol label: 'quic', 'rtp', or 'other'."""
        counts = {
            "quic": self.quic_packets,
            "rtp": self.rtp_packets,
            "other": self.other_packets,
        }
        return max(counts, key=counts.get)  # type: ignore[arg-type]

    def dominant_payload_type(self) -> Optional[int]:
        """Most frequent RTP payload type, if any RTP was seen."""
        if not self.payload_types:
            return None
        return self.payload_types.most_common(1)[0][0]


def classify_records(records: Sequence[CapturedPacket]) -> ProtocolReport:
    """Classify a list of capture records byte-first.

    RTP and QUIC first bytes are disjoint (RTP: version 2 -> 0b10xxxxxx
    with the QUIC fixed bit clear; QUIC: fixed bit 0x40 set), which is the
    same separation Wireshark's heuristic dissector uses.
    """
    report = ProtocolReport()
    for rec in records:
        snap = rec.snap
        if looks_like_rtp(snap) and not is_quic_datagram(snap):
            report.rtp_packets += 1
            try:
                report.payload_types[RtpHeader.parse(snap).payload_type] += 1
            except ValueError:
                pass
        elif is_quic_datagram(snap):
            report.quic_packets += 1
        else:
            report.other_packets += 1
    return report


def classify_capture(capture: PacketCapture) -> ProtocolReport:
    """Classify every record of one AP capture."""
    return classify_records(capture.records)
