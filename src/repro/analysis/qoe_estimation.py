"""Passive QoE estimation from captures (no application headers).

Sharma et al. [62], which the paper cites as the path around end-to-end
encryption, estimate WebRTC QoE metrics from IP/UDP-level observables.
The same program runs here against simulated captures: the pattern
analyzer supplies frame rate and stream health, RTP sequence numbers (when
the session is not QUIC) supply loss, and the geographic observer supplies
delay — all of which feed the :mod:`repro.vca.qoe` model to score a
session the way an ISP-side monitor would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.patterns import (
    estimate_rtp_loss,
    largest_flow,
    profile_records,
)
from repro.analysis.protocol import classify_records
from repro.netsim.capture import Direction, PacketCapture
from repro.vca.qoe import QoeFactors, score


@dataclass(frozen=True)
class PassiveQoeEstimate:
    """What a passive observer concludes about one session leg."""

    protocol: str
    estimated_fps: float
    estimated_loss: Optional[float]  # None on QUIC (sequence #s hidden)
    stream_mbps: float
    qoe_score: float


def estimate_from_capture(
    capture: PacketCapture,
    direction: Direction = Direction.DOWNLINK,
    one_way_delay_ms: float = 40.0,
    target_fps: Optional[float] = None,
) -> PassiveQoeEstimate:
    """Estimate QoE for the dominant media flow of one capture direction.

    Args:
        capture: The AP capture to analyze.
        direction: Which leg to score (downlink = what this user sees).
        one_way_delay_ms: Path delay, measured separately (TCP pings).
        target_fps: Expected frame rate; inferred from the stream's own
            cadence when omitted (30 for video-like, 90 for semantic-like).

    Raises:
        ValueError: When the capture holds no analyzable media flow.
    """
    records = capture.filter(direction=direction)
    if not records:
        raise ValueError("no records in this direction")
    flow = largest_flow(records)
    profile = profile_records(flow)
    report = classify_records(flow)
    protocol = report.dominant

    loss: Optional[float] = None
    availability = 1.0
    if protocol == "rtp":
        estimate = estimate_rtp_loss(flow)
        loss = estimate.loss_rate
        availability = max(0.0, 1.0 - estimate.loss_rate)

    if target_fps is None:
        target_fps = 90.0 if profile.estimated_fps > 60 else 30.0
    displayed_fps = min(profile.estimated_fps, target_fps)
    # Scale displayed FPS onto the 90 FPS axis the QoE model expects:
    # delivering the stream's own target cleanly counts as full rate.
    normalized_fps = 90.0 * displayed_fps / target_fps

    factors = QoeFactors(
        one_way_delay_ms=one_way_delay_ms,
        persona_availability=availability,
        displayed_fps=normalized_fps,
    )
    return PassiveQoeEstimate(
        protocol=protocol,
        estimated_fps=profile.estimated_fps,
        estimated_loss=loss,
        stream_mbps=profile.mean_mbps,
        qoe_score=score(factors),
    )
