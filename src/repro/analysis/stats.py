"""Summary statistics in the paper's box-plot vocabulary.

Figures 4-6 of the paper report the 5th/25th/75th/95th percentiles, the
median, and the mean of each metric; :class:`SummaryStats` carries exactly
those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """The paper's box-plot summary of one sample set."""

    mean: float
    std: float
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    count: int

    def row(self, label: str, unit: str = "") -> str:
        """A printable table row."""
        return (
            f"{label:28s} mean={self.mean:8.2f}{unit} std={self.std:6.2f} "
            f"p5={self.p5:8.2f} p25={self.p25:8.2f} med={self.median:8.2f} "
            f"p75={self.p75:8.2f} p95={self.p95:8.2f} (n={self.count})"
        )


def summarize_samples(samples: Sequence[float]) -> SummaryStats:
    """Compute the paper's summary for a sample set.

    Raises:
        ValueError: On an empty sample set.
    """
    if len(samples) == 0:
        raise ValueError("cannot summarize zero samples")
    data = np.asarray(samples, dtype=float)
    p5, p25, p50, p75, p95 = np.percentile(data, [5, 25, 50, 75, 95])
    return SummaryStats(
        mean=float(data.mean()),
        std=float(data.std()),
        p5=float(p5),
        p25=float(p25),
        median=float(p50),
        p75=float(p75),
        p95=float(p95),
        count=len(data),
    )
