"""Throughput extraction from packet captures.

The paper measures application throughput by capturing at the WiFi APs and
windowing the byte counts (Sec. 3.2, Fig. 4).  The same procedure runs
here against :class:`~repro.netsim.capture.PacketCapture` records.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.stats import SummaryStats, summarize_samples
from repro.netsim.capture import Direction, PacketCapture


def throughput_windows_mbps(
    capture: PacketCapture,
    direction: Direction,
    window_s: float = 1.0,
    peer: Optional[str] = None,
    skip_head_s: float = 1.0,
) -> List[float]:
    """Per-window throughput samples in Mbps.

    Args:
        capture: The AP capture to analyze.
        direction: Uplink or downlink relative to the monitored host.
        window_s: Window width in seconds.
        peer: Restrict to traffic with this remote address.
        skip_head_s: Ignore the first seconds (handshakes, ramp-up).

    Raises:
        ValueError: For a non-positive window.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    records = capture.filter(direction=direction, peer=peer)
    if not records:
        return []
    start = records[0].timestamp + skip_head_s
    end = records[-1].timestamp
    if end <= start:
        return []
    n_windows = int((end - start) / window_s)
    if n_windows < 1:
        return []
    sums = np.zeros(n_windows)
    for rec in records:
        if rec.timestamp < start:
            continue  # int() truncates toward zero; guard the head
        index = int((rec.timestamp - start) / window_s)
        if index < n_windows:
            sums[index] += rec.wire_bytes
    return list(sums * 8.0 / window_s / 1e6)


def cohort_throughput_windows_mbps(
    captures: List[PacketCapture],
    direction: Direction,
    window_s: float = 1.0,
    peer: Optional[str] = None,
    skip_head_s: float = 1.0,
) -> List[List[float]]:
    """Per-window throughput for a whole cohort of captures at once.

    The batched counterpart of :func:`throughput_windows_mbps`: one
    entry per capture, each computed with vectorized numpy reductions
    (window assignment and byte sums as array operations) instead of a
    per-record Python loop.  Results are identical to the scalar
    function — wire sizes are integers well below 2**53, so the
    ``bincount`` accumulation is exact — which the batch-equivalence
    suite asserts.

    Raises:
        ValueError: For a non-positive window.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    out: List[List[float]] = []
    for capture in captures:
        records = capture.filter(direction=direction, peer=peer)
        if not records:
            out.append([])
            continue
        start = records[0].timestamp + skip_head_s
        end = records[-1].timestamp
        if end <= start:
            out.append([])
            continue
        n_windows = int((end - start) / window_s)
        if n_windows < 1:
            out.append([])
            continue
        ts = np.array([r.timestamp for r in records])
        wire = np.array([r.wire_bytes for r in records], dtype=np.float64)
        rel = ts - start
        index = (rel / window_s).astype(np.int64)
        valid = (rel >= 0) & (index < n_windows)
        sums = np.bincount(index[valid], weights=wire[valid],
                           minlength=n_windows)
        out.append(list(sums * 8.0 / window_s / 1e6))
    return out


def throughput_summary(
    capture: PacketCapture,
    direction: Direction,
    window_s: float = 1.0,
    peer: Optional[str] = None,
) -> SummaryStats:
    """Box-plot summary of windowed throughput (the Fig. 4 observable)."""
    windows = throughput_windows_mbps(capture, direction, window_s, peer)
    return summarize_samples(windows)


def mean_throughput_mbps(capture: PacketCapture, direction: Direction,
                         duration_s: float) -> float:
    """Coarse mean over the whole capture (bytes / duration)."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return capture.total_bytes(direction) * 8.0 / duration_s / 1e6
