"""Throughput extraction from packet captures.

The paper measures application throughput by capturing at the WiFi APs and
windowing the byte counts (Sec. 3.2, Fig. 4).  The same procedure runs
here against :class:`~repro.netsim.capture.PacketCapture` records.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.stats import SummaryStats, summarize_samples
from repro.netsim.capture import Direction, PacketCapture


def throughput_windows_mbps(
    capture: PacketCapture,
    direction: Direction,
    window_s: float = 1.0,
    peer: Optional[str] = None,
    skip_head_s: float = 1.0,
) -> List[float]:
    """Per-window throughput samples in Mbps.

    Args:
        capture: The AP capture to analyze.
        direction: Uplink or downlink relative to the monitored host.
        window_s: Window width in seconds.
        peer: Restrict to traffic with this remote address.
        skip_head_s: Ignore the first seconds (handshakes, ramp-up).

    Raises:
        ValueError: For a non-positive window.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    records = capture.filter(direction=direction, peer=peer)
    if not records:
        return []
    start = records[0].timestamp + skip_head_s
    end = records[-1].timestamp
    if end <= start:
        return []
    n_windows = int((end - start) / window_s)
    if n_windows < 1:
        return []
    sums = np.zeros(n_windows)
    for rec in records:
        if rec.timestamp < start:
            continue  # int() truncates toward zero; guard the head
        index = int((rec.timestamp - start) / window_s)
        if index < n_windows:
            sums[index] += rec.wire_bytes
    return list(sums * 8.0 / window_s / 1e6)


def throughput_summary(
    capture: PacketCapture,
    direction: Direction,
    window_s: float = 1.0,
    peer: Optional[str] = None,
) -> SummaryStats:
    """Box-plot summary of windowed throughput (the Fig. 4 observable)."""
    windows = throughput_windows_mbps(capture, direction, window_s, peer)
    return summarize_samples(windows)


def mean_throughput_mbps(capture: PacketCapture, direction: Direction,
                         duration_s: float) -> float:
    """Coarse mean over the whole capture (bytes / duration)."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return capture.total_bytes(direction) * 8.0 / duration_s / 1e6
