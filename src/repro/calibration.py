"""Calibration constants anchored to the paper's published measurements.

Every number a simulated component is fit against lives here, together with a
pointer to the section, table, or figure of the paper it comes from.  Keeping
them in one module makes the provenance of the simulation auditable: a model
elsewhere in the package never hard-codes a paper number directly, it imports
it from here.

Paper: Cheng, Wu, Varvello, Chai, Chen, Han.  "A First Look at Immersive
Telepresence on Apple Vision Pro."  ACM IMC 2024.
"""

from __future__ import annotations

from dataclasses import dataclass


# ---------------------------------------------------------------------------
# Display / rendering targets (Sec. 3.2, Sec. 4.5)
# ---------------------------------------------------------------------------

#: Target frame rate of the Vision Pro display pipeline (Sec. 3.2, [10]).
TARGET_FPS = 90

#: Per-frame rendering deadline in milliseconds at the 90 FPS target
#: (Sec. 1 and Sec. 4.5 call this ~11 ms / 11.1 ms).
FRAME_DEADLINE_MS = 1000.0 / TARGET_FPS

#: Maximum number of concurrent spatial personas FaceTime supports (Sec. 1, [16]).
MAX_SPATIAL_PERSONAS = 5


# ---------------------------------------------------------------------------
# Spatial persona mesh (Sec. 4.3, Sec. 4.4)
# ---------------------------------------------------------------------------

#: Triangle count of a full-quality spatial persona mesh as reported by the
#: RealityKit tool (Sec. 4.3 / Sec. 4.4 baseline).
PERSONA_TRIANGLES = 78_030

#: Triangle count rendered when the persona is outside the viewport
#: (Sec. 4.4, viewport adaptation: 78,030 -> 36).
VIEWPORT_CULLED_TRIANGLES = 36

#: Triangle count rendered when the persona sits in peripheral vision
#: (Sec. 4.4, foveated rendering: -73% -> 21,036).
FOVEATED_TRIANGLES = 21_036

#: Triangle count rendered beyond the 3 m distance threshold
#: (Sec. 4.4, distance-aware optimization: -42% -> 45,036).
DISTANCE_TRIANGLES = 45_036

#: Viewing distance (meters) beyond which the lower-quality persona mesh is
#: displayed (Sec. 4.4).
DISTANCE_LOD_THRESHOLD_M = 3.0

#: Sketchfab head meshes used for the Draco streaming experiment span roughly
#: 70K to 90K triangles (Sec. 4.3).
SKETCHFAB_HEAD_TRIANGLE_RANGE = (70_000, 90_000)


# ---------------------------------------------------------------------------
# Fig. 5 — GPU time per frame for a single persona (ms)
# ---------------------------------------------------------------------------

#: (mean_ms, std_ms) GPU processing time per frame, baseline: staring at the
#: persona from 1 m (Sec. 4.4).
GPU_MS_BASELINE = (6.55, 0.11)

#: Viewport adaptation: persona out of view (-59% GPU time).
GPU_MS_VIEWPORT = (2.68, 0.05)

#: Foveated rendering: persona in peripheral vision (-39% GPU time).
GPU_MS_FOVEATED = (3.97, 0.07)

#: Distance-aware: persona beyond 3 m (-40% GPU time).
GPU_MS_DISTANCE = (3.91, 0.05)


# ---------------------------------------------------------------------------
# Fig. 6 — scalability, 2 to 5 all-Vision-Pro users
# ---------------------------------------------------------------------------

#: (mean_ms, std_ms) GPU processing time per frame at 2 and 5 users (Sec. 4.5).
GPU_MS_TWO_USERS = (5.65, 0.69)
GPU_MS_FIVE_USERS = (7.62, 1.29)

#: (mean_ms, std_ms) CPU processing time per frame at 2 and 5 users (Sec. 4.5).
CPU_MS_TWO_USERS = (5.67, 0.69)
CPU_MS_FIVE_USERS = (6.76, 1.29)


# ---------------------------------------------------------------------------
# Throughput (Fig. 4, Sec. 4.2, Sec. 4.3)
# ---------------------------------------------------------------------------

#: Mean uplink throughput of a spatial persona stream (Mbps), Sec. 4.3.
SPATIAL_PERSONA_MBPS = 0.67

#: Approximate uplink throughput of FaceTime's 2D persona (Mbps), Sec. 4.2.
FACETIME_2D_MBPS = 2.0

#: Approximate uplink throughput of Zoom's 2D persona (Mbps), Sec. 4.2.
ZOOM_MBPS = 1.5

#: Webex consumes the most bandwidth, > 4 Mbps (Sec. 4.2).
WEBEX_MBPS = 4.3

#: Teams sits between FaceTime-2D and Webex in Fig. 4 (exact value not printed
#: in the text; see DESIGN.md "unspecified choices").
TEAMS_MBPS = 2.8

#: 2D persona render resolutions observed by the paper (Sec. 4.2).
WEBEX_RESOLUTION = (1920, 1080)
ZOOM_RESOLUTION = (640, 360)

#: Draco-compressed mesh streaming at 90 FPS (mean, std) in Mbps, Sec. 4.3.
DRACO_STREAMING_MBPS = (107.4, 14.1)

#: LZMA-compressed 74-keypoint streaming at 90 FPS (mean, std) in Mbps, Sec. 4.3.
KEYPOINT_STREAMING_MBPS = (0.64, 0.02)

#: Number of semantic keypoints delivered per frame (Sec. 4.3):
#: 32 mouth+eye facial keypoints plus two 21-point hands.
FACIAL_SEMANTIC_KEYPOINTS = 32
HAND_KEYPOINTS = 21
SEMANTIC_KEYPOINTS_TOTAL = FACIAL_SEMANTIC_KEYPOINTS + 2 * HAND_KEYPOINTS

#: Uplink bandwidth (Kbps) below which the spatial persona becomes unavailable
#: and FaceTime shows "poor connection" (Sec. 4.3).
RATE_ADAPTATION_CUTOFF_KBPS = 700

#: RGB-D capture length used for the keypoint experiment (frames), Sec. 4.3.
RGBD_CAPTURE_FRAMES = 2_000


# ---------------------------------------------------------------------------
# Display latency (Sec. 4.3)
# ---------------------------------------------------------------------------

#: Upper bound on the measured passthrough-vs-persona display latency
#: difference (ms), invariant under 0-1000 ms of injected network delay.
DISPLAY_LATENCY_DIFF_BOUND_MS = 16.0

#: Range of extra network delay injected with tc (ms), Sec. 4.3.
INJECTED_DELAY_RANGE_MS = (0, 1000)


# ---------------------------------------------------------------------------
# Table 1 — server RTT matrix (ms)
# ---------------------------------------------------------------------------

#: Table 1 of the paper.  Rows: test-user region (W, M, E).  Columns follow
#: the paper's layout: FaceTime W/M1/M2/E, Zoom W/E, Webex W/M/E, Teams W.
TABLE1_COLUMNS = (
    ("FaceTime", "W"),
    ("FaceTime", "M1"),
    ("FaceTime", "M2"),
    ("FaceTime", "E"),
    ("Zoom", "W"),
    ("Zoom", "E"),
    ("Webex", "W"),
    ("Webex", "M"),
    ("Webex", "E"),
    ("Teams", "W"),
)

#: Published mean RTTs; std of every cell is < 7 ms (Table 1 caption).
TABLE1_RTT_MS = {
    "W": (8.8, 38.0, 60.0, 77.0, 14.0, 76.0, 12.0, 40.0, 76.0, 31.0),
    "M": (40.0, 6.7, 25.0, 44.0, 42.0, 33.0, 45.0, 5.9, 47.0, 52.0),
    "E": (79.0, 36.0, 25.0, 8.7, 71.0, 9.8, 75.0, 33.0, 12.0, 56.0),
}

TABLE1_RTT_STD_BOUND_MS = 7.0

#: Number of US servers operated by each VCA (Sec. 4.1).
SERVER_COUNTS = {"FaceTime": 4, "Zoom": 2, "Webex": 3, "Teams": 1}


# ---------------------------------------------------------------------------
# Network path model (fit to Table 1; see repro.geo.latency)
# ---------------------------------------------------------------------------

#: Speed of light in fiber, meters per second (c * ~0.67).
FIBER_SPEED_MPS = 2.0e8

#: Multiplicative great-circle -> routed-path inflation factor, fit to the
#: off-diagonal entries of Table 1.
PATH_INFLATION = 1.75

#: Fixed access / last-mile contribution to RTT in milliseconds (WiFi AP,
#: home gateway, server ingress), fit to the diagonal of Table 1.
ACCESS_RTT_MS = 6.0

#: Per-AP WiFi throughput in the testbed exceeded 300 Mbps (Sec. 3.2).
WIFI_AP_MBPS = 300.0

#: Minimum per-user bandwidth in the scalability experiments (Sec. 4.5).
SCALABILITY_MIN_BANDWIDTH_MBPS = 100.0


# ---------------------------------------------------------------------------
# Experiment protocol (Sec. 3.2)
# ---------------------------------------------------------------------------

#: Each experiment is repeated at least this many times.
MIN_REPEATS = 5

#: Each session lasts at least this many seconds.
MIN_SESSION_SECONDS = 120


@dataclass(frozen=True)
class PaperStat:
    """A (mean, std) pair published by the paper, kept with its source."""

    mean: float
    std: float
    source: str

    def within(self, value: float, sigmas: float = 3.0) -> bool:
        """Return True when ``value`` lies within ``sigmas`` stds of the mean."""
        return abs(value - self.mean) <= sigmas * max(self.std, 1e-9)


#: Convenience table of the headline (mean, std) statistics.
PAPER_STATS = {
    "gpu_ms_baseline": PaperStat(*GPU_MS_BASELINE, source="Fig. 5 / Sec 4.4"),
    "gpu_ms_viewport": PaperStat(*GPU_MS_VIEWPORT, source="Fig. 5 / Sec 4.4"),
    "gpu_ms_foveated": PaperStat(*GPU_MS_FOVEATED, source="Fig. 5 / Sec 4.4"),
    "gpu_ms_distance": PaperStat(*GPU_MS_DISTANCE, source="Fig. 5 / Sec 4.4"),
    "gpu_ms_two_users": PaperStat(*GPU_MS_TWO_USERS, source="Fig. 6 / Sec 4.5"),
    "gpu_ms_five_users": PaperStat(*GPU_MS_FIVE_USERS, source="Fig. 6 / Sec 4.5"),
    "cpu_ms_two_users": PaperStat(*CPU_MS_TWO_USERS, source="Fig. 6 / Sec 4.5"),
    "cpu_ms_five_users": PaperStat(*CPU_MS_FIVE_USERS, source="Fig. 6 / Sec 4.5"),
    "draco_mbps": PaperStat(*DRACO_STREAMING_MBPS, source="Sec 4.3"),
    "keypoint_mbps": PaperStat(*KEYPOINT_STREAMING_MBPS, source="Sec 4.3"),
}


# ---------------------------------------------------------------------------
# Calibration identity (for sweep-result caching)
# ---------------------------------------------------------------------------

#: Bumped whenever the calibration set changes meaning (not just values);
#: part of every cached sweep cell's key.
CALIBRATION_VERSION = 1


def fingerprint() -> str:
    """sha256 over every public calibration constant, by name.

    The cached-sweep machinery (:mod:`repro.core.cache`) mixes this into
    every cell key, so changing any paper-anchored number — or the
    version above — invalidates previously cached results.  Computed on
    demand (not memoized) so monkeypatched constants are honoured.
    """
    import hashlib

    digest = hashlib.sha256()
    module = globals()
    for name in sorted(module):
        if name.startswith("_") or not name.isupper():
            continue
        digest.update(name.encode())
        digest.update(b"=")
        digest.update(repr(module[name]).encode())
        digest.update(b"\n")
    return digest.hexdigest()
