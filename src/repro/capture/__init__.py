"""Sensor capture simulation: enrollment, in-call tracking, RGB-D recording."""

from repro.capture.enrollment import PersonaEnrollment
from repro.capture.tracking import InCallTracker
from repro.capture.rgbd import RgbdCamera

__all__ = ["PersonaEnrollment", "InCallTracker", "RgbdCamera"]
