"""Spatial persona enrollment (TrueDepth pre-capture).

Vision Pro users pre-capture their persona offline with the TrueDepth
cameras (Sec. 2).  Enrollment here produces the 78,030-triangle persona
mesh plus the keypoint rest pose the semantic pipeline deforms against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import calibration
from repro.devices.models import CameraKind, Device
from repro.keypoints.reconstruct import PersonaReconstructor
from repro.mesh.generate import persona_mesh
from repro.mesh.model import TriangleMesh


class EnrollmentError(RuntimeError):
    """Raised when a device cannot enroll a spatial persona."""


@dataclass(frozen=True)
class EnrolledPersona:
    """The output of a successful enrollment."""

    user_id: str
    mesh: TriangleMesh

    @property
    def triangle_count(self) -> int:
        """Mesh resolution, as RealityKit would report it."""
        return self.mesh.triangle_count


class PersonaEnrollment:
    """Runs the offline persona pre-capture for one user."""

    def __init__(self, device: Device) -> None:
        self.device = device

    def enroll(self, user_id: str, seed: int = 0) -> EnrolledPersona:
        """Capture and build the persona mesh.

        Raises:
            EnrollmentError: When the device lacks TrueDepth cameras or
                does not support spatial personas at all.
        """
        if not self.device.supports_spatial_persona:
            raise EnrollmentError(
                f"{self.device.device_class.value} cannot host a spatial persona"
            )
        if CameraKind.TRUEDEPTH not in self.device.cameras:
            raise EnrollmentError("enrollment requires the TrueDepth cameras")
        mesh = persona_mesh(seed=seed)
        assert mesh.triangle_count == calibration.PERSONA_TRIANGLES
        return EnrolledPersona(user_id=user_id, mesh=mesh)

    def build_reconstructor(self, persona: EnrolledPersona) -> PersonaReconstructor:
        """The receiver-side reconstructor bound to this persona's mesh."""
        return PersonaReconstructor(persona.mesh)
