"""RGB-D camera recording — the ZED 2i substitute.

The paper captures a 2,000-frame RGB-D video of a subject's head and hands
with a ZED 2i, then extracts dlib/OpenPose keypoints from it (Sec. 4.3).
Here the camera and the extractors collapse into one step: the recording
*is* a keypoint stream with extractor-level noise, produced by the motion
synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import calibration
from repro.keypoints.motion import KeypointFrame, MotionSynthesizer


@dataclass
class RgbdCamera:
    """A stationary RGB-D camera recording a seated subject.

    Args:
        fps: Capture rate.  The paper streams the extracted keypoints at
            90 FPS, Vision Pro's target rate.
        seed: Subject-motion seed.
    """

    fps: float = float(calibration.TARGET_FPS)
    seed: int = 0

    def record(self, frames: int = calibration.RGBD_CAPTURE_FRAMES
               ) -> List[KeypointFrame]:
        """Record ``frames`` frames and run keypoint extraction.

        Defaults to the paper's 2,000-frame session.
        """
        if frames < 1:
            raise ValueError("must record at least one frame")
        synth = MotionSynthesizer(fps=self.fps, seed=self.seed)
        return list(synth.frames(frames))
