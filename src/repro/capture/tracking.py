"""In-call face/hand tracking on Vision Pro.

During a call the downward cameras monitor the face and the internal
cameras track the eyes (Sec. 2); the paper observes that only the mouth and
eye regions actually drive the remote persona (Sec. 4.3).  The tracker
wraps the motion synthesizer and exposes exactly the semantic keypoints
the delivery pipeline sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.devices.models import CameraKind, Device
from repro.keypoints.motion import KeypointFrame, MotionSynthesizer


class TrackingError(RuntimeError):
    """Raised when a device cannot run persona tracking."""


@dataclass
class InCallTracker:
    """Streams tracked keypoints for one Vision Pro user.

    Args:
        device: The local headset.
        fps: Tracking rate (matches the 90 FPS display pipeline).
        seed: Motion seed; distinct users use distinct seeds.
    """

    device: Device
    fps: float = 90.0
    seed: int = 0

    def __post_init__(self) -> None:
        required = {CameraKind.DOWNWARD, CameraKind.INTERNAL}
        if not required.issubset(self.device.cameras):
            raise TrackingError(
                "persona tracking needs the downward and internal cameras"
            )
        self._synth = MotionSynthesizer(fps=self.fps, seed=self.seed)

    def frames(self, count: int) -> Iterator[KeypointFrame]:
        """Yield ``count`` tracked frames."""
        return self._synth.frames(count)
