"""Command-line interface: ``python -m repro <experiment>``.

Each subcommand regenerates one table/figure and prints it in the paper's
layout; ``report`` runs everything and emits the markdown comparison.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import List, Optional

from repro import calibration


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="session seconds per run")
    parser.add_argument("--repeats", type=int,
                        default=calibration.MIN_REPEATS,
                        help="independent repeats per experiment")


def _add_sweep(parser: argparse.ArgumentParser) -> None:
    """Flags of the sweep-capable subcommands (parallelism, caching,
    and crash-safe execution)."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell, ignore the result cache")
    parser.add_argument("--cache-dir",
                        help="result-cache root (default: REPRO_CACHE_DIR "
                             "or ~/.cache/repro-sweeps)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell watchdog deadline; a hung worker is "
                             "killed and the cell retried as transient")
    parser.add_argument("--max-retries", type=int, default=1,
                        help="transient-failure retries per cell "
                             "(exponential backoff between attempts)")
    parser.add_argument("--journal",
                        help="checkpoint-journal path (campaign default: "
                             "derived from the sweep fingerprint under the "
                             "cache root)")
    parser.add_argument("--resume", action="store_true",
                        help="replay cells already checkpointed in the "
                             "journal and run only the remainder")
    parser.add_argument("--manifest",
                        help="write the run-manifest JSON to this path")
    parser.add_argument("--trace", metavar="PATH",
                        help="emit chrome://tracing-compatible span JSONL "
                             "to this path (convert with "
                             "'python -m repro.obs.trace PATH out.json')")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics-registry snapshot after "
                             "the run")


def _sweep_cache(args):
    """The ResultCache the flags ask for (None with --no-cache)."""
    if args.no_cache:
        return None
    from repro.core.cache import ResultCache

    return ResultCache(args.cache_dir)


def _explicit_journal(args):
    """The RunJournal named by --journal (required for --resume here)."""
    from repro.core.journal import RunJournal

    if args.journal:
        return RunJournal(args.journal)
    if args.resume:
        raise SystemExit(
            "error: --resume needs --journal PATH for this subcommand "
            "(only 'campaign' derives a default journal path)"
        )
    return None


@contextlib.contextmanager
def _graceful_interrupts():
    """Turn SIGINT/SIGTERM into CampaignInterrupted inside the block.

    The runner reacts by draining finished workers, killing the rest,
    and flushing the checkpoint journal — so the command can exit with a
    "resume with --resume" hint instead of a raw traceback.
    """
    from repro.core.errors import CampaignInterrupted

    def _handler(signum, frame):
        del frame
        raise CampaignInterrupted(signal.Signals(signum).name)

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _interrupted_exit(journal_path) -> int:
    """The operator-facing landing after SIGINT/SIGTERM mid-sweep."""
    print(
        f"\ninterrupted — completed cells are checkpointed in "
        f"{journal_path}\nresume with the same command plus: --resume",
        file=sys.stderr,
    )
    return 130


def _configure_obs(args) -> None:
    """Arm tracing before a sweep runs (no-op without --trace)."""
    if getattr(args, "trace", None):
        from repro.obs import trace

        trace.configure(args.trace)


def _report_obs(args) -> None:
    """Flush the trace and print the metrics snapshot the flags asked for."""
    if getattr(args, "trace", None):
        from repro.obs import trace

        trace.shutdown()
        print(f"wrote trace {args.trace}")
    if getattr(args, "metrics", False):
        from repro.obs import metrics

        print()
        print(metrics.format_snapshot(metrics.snapshot()))


def _print_manifest(manifest, args) -> None:
    """CLI accounting: summary line, anomalies, optional JSON dump."""
    print(f"manifest: {manifest.summary_line()}")
    for cell in manifest.fallbacks():
        print(f"  fallback: {cell.name} ran in-process after "
              f"{cell.attempts} worker attempt(s)")
    for cell in manifest.quarantined():
        reason = (cell.error or {}).get("message", "unknown")
        print(f"  quarantined: {cell.name} — {reason}")
    if getattr(args, "manifest", None):
        manifest.write(args.manifest)
        print(f"wrote manifest {args.manifest}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'A First Look at Immersive Telepresence on Apple "
            "Vision Pro' (IMC 2024) on the simulated testbed."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("table1", "Table 1: server RTT matrix"),
        ("protocols", "Sec. 4.1: transport / P2P / anycast findings"),
        ("fig4", "Fig. 4: two-party throughput per VCA"),
        ("content", "Sec. 4.3: content-delivery elimination analysis"),
        ("rate", "Sec. 4.3: rate-adaptation sweep"),
        ("fig5", "Fig. 5: visibility-aware optimizations"),
        ("fig6", "Fig. 6: scalability 2-5 users"),
        ("ablations", "A1-A5 ablations"),
        ("resilience", "fault gauntlet: recovery, ladder occupancy, MOS"),
        ("campaign", "automated measurement campaign over a config grid"),
        ("placement", "planet-scale placement x selection-policy study"),
        ("gauntlet", "fleet-scale fault gauntlet: correlated domains x "
                     "policies x fleet sizes"),
        ("scenarios", "seeded generative workloads: generate / describe / "
                      "run scenario batches"),
        ("validate", "re-check every calibrated anchor against the paper"),
        ("report", "full markdown reproduction report"),
        ("reproduce", "full report with sharded workers + result cache"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_common(p)
        if name in ("report", "reproduce"):
            p.add_argument("--quick", action="store_true",
                           help="short smoke-run settings")
            p.add_argument("--output", help="write markdown to this path")
        if name == "campaign":
            p.add_argument("--vcas", nargs="+",
                           default=["FaceTime", "Zoom", "Webex", "Teams"],
                           help="VCA profiles to sweep")
            p.add_argument("--users", nargs="+", type=int, default=[2, 3],
                           help="user counts to sweep")
            p.add_argument("--csv", help="export records to this path")
            p.add_argument("--distributed", action="store_true",
                           help="publish cells to a shared store and let "
                                "'repro worker' processes execute them "
                                "(requires --store)")
            p.add_argument("--store", metavar="DIR",
                           help="shared store directory for distributed "
                                "execution (implies --distributed)")
            p.add_argument("--worker-wait", type=float, default=10.0,
                           metavar="SECONDS",
                           help="grace period to wait for worker heartbeats "
                                "before the coordinator executes cells "
                                "itself")
        if name == "fig6":
            p.add_argument("--fanouts", nargs="*", type=int, default=[],
                           metavar="N",
                           help="also run the batched SFU cohort what-if "
                                "at these fan-outs (e.g. 50 200 500), "
                                "using the vectorized cohort engine")
            p.add_argument("--cohort-duration", type=float, default=12.0,
                           metavar="SECONDS",
                           help="simulated seconds per cohort fan-out")
            p.add_argument("--server-gbps", type=float, default=10.0,
                           help="SFU NIC rate assumed for the what-if "
                                "(the 0.3 Gbps testbed AP saturates at "
                                "n ~ 22)")
            p.add_argument("--cohort-only", action="store_true",
                           help="skip the paper panels and run only the "
                                "batched cohort what-if")
        if name == "placement":
            p.add_argument("--users", type=int, default=100_000,
                           help="sampled users per cell (split across the "
                                "UTC epochs)")
            p.add_argument("--regions", type=int, default=None,
                           metavar="N",
                           help="limit demand to the N most populous world "
                                "regions (default: all)")
            p.add_argument("--policies", nargs="+", default=None,
                           metavar="NAME",
                           help="selection policies to sweep, space- or "
                                "comma-separated (default: all registered)")
            p.add_argument("--k-range", nargs="+", type=int,
                           default=[2, 4, 8], metavar="K",
                           help="server counts to optimize placements for")
            p.add_argument("--epochs", nargs="+", type=float,
                           default=[2.0, 8.0, 14.0, 20.0], metavar="H",
                           help="UTC hours to sample demand at")
            p.add_argument("--session-size", type=int, default=3,
                           help="participants per telepresence session")
            p.add_argument("--site-step", type=float, default=4.0,
                           metavar="DEG",
                           help="global candidate-lattice spacing, degrees")
            p.add_argument("--csv", help="export per-cell records to this "
                                         "path")
        if name == "gauntlet":
            p.add_argument("--scenarios", nargs="+",
                           default=["region-outage", "mixed"],
                           metavar="NAME",
                           help="fault-domain scenarios to sweep, space- "
                                "or comma-separated (catalog: "
                                "region-outage ap-storm brownout "
                                "flash-crowd mixed none)")
            p.add_argument("--policies", nargs="+", default=None,
                           metavar="NAME",
                           help="selection policies to sweep, space- or "
                                "comma-separated (default: all registered)")
            p.add_argument("--fleet-sizes", nargs="+", type=int,
                           default=[50, 200], metavar="N",
                           help="sessions per cell")
            p.add_argument("--gauntlet-duration", type=float, default=120.0,
                           metavar="SECONDS",
                           help="campaign seconds per cell")
            p.add_argument("--tick", type=float, default=1.0,
                           metavar="SECONDS",
                           help="fleet timeline resolution")
            p.add_argument("--k", type=int, default=6,
                           help="servers in the optimized placement")
            p.add_argument("--regions", type=int, default=12, metavar="N",
                           help="limit demand to the N most populous world "
                                "regions")
            p.add_argument("--session-size", type=int, default=3,
                           help="participants per telepresence session")
            p.add_argument("--capacity-factor", type=float, default=1.2,
                           help="per-server admission capacity as a "
                                "multiple of the even-split load")
            p.add_argument("--site-step", type=float, default=8.0,
                           metavar="DEG",
                           help="global candidate-lattice spacing, degrees")
            p.add_argument("--csv", help="export per-cell records to this "
                                         "path")
        if name == "scenarios":
            p.add_argument("action", choices=("generate", "describe", "run"),
                           help="generate: emit the spec batch as JSONL; "
                                "describe: print the distribution library; "
                                "run: execute the batch on the campaign "
                                "runner")
            p.add_argument("--distribution", default="paper-calls",
                           metavar="NAME",
                           help="named scenario distribution (see "
                                "'scenarios describe')")
            p.add_argument("--count", type=int, default=20, metavar="N",
                           help="scenarios to generate / run")
            p.add_argument("--start", type=int, default=0, metavar="I",
                           help="first scenario index (batches are an "
                                "indexed family; generation is "
                                "index-stable)")
            p.add_argument("--out", metavar="PATH",
                           help="write generated JSONL here instead of "
                                "stdout")
            p.add_argument("--spec-file", metavar="PATH",
                           help="run specs from this JSONL file instead of "
                                "generating them")
            p.add_argument("--csv", help="export per-scenario records to "
                                         "this path")
        if name in ("campaign", "resilience", "reproduce", "placement",
                    "gauntlet", "scenarios"):
            _add_sweep(p)
    _add_worker_parser(sub)
    _add_cache_parser(sub)
    return parser


def _add_worker_parser(sub) -> None:
    p = sub.add_parser(
        "worker",
        help="join a distributed campaign as a pull-based worker",
    )
    p.add_argument("--store", required=True, metavar="DIR",
                   help="shared store directory published by "
                        "'repro campaign --distributed --store DIR'")
    p.add_argument("--id", default=None,
                   help="worker id (default: host-pid-nonce)")
    p.add_argument("--poll", type=float, default=0.25, metavar="SECONDS",
                   help="sleep between claim attempts when idle")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   metavar="SECONDS", help="seconds between liveness beacons")
    p.add_argument("--lease-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="owner-silence span after which a lease is stolen "
                        "(default: 3x the heartbeat interval)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="self-watchdog: a cell running past this stops the "
                        "worker's heartbeat so its lease gets taken over")
    p.add_argument("--max-retries", type=int, default=1,
                   help="transient-failure retries per cell")
    p.add_argument("--join-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="how long to wait for a campaign to be published")
    p.add_argument("--idle-exit", type=float, default=None,
                   metavar="SECONDS",
                   help="exit after this much continuous idleness")
    p.add_argument("--max-cells", type=int, default=None,
                   help="commit at most this many cells, then exit")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-cell progress lines")


def _add_cache_parser(sub) -> None:
    parser = sub.add_parser(
        "cache",
        help="inspect or garbage-collect the on-disk result cache",
    )
    cache_sub = parser.add_subparsers(dest="cache_command", required=True)
    stats_p = cache_sub.add_parser(
        "stats", help="entry count, bytes on disk, orphaned temp files")
    gc_p = cache_sub.add_parser(
        "gc", help="sweep orphaned temp files and evict corrupt entries")
    for p in (stats_p, gc_p):
        p.add_argument("--cache-dir",
                       help="cache root (default: REPRO_CACHE_DIR or "
                            "~/.cache/repro-sweeps)")
    gc_p.add_argument("--orphan-ttl", type=float, default=0.0,
                      metavar="SECONDS",
                      help="only sweep temp files older than this "
                           "(default 0: sweep all)")


def _cmd_table1(args) -> int:
    from repro.experiments import table1

    result = table1.run(repeats=args.repeats, seed=args.seed)
    print(result.format_table())
    print(f"max cell std: {result.max_std_ms():.1f} ms (paper bound < 7)")
    return 0


def _cmd_protocols(args) -> int:
    from repro.experiments import protocols

    for obs in protocols.run_protocol_matrix(seed=args.seed):
        print(f"{obs.vca:10s} {obs.device_mix:26s} -> "
              f"{obs.observed_protocol:5s} p2p={obs.p2p}")
    print("anycast:", protocols.run_anycast_check(seed=args.seed))
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments import fig4
    from repro.analysis.plots import box_plot

    result = fig4.run(duration_s=args.duration, repeats=args.repeats,
                      seed=args.seed)
    print(result.format_table())
    print()
    print(box_plot(result.summaries, unit=" Mbps"))
    print("ordering F < Z < F* < T < W:", result.ordering_holds())
    return 0


def _cmd_content(args) -> int:
    from repro.experiments import content_delivery

    mesh = content_delivery.run_mesh_streaming(seed=args.seed)
    print(f"Draco mesh streaming : {mesh.summary.mean:.1f} ± "
          f"{mesh.summary.std:.1f} Mbps (paper 107.4 ± 14.1)")
    keypoints = content_delivery.run_keypoint_streaming(seed=args.seed)
    print(f"keypoints + LZMA     : {keypoints.mbps.mean:.3f} ± "
          f"{keypoints.mbps.std:.3f} Mbps (paper 0.64 ± 0.02)")
    latency = content_delivery.run_display_latency(seed=args.seed)
    print(f"display-latency invariant: {latency.local_mode_invariant()}")
    return 0


def _cmd_rate(args) -> int:
    from repro.experiments import rate_adaptation

    result = rate_adaptation.run(duration_s=args.duration, seed=args.seed)
    print(result.format_table())
    print(f"cutoff {result.cutoff_kbps():.0f} Kbps; "
          f"no rate adaptation: {result.no_rate_adaptation()}")
    return 0


def _cmd_fig5(args) -> int:
    from repro.experiments import fig5
    from repro.analysis.plots import box_plot

    result = fig5.run(seed=args.seed)
    print(result.format_table())
    print()
    print(box_plot(result.gpu_ms, unit=" ms"))
    return 0


def _cmd_fig6(args) -> int:
    from repro.experiments import fig6

    if not args.cohort_only:
        rendering = fig6.run_rendering(duration_s=args.duration,
                                       repeats=args.repeats, seed=args.seed)
        print(rendering.format_table())
        network = fig6.run_network(duration_s=args.duration / 2,
                                   repeats=args.repeats, seed=args.seed)
        print(network.format_table())
    if args.fanouts or args.cohort_only:
        cohort = fig6.run_network_cohort(
            fanouts=tuple(args.fanouts) or fig6.COHORT_FANOUTS,
            duration_s=args.cohort_duration,
            seed=args.seed,
            server_gbps=args.server_gbps,
        )
        print()
        print(cohort.format_table())
        print(f"egress knee at ~{cohort.knee_fanout():.0f} participants")
    return 0


def _cmd_ablations(args) -> int:
    from repro.experiments import ablations, fig5

    a1 = ablations.run_delivery_culling(duration_s=args.duration,
                                        seed=args.seed)
    print(f"A1 delivery culling : {a1.baseline_mbps:.2f} -> "
          f"{a1.culled_mbps:.2f} Mbps ({a1.savings_fraction:.0%})")
    for a2 in ablations.run_server_policies():
        print(f"A2 {a2.scenario}: {a2.initiator_nearest_ms:.0f} -> "
              f"{a2.geo_distributed_ms:.0f} ms")
    a3 = fig5.run_occlusion(occlusion_aware=True)
    print(f"A3 occlusion-aware  : {a3.spread_triangles} -> "
          f"{a3.line_triangles} triangles")
    a4 = ablations.run_layered_codec(duration_s=args.duration / 2,
                                     seed=args.seed)
    print(a4.format_table())
    print(f"A4 layered cutoff   : {a4.cutoff_kbps():.0f} Kbps "
          f"(FaceTime: 700)")
    return 0


def _cmd_resilience(args) -> int:
    from repro.core.errors import CampaignInterrupted
    from repro.core.journal import RunManifest
    from repro.experiments import resilience

    duration = max(args.duration, 10.0)  # the gauntlet needs >= 10 s
    journal = _explicit_journal(args)
    manifest = RunManifest()
    _configure_obs(args)
    try:
        with _graceful_interrupts():
            result = resilience.run(duration_s=duration, seed=args.seed,
                                    jobs=args.jobs, cache=_sweep_cache(args),
                                    timeout=args.cell_timeout,
                                    retries=args.max_retries,
                                    journal=journal, resume=args.resume,
                                    manifest=manifest)
    except CampaignInterrupted:
        if journal is not None:
            return _interrupted_exit(journal.path)
        print("\ninterrupted — no journal; pass --journal PATH to make "
              "this sweep resumable", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    _print_manifest(manifest, args)
    _report_obs(args)
    print(result.format_table())
    print(f"all profiles recovered: {result.all_recovered()}")
    facetime = result.details["FaceTime"]
    for event in facetime.reconnect_events:
        print(f"FaceTime failover: {event.from_server} -> {event.to_server} "
              f"(downtime {event.downtime_s * 1000:.0f} ms, "
              f"{event.attempts + 1} attempt(s))")
    return 0 if result.all_recovered() else 1


def _cmd_placement(args) -> int:
    from repro.core.errors import CampaignInterrupted
    from repro.core.journal import RunManifest
    from repro.experiments import placement_study

    policies = None
    if args.policies:
        policies = [name for entry in args.policies
                    for name in entry.split(",") if name]
    journal = _explicit_journal(args)
    manifest = RunManifest()
    _configure_obs(args)
    try:
        with _graceful_interrupts():
            result = placement_study.run(
                users=args.users, policies=policies, k_range=args.k_range,
                seed=args.seed, epochs=args.epochs, regions=args.regions,
                session_size=args.session_size,
                site_step_deg=args.site_step,
                jobs=args.jobs, cache=_sweep_cache(args),
                timeout=args.cell_timeout, retries=args.max_retries,
                journal=journal, resume=args.resume, manifest=manifest,
                progress=lambda line: print(f"  {line}"),
            )
    except CampaignInterrupted:
        if journal is not None:
            return _interrupted_exit(journal.path)
        print("\ninterrupted — no journal; pass --journal PATH to make "
              "this sweep resumable", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    _print_manifest(manifest, args)
    _report_obs(args)
    print(result.format_table())
    best = result.best()
    print(f"best objective: {best['policy']} at k={best['k']} "
          f"(QoE {best['qoe_mean']:.3f}, cost {best['cost_units']:.1f})")
    try:
        penalty = result.initiator_penalty()
        print(f"initiator-nearest QoE penalty vs client-nearest: "
              f"{penalty:+.3f}")
    except KeyError:
        pass  # the sweep did not include both policies
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_gauntlet(args) -> int:
    from repro.core.errors import CampaignInterrupted
    from repro.core.journal import RunManifest
    from repro.experiments import gauntlet as gauntlet_study

    scenarios = [name for entry in args.scenarios
                 for name in entry.split(",") if name]
    policies = None
    if args.policies:
        policies = [name for entry in args.policies
                    for name in entry.split(",") if name]
    journal = _explicit_journal(args)
    manifest = RunManifest()
    _configure_obs(args)
    try:
        with _graceful_interrupts():
            result = gauntlet_study.run(
                scenarios=scenarios, policies=policies,
                fleet_sizes=args.fleet_sizes, seed=args.seed,
                duration_s=args.gauntlet_duration, tick_s=args.tick,
                k=args.k, regions=args.regions,
                session_size=args.session_size,
                capacity_factor=args.capacity_factor,
                site_step_deg=args.site_step,
                jobs=args.jobs, cache=_sweep_cache(args),
                timeout=args.cell_timeout, retries=args.max_retries,
                journal=journal, resume=args.resume, manifest=manifest,
                progress=lambda line: print(f"  {line}"),
            )
    except CampaignInterrupted:
        if journal is not None:
            return _interrupted_exit(journal.path)
        print("\ninterrupted — no journal; pass --journal PATH to make "
              "this sweep resumable", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    _print_manifest(manifest, args)
    _report_obs(args)
    print(result.format_table())
    worst = result.worst()
    print(f"worst cell: {worst['scenario']} / {worst['policy']} at "
          f"n={worst['n_sessions']} (QoE delta {worst['qoe_delta']:+.4f}, "
          f"recovered {worst['recovered_fraction']:.0%})")
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.scenario import (
        DISTRIBUTIONS,
        ScenarioGenerator,
        ScenarioSpec,
        run_batch,
        to_jsonl,
    )

    if args.action == "describe":
        print("distribution     profiles                      users"
              "   churn  storm  faults")
        for dist in DISTRIBUTIONS.values():
            users = (f"{dist.fanout_range[0]}-{dist.fanout_range[1]}"
                     if dist.fanout_range is not None else
                     f"{dist.participants_range[0]}-"
                     f"{dist.participants_range[1]}")
            print(f"{dist.name:15s}  {','.join(dist.profiles):28s}"
                  f"  {users:6s}  {dist.churn_probability:5.0%}"
                  f"  {dist.storm_probability:5.0%}"
                  f"  {','.join(sorted(set(dist.fault_scenarios)))}")
        return 0

    if args.distribution not in DISTRIBUTIONS:
        raise SystemExit(f"error: unknown distribution "
                         f"{args.distribution!r} (known: "
                         f"{', '.join(DISTRIBUTIONS)})")
    if args.spec_file:
        with open(args.spec_file) as handle:
            specs = [ScenarioSpec.from_json(line)
                     for line in handle if line.strip()]
    else:
        generator = ScenarioGenerator(args.seed,
                                      DISTRIBUTIONS[args.distribution])
        specs = generator.batch(args.count, start=args.start)

    if args.action == "generate":
        jsonl = to_jsonl(specs)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(jsonl)
            print(f"wrote {len(specs)} scenarios to {args.out}")
        else:
            sys.stdout.write(jsonl)
        return 0

    from repro.core.errors import CampaignInterrupted
    from repro.core.journal import RunManifest

    journal = _explicit_journal(args)
    manifest = RunManifest()
    _configure_obs(args)
    try:
        with _graceful_interrupts():
            result = run_batch(
                specs, jobs=args.jobs, cache=_sweep_cache(args),
                retries=args.max_retries, timeout=args.cell_timeout,
                journal=journal, resume=args.resume, manifest=manifest,
                progress=lambda line: print(f"  {line}"),
            )
    except CampaignInterrupted:
        if journal is not None:
            return _interrupted_exit(journal.path)
        print("\ninterrupted — no journal; pass --journal PATH to make "
              "this sweep resumable", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    _print_manifest(manifest, args)
    _report_obs(args)
    print(result.format_table())
    worst = result.worst()
    print(f"worst scenario: {worst['name']} (qoe {worst['qoe']:.3f}, "
          f"worst dimension {worst['worst_dimension']})")
    means = result.dimension_means()
    print("dimension means: " + "  ".join(
        f"{name}={value:.3f}" for name, value in means.items()))
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_validate(args) -> int:
    from repro.analysis.comparison import format_report, validate_all

    del args
    checks = validate_all()
    print(format_report(checks))
    return 0 if all(c.within_band for c in checks) else 1


def _cmd_campaign(args) -> int:
    from repro.core.campaign import Campaign
    from repro.core.errors import CampaignInterrupted
    from repro.core.journal import RunJournal

    if args.distributed and not args.store:
        raise SystemExit("error: --distributed needs --store DIR "
                         "(a directory every worker can reach)")
    store = args.store
    campaign = Campaign.grid(args.vcas, args.users,
                             duration_s=args.duration, repeats=args.repeats,
                             base_seed=args.seed)
    journal_path = (args.journal if args.journal
                    else campaign.default_journal_path(args.cache_dir))
    journal = RunJournal(journal_path)
    _configure_obs(args)
    try:
        with _graceful_interrupts():
            campaign.run(progress=lambda line: print(f"  {line}"),
                         jobs=args.jobs, cache=_sweep_cache(args),
                         timeout=args.cell_timeout,
                         max_retries=args.max_retries,
                         journal=journal, resume=args.resume,
                         store=store, worker_wait_s=args.worker_wait)
    except CampaignInterrupted:
        if store:
            print(f"\ninterrupted — committed cells live in {store}; "
                  f"re-run the same command (same --store) to resume, "
                  f"workers can keep running meanwhile", file=sys.stderr)
            return 130
        return _interrupted_exit(journal_path)
    finally:
        journal.close()
    for vca, summary in campaign.summary_by("vca").items():
        print(f"{vca:10s} sessions={summary['sessions']:3.0f}  "
              f"up={summary['uplink_mbps_mean']:6.2f} Mbps  "
              f"down={summary['downlink_mbps_mean']:6.2f} Mbps")
    stats = campaign.last_run_stats
    print(f"{stats.tasks} cells: {stats.executed} executed, "
          f"{stats.cache_hits} cached ({stats.hit_rate():.0%} hit rate), "
          f"{stats.resumed} resumed, {stats.retries} retries, "
          f"{stats.timeouts} timeouts "
          f"in {stats.elapsed_s:.1f} s with jobs={args.jobs}")
    dist = campaign.last_dist
    if dist is not None:
        workers = (", ".join(dist["workers"])
                   or "none (coordinator ran everything)")
        print(f"distributed: workers={workers}; "
              f"{dist['takeovers']} takeover(s), "
              f"{dist['fenced_zombies']} fenced zombie(s), "
              f"{dist['resumed']} resumed, "
              f"{dist['inline_cells']} coordinator-inline")
    _print_manifest(campaign.last_manifest, args)
    _report_obs(args)
    if args.csv:
        campaign.to_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0 if not campaign.skipped else 3


def _cmd_report(args) -> int:
    from repro.report import ReportSettings, generate_report

    import dataclasses

    sweep_capable = hasattr(args, "jobs")
    jobs = getattr(args, "jobs", 1)
    cache = _sweep_cache(args) if sweep_capable else None
    sweep = {}
    journal = None
    if sweep_capable:
        from repro.core.journal import RunManifest

        journal = _explicit_journal(args)
        sweep = dict(
            cell_timeout=args.cell_timeout, max_retries=args.max_retries,
            journal=journal, resume=args.resume, manifest=RunManifest(),
            metrics=args.metrics,
        )
        _configure_obs(args)
    settings = (
        dataclasses.replace(ReportSettings.quick(), jobs=jobs, cache=cache,
                            **sweep)
        if args.quick
        else ReportSettings(duration_s=args.duration, repeats=args.repeats,
                            seed=args.seed, jobs=jobs, cache=cache, **sweep)
    )
    try:
        if sweep_capable:
            from repro.core.errors import CampaignInterrupted

            try:
                with _graceful_interrupts():
                    markdown = generate_report(settings)
            except CampaignInterrupted:
                if journal is not None:
                    return _interrupted_exit(journal.path)
                print("\ninterrupted — no journal; pass --journal PATH to "
                      "make the reproduction resumable", file=sys.stderr)
                return 130
        else:
            markdown = generate_report(settings)
    finally:
        if journal is not None:
            journal.close()
    if sweep_capable and getattr(args, "manifest", None):
        settings.manifest.write(args.manifest)
        print(f"wrote manifest {args.manifest}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)
    if sweep_capable and getattr(args, "trace", None):
        from repro.obs import trace

        trace.shutdown()
        print(f"wrote trace {args.trace}", file=sys.stderr)
    return 0


def _cmd_worker(args) -> int:
    from repro.core.dist import QueueError, WorkerAgent
    from repro.core.errors import CampaignInterrupted

    progress = None if args.quiet else (lambda line: print(f"  {line}"))
    agent = WorkerAgent(
        args.store, args.id,
        poll_s=args.poll,
        heartbeat_interval_s=args.heartbeat_interval,
        lease_timeout_s=args.lease_timeout,
        cell_timeout_s=args.cell_timeout,
        retries=args.max_retries,
        join_timeout_s=args.join_timeout,
        idle_exit_s=args.idle_exit,
        max_cells=args.max_cells,
        progress=progress,
    )
    print(f"worker {agent.worker} joining store {args.store}")
    try:
        with _graceful_interrupts():
            stats = agent.run()
    except CampaignInterrupted:
        print("\nworker interrupted before joining a campaign",
              file=sys.stderr)
        return 130
    except QueueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"worker {agent.worker}: {stats.summary_line()}")
    if stats.interrupted:
        print("interrupted — current lease released; the campaign resumes "
              "from the store's commit markers (just restart a worker)",
              file=sys.stderr)
        return 130
    return 0


def _cmd_cache(args) -> int:
    from repro.core.cache import ResultCache

    cache = ResultCache(args.cache_dir, sweep_orphans=False)
    if args.cache_command == "stats":
        disk = cache.disk_stats()
        print(f"cache root : {cache.root}")
        print(f"entries    : {disk['entries']}")
        print(f"bytes      : {disk['bytes']} "
              f"({disk['bytes'] / 1e6:.2f} MB)")
        print(f"orphans    : {disk['orphans']} stale temp file(s)")
        print("(per-run hit rates are printed by the sweep commands "
              "themselves)")
        return 0
    report = cache.gc(orphan_ttl_s=args.orphan_ttl)
    print(f"cache root : {cache.root}")
    print(f"checked    : {report['checked']} entries")
    print(f"evicted    : {report['evicted']} corrupt/foreign entries")
    print(f"orphans    : {report['orphans']} temp file(s) swept")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "protocols": _cmd_protocols,
    "fig4": _cmd_fig4,
    "content": _cmd_content,
    "rate": _cmd_rate,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "ablations": _cmd_ablations,
    "resilience": _cmd_resilience,
    "campaign": _cmd_campaign,
    "placement": _cmd_placement,
    "gauntlet": _cmd_gauntlet,
    "scenarios": _cmd_scenarios,
    "validate": _cmd_validate,
    "report": _cmd_report,
    "reproduce": _cmd_report,
    "worker": _cmd_worker,
    "cache": _cmd_cache,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
