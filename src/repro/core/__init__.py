"""Core public API: the testbed and the study runner.

This is the measurement methodology of the paper as a library: build the
Fig. 3 testbed, run repeated sessions, and collect the observables.
"""

from repro.core.testbed import Testbed, default_two_user_testbed
from repro.core.study import Study, Repeated, repeat_experiment
from repro.core.campaign import Campaign, CampaignCell, CampaignRecord

__all__ = [
    "Testbed",
    "default_two_user_testbed",
    "Study",
    "Repeated",
    "repeat_experiment",
    "Campaign",
    "CampaignCell",
    "CampaignRecord",
]
