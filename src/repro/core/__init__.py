"""Core public API: the testbed, the study runner, and the sweep engine.

This is the measurement methodology of the paper as a library: build the
Fig. 3 testbed, run repeated sessions, and collect the observables —
serially, across worker processes, or replayed from the on-disk result
cache.
"""

from repro.core.testbed import Testbed, default_two_user_testbed
from repro.core.study import Study, Repeated, repeat_experiment
from repro.core.campaign import Campaign, CampaignCell, CampaignRecord
from repro.core.cache import CacheStats, ResultCache, task_key
from repro.core.errors import (
    CampaignInterrupted,
    Category,
    CellError,
    CellFailure,
    CellTimeoutError,
    DeterministicError,
    PoisonCell,
    RetryPolicy,
    TransientError,
    WorkerCrashError,
    classify,
)
from repro.core.journal import (
    CellOutcome,
    RunJournal,
    RunManifest,
    run_fingerprint,
)
from repro.core.parallel import CellTask, RunStats, TaskRunner, run_tasks
from repro.core.dist import (
    Coordinator,
    QueueError,
    StoreLayout,
    WorkerAgent,
    WorkQueue,
)

__all__ = [
    "Testbed",
    "default_two_user_testbed",
    "Study",
    "Repeated",
    "repeat_experiment",
    "Campaign",
    "CampaignCell",
    "CampaignRecord",
    "CacheStats",
    "ResultCache",
    "task_key",
    "CampaignInterrupted",
    "Category",
    "CellError",
    "CellFailure",
    "CellTimeoutError",
    "DeterministicError",
    "PoisonCell",
    "RetryPolicy",
    "TransientError",
    "WorkerCrashError",
    "classify",
    "CellOutcome",
    "RunJournal",
    "RunManifest",
    "run_fingerprint",
    "CellTask",
    "RunStats",
    "TaskRunner",
    "run_tasks",
    "Coordinator",
    "QueueError",
    "StoreLayout",
    "WorkerAgent",
    "WorkQueue",
]
