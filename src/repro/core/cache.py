"""Content-addressed on-disk result cache for sweep cells.

Re-running a campaign or experiment sweep should only recompute the cells
whose inputs actually changed.  Every cached entry is keyed by the sha256
of a canonical JSON encoding of everything that determines the result:

- the fully-qualified name of the cell function,
- its keyword arguments (seeds included),
- the calibration fingerprint (:func:`repro.calibration.fingerprint` —
  any paper-anchored constant change invalidates every entry),
- the code fingerprint (:func:`code_fingerprint` — a sha256 over every
  ``repro`` source file, so editing any model recomputes everything).

Entries live one-per-file under a root directory (``REPRO_CACHE_DIR``
environment variable, else ``~/.cache/repro-sweeps``) and each file
carries an embedded checksum of its payload, so a corrupted or truncated
entry is detected and silently recomputed instead of crashing the sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

import repro
from repro import calibration

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry wholesale.
CACHE_FORMAT_VERSION = 1

_CODE_FINGERPRINT: Optional[str] = None


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-fd support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def default_cache_root() -> Path:
    """The on-disk cache location (env override, else ``~/.cache``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sweeps"


def code_fingerprint() -> str:
    """sha256 over every ``repro`` source file (name + contents).

    Computed once per process: the package cannot change under a running
    sweep, but any edit between runs produces a different fingerprint and
    therefore a cold cache.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def set_code_fingerprint(fingerprint: str) -> None:
    """Adopt a fingerprint computed elsewhere (parent -> worker).

    The fingerprint is memoized per process, so without this every
    spawned worker would re-hash all ~180 source files on its first
    cell.  The sweep runner computes it once in the parent and ships it
    with each task payload; workers adopt it here.

    Raises:
        ValueError: If ``fingerprint`` is not a sha256 hex digest.
    """
    global _CODE_FINGERPRINT
    if (not isinstance(fingerprint, str) or len(fingerprint) != 64
            or any(c not in "0123456789abcdef" for c in fingerprint)):
        raise ValueError(
            f"code fingerprint must be a sha256 hex digest, "
            f"got {fingerprint!r}"
        )
    _CODE_FINGERPRINT = fingerprint


def canonical(value: Any) -> Any:
    """A JSON-stable form of ``value`` for hashing.

    Callables and classes become their qualified names, dataclasses an
    explicitly-tagged field mapping, mappings get sorted keys, and tuples
    collapse to lists.  Raises ``TypeError`` for anything else that JSON
    cannot represent — better a loud failure than a silently unstable key.

    Numpy scalars coerce to their native Python twins *before* the
    primitive check: sweep kwargs routinely arrive as ``np.int64`` /
    ``np.float32`` (rejected outright without this) and ``np.float64``
    (which subclasses ``float`` and would otherwise sneak into the JSON
    encoder as a numpy object), so a numpy-typed kwarg and its native
    twin must produce the same key.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): canonical(v) for k, v in sorted(value.items(),
                                                        key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__dataclass__": _qualname(type(value)), **fields}
    if isinstance(value, type) or callable(value):
        return {"__callable__": _qualname(value)}
    raise TypeError(f"cannot canonicalize {type(value).__name__} for cache key")


def _qualname(obj: Any) -> str:
    return f"{obj.__module__}.{getattr(obj, '__qualname__', repr(obj))}"


def _digest(obj: Any) -> str:
    body = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


def task_key(fn: Union[str, Callable[..., Any]],
             kwargs: Optional[Mapping[str, Any]] = None,
             extra: Any = None) -> str:
    """The content-addressed key of one sweep cell."""
    fn_ref = fn if isinstance(fn, str) else _qualname(fn)
    return _digest({
        "version": CACHE_FORMAT_VERSION,
        "fn": fn_ref,
        "kwargs": canonical(dict(kwargs or {})),
        "extra": canonical(extra),
        "calibration": calibration.fingerprint(),
        "code": code_fingerprint(),
    })


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of JSON-serializable cell results."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Where one entry lives (two-level fan-out like git objects)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """The cached payload, or ``None`` on miss/corruption.

        A corrupt entry (unreadable JSON, wrong embedded key, or payload
        checksum mismatch) is deleted and reported as a miss.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            if path.exists():
                self.stats.corrupt += 1
                path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or entry.get("checksum") != _digest(entry.get("payload"))
        ):
            self.stats.corrupt += 1
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Any) -> None:
        """Store a payload atomically and durably.

        The entry is written to a temp file *in the same directory*,
        fsynced, then renamed over the target with ``os.replace`` — and
        the directory is fsynced so the rename itself survives a power
        cut.  A crash at any point leaves either the old entry, no
        entry, or an orphan temp file (which ``get`` never reads and
        ``clear`` sweeps up) — never a half-written entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "checksum": _digest(payload), "payload": payload}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(entry, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        finally:
            tmp.unlink(missing_ok=True)
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry (and orphan temp files); counts entries."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
            for path in self.root.rglob("*.tmp.*"):
                path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
