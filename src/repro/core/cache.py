"""Content-addressed on-disk result cache for sweep cells.

Re-running a campaign or experiment sweep should only recompute the cells
whose inputs actually changed.  Every cached entry is keyed by the sha256
of a canonical JSON encoding of everything that determines the result:

- the fully-qualified name of the cell function,
- its keyword arguments (seeds included),
- the calibration fingerprint (:func:`repro.calibration.fingerprint` —
  any paper-anchored constant change invalidates every entry),
- the code fingerprint (:func:`code_fingerprint` — a sha256 over every
  ``repro`` source file, so editing any model recomputes everything).

Entries live one-per-file under a root directory (``REPRO_CACHE_DIR``
environment variable, else ``~/.cache/repro-sweeps``) and each file
carries an embedded checksum of its payload, so a corrupted or truncated
entry is detected and silently recomputed instead of crashing the sweep.

The cache doubles as the **shared artifact store** of distributed
campaigns (:mod:`repro.core.dist`): many worker processes — possibly on
many hosts — write concurrently.  Writes stay safe because every entry
is written to a writer-unique temp file and renamed into place
atomically, duplicate writers of the same key produce identical bytes
(cells are deterministic), and corrupt entries are evicted on read.  A
writer killed between temp write and rename leaks an orphan ``*.tmp.*``
file; opening a cache sweeps orphans older than
:data:`ORPHAN_TTL_S` so crashed workers cannot fill the store, and
:meth:`ResultCache.gc` does a full validate-and-sweep on demand.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

import numpy as np

import repro
from repro import calibration

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry wholesale.
CACHE_FORMAT_VERSION = 1

#: Temp files older than this are crash leftovers, not live writes:
#: a healthy ``put`` holds its temp file for milliseconds.
ORPHAN_TTL_S = 300.0

_CODE_FINGERPRINT: Optional[str] = None

#: Per-process uniquifier for temp names: two same-pid writers on
#: different hosts (or two threads in one process) must never share one.
_TMP_COUNTER = itertools.count()


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-fd support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def default_cache_root() -> Path:
    """The on-disk cache location (env override, else ``~/.cache``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sweeps"


def code_fingerprint() -> str:
    """sha256 over every ``repro`` source file (name + contents).

    Computed once per process: the package cannot change under a running
    sweep, but any edit between runs produces a different fingerprint and
    therefore a cold cache.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def set_code_fingerprint(fingerprint: str) -> None:
    """Adopt a fingerprint computed elsewhere (parent -> worker).

    The fingerprint is memoized per process, so without this every
    spawned worker would re-hash all ~180 source files on its first
    cell.  The sweep runner computes it once in the parent and ships it
    with each task payload; workers adopt it here.

    Raises:
        ValueError: If ``fingerprint`` is not a sha256 hex digest.
    """
    global _CODE_FINGERPRINT
    if (not isinstance(fingerprint, str) or len(fingerprint) != 64
            or any(c not in "0123456789abcdef" for c in fingerprint)):
        raise ValueError(
            f"code fingerprint must be a sha256 hex digest, "
            f"got {fingerprint!r}"
        )
    _CODE_FINGERPRINT = fingerprint


def canonical(value: Any) -> Any:
    """A JSON-stable form of ``value`` for hashing.

    Callables and classes become their qualified names, dataclasses an
    explicitly-tagged field mapping, mappings get sorted keys, and tuples
    collapse to lists.  Raises ``TypeError`` for anything else that JSON
    cannot represent — better a loud failure than a silently unstable key.

    Numpy scalars coerce to their native Python twins *before* the
    primitive check: sweep kwargs routinely arrive as ``np.int64`` /
    ``np.float32`` (rejected outright without this) and ``np.float64``
    (which subclasses ``float`` and would otherwise sneak into the JSON
    encoder as a numpy object), so a numpy-typed kwarg and its native
    twin must produce the same key.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): canonical(v) for k, v in sorted(value.items(),
                                                        key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__dataclass__": _qualname(type(value)), **fields}
    if isinstance(value, type) or callable(value):
        return {"__callable__": _qualname(value)}
    raise TypeError(f"cannot canonicalize {type(value).__name__} for cache key")


def _qualname(obj: Any) -> str:
    return f"{obj.__module__}.{getattr(obj, '__qualname__', repr(obj))}"


def _digest(obj: Any) -> str:
    body = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


def task_key(fn: Union[str, Callable[..., Any]],
             kwargs: Optional[Mapping[str, Any]] = None,
             extra: Any = None) -> str:
    """The content-addressed key of one sweep cell."""
    fn_ref = fn if isinstance(fn, str) else _qualname(fn)
    return _digest({
        "version": CACHE_FORMAT_VERSION,
        "fn": fn_ref,
        "kwargs": canonical(dict(kwargs or {})),
        "extra": canonical(extra),
        "calibration": calibration.fingerprint(),
        "code": code_fingerprint(),
    })


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    orphans_swept: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of JSON-serializable cell results.

    Args:
        root: Store directory (default: :func:`default_cache_root`).
        sweep_orphans: Sweep stale ``*.tmp.*`` files on open.  A worker
            killed between temp-file write and rename leaks its temp
            file forever otherwise — ``clear()`` was the only janitor.
        orphan_ttl_s: Age before a temp file counts as an orphan.  The
            default leaves live concurrent writers (who hold a temp file
            for milliseconds) a wide margin.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None, *,
                 sweep_orphans: bool = True,
                 orphan_ttl_s: float = ORPHAN_TTL_S) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()
        self.orphan_ttl_s = orphan_ttl_s
        if sweep_orphans:
            self.stats.orphans_swept += self.sweep_orphans()

    def path_for(self, key: str) -> Path:
        """Where one entry lives (two-level fan-out like git objects)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """The cached payload, or ``None`` on miss/corruption.

        A corrupt entry (unreadable JSON, wrong embedded key, or payload
        checksum mismatch) is deleted and reported as a miss.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            if path.exists():
                self.stats.corrupt += 1
                path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or entry.get("checksum") != _digest(entry.get("payload"))
        ):
            self.stats.corrupt += 1
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Any) -> None:
        """Store a payload atomically and durably.

        The entry is written to a temp file *in the same directory*,
        fsynced, then renamed over the target with ``os.replace`` — and
        the directory is fsynced so the rename itself survives a power
        cut.  A crash at any point leaves either the old entry, no
        entry, or an orphan temp file (which ``get`` never reads and
        ``clear`` sweeps up) — never a half-written entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "checksum": _digest(payload), "payload": payload}
        # The pid alone is not unique under the shared-store contract:
        # workers on two hosts can share a pid, and colliding temp names
        # would interleave writes or race the rename.
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}-{next(_TMP_COUNTER)}-"
            f"{os.urandom(4).hex()}"
        )
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(entry, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        finally:
            tmp.unlink(missing_ok=True)
        self.stats.stores += 1

    def sweep_orphans(self, ttl_s: Optional[float] = None) -> int:
        """Delete stale ``*.tmp.*`` leftovers of crashed writers.

        Only temp files older than ``ttl_s`` (default: the instance
        TTL) go — a concurrent writer's live temp file is seconds old at
        most and survives.  Returns the number removed.
        """
        if not self.root.exists():
            return 0
        ttl = self.orphan_ttl_s if ttl_s is None else ttl_s
        cutoff = time.time() - ttl
        removed = 0
        for path in self.root.rglob("*.tmp.*"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                # Raced another sweeper or the writer's own cleanup.
                continue
        return removed

    def gc(self, orphan_ttl_s: float = 0.0) -> Dict[str, int]:
        """Validate every entry, evict corruption, sweep all orphans.

        Unlike ``get``-time eviction (which only checks keys a sweep
        asks for), this walks the whole store — the maintenance pass
        behind ``repro cache gc`` for a long-lived shared artifact
        store.  Returns counts: entries checked/evicted/orphans removed.
        """
        checked = evicted = 0
        if self.root.exists():
            for path in sorted(self.root.rglob("*.json")):
                checked += 1
                try:
                    entry = json.loads(path.read_text())
                    ok = (isinstance(entry, dict)
                          and entry.get("key") == path.stem
                          and entry.get("checksum")
                          == _digest(entry.get("payload")))
                except (OSError, ValueError):
                    ok = False
                if not ok:
                    path.unlink(missing_ok=True)
                    evicted += 1
        orphans = self.sweep_orphans(ttl_s=orphan_ttl_s)
        self.stats.corrupt += evicted
        self.stats.orphans_swept += orphans
        return {"checked": checked, "evicted": evicted, "orphans": orphans}

    def disk_stats(self) -> Dict[str, int]:
        """What is on disk right now: entries, bytes, orphan temp files."""
        entries = size = orphans = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            orphans = sum(1 for _ in self.root.rglob("*.tmp.*"))
        return {"entries": entries, "bytes": size, "orphans": orphans}

    def clear(self) -> int:
        """Delete every entry (and orphan temp files); counts entries."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
            for path in self.root.rglob("*.tmp.*"):
                path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
