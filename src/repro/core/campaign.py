"""Automated measurement campaigns.

Sec. 5 of the paper: "We are currently building open-source tools for
Vision Pro to facilitate automated and large-scale crowd-sourced
measurement experiments in the wild."  On the simulated testbed that tool
already exists: a :class:`Campaign` sweeps a configuration grid (VCA x
device mix x user count x repeats), runs every cell unattended, and
collects one flat record per session — exportable to CSV for whatever
analysis stack the user prefers.

Cells are independent and seeded, so a campaign shards across worker
processes (``run(jobs=N)``) and replays from the content-addressed result
cache (:mod:`repro.core.cache`) without changing a byte of the export:
serial, parallel and cached runs are equivalent by construction, and the
equivalence test suite holds them to it.

With ``run(store=...)`` the same grid goes **distributed**: the campaign
is published into a shared store (:mod:`repro.core.dist`) and executed
by however many ``repro worker`` processes — on this host or others —
are pointed at it, with lease-based work stealing, heartbeat failure
detection and exactly-once commits.  The records are still identical to
a serial run; the chaos suite compares the CSVs byte for byte.
"""

from __future__ import annotations

import csv
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro import calibration
from repro.analysis.protocol import classify_capture
from repro.analysis.throughput import throughput_windows_mbps
from repro.core.cache import ResultCache, default_cache_root
from repro.core.dist.coordinator import Coordinator
from repro.core.errors import CellFailure, RetryPolicy
from repro.core.journal import RunJournal, RunManifest, run_fingerprint
from repro.core.parallel import CellTask, RunStats, TaskRunner
from repro.core.testbed import multi_user_testbed
from repro.devices.models import Device, VisionPro
from repro.netsim.capture import Direction
from repro.obs import trace as obs_trace
from repro.vca.profiles import PROFILES, PersonaKind

import numpy as np


@dataclass(frozen=True)
class CampaignCell:
    """One configuration to measure."""

    vca: str
    n_users: int
    device_factory: Callable[[], Device] = VisionPro
    duration_s: float = 15.0
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.vca not in PROFILES:
            raise ValueError(f"unknown VCA {self.vca!r}")
        if self.n_users < 2:
            raise ValueError("need at least two users")
        if self.duration_s <= 0 or self.repeats < 1:
            raise ValueError("duration and repeats must be positive")
        if not callable(self.device_factory):
            raise ValueError("device_factory must be callable")
        probe = self.device_factory()
        if not isinstance(probe, Device):
            raise ValueError(
                f"device_factory must return a Device, got "
                f"{type(probe).__name__}"
            )


@dataclass(frozen=True)
class CampaignRecord:
    """One measured session, flattened for tabular export."""

    vca: str
    n_users: int
    device: str
    repeat: int
    seed: int
    persona_kind: str
    protocol: str
    p2p: bool
    server_label: str
    uplink_mbps_mean: float
    downlink_mbps_mean: float
    persona_availability: float

    FIELDS = (
        "vca", "n_users", "device", "repeat", "seed", "persona_kind",
        "protocol", "p2p", "server_label", "uplink_mbps_mean",
        "downlink_mbps_mean", "persona_availability",
    )

    def as_row(self) -> List[str]:
        """CSV row in :attr:`FIELDS` order."""
        return [str(getattr(self, name)) for name in self.FIELDS]


def run_cell(cell: CampaignCell, repeat: int, seed: int) -> CampaignRecord:
    """Measure one cell repeat — the unit of campaign work.

    A pure function of its arguments (module-level so it crosses process
    boundaries), which is what lets :class:`Campaign` shard repeats over
    a process pool and cache their records.
    """
    testbed = multi_user_testbed(
        cell.n_users, device_factory=cell.device_factory
    )
    session = testbed.session(PROFILES[cell.vca], seed=seed)
    result = session.run(cell.duration_s)
    capture = result.capture_of("U1")
    up = throughput_windows_mbps(capture, Direction.UPLINK)
    down = throughput_windows_mbps(capture, Direction.DOWNLINK)
    availability = 1.0
    if result.persona_kind is PersonaKind.SPATIAL:
        receiver = result.receiver_of("U2")
        stats = receiver.stats.get(result.addresses["U1"])
        availability = stats.availability() if stats else 0.0
    protocol_report = classify_capture(capture)
    device = cell.device_factory().device_class.value
    return CampaignRecord(
        vca=cell.vca,
        n_users=cell.n_users,
        device=device,
        repeat=repeat,
        seed=seed,
        persona_kind=result.persona_kind.value,
        protocol=protocol_report.dominant,
        p2p=result.p2p,
        server_label=result.server.label if result.server else "-",
        uplink_mbps_mean=float(np.mean(up)) if up else 0.0,
        downlink_mbps_mean=float(np.mean(down)) if down else 0.0,
        persona_availability=availability,
    )


def pack_record(record: CampaignRecord) -> Dict[str, object]:
    """Record -> cacheable JSON payload."""
    return dataclasses.asdict(record)


def unpack_record(payload: Dict[str, object]) -> CampaignRecord:
    """Cache payload -> record (exact round-trip of :func:`pack_record`)."""
    return CampaignRecord(**payload)


class Campaign:
    """Runs a grid of session configurations unattended."""

    def __init__(self, cells: Sequence[CampaignCell], base_seed: int = 0) -> None:
        if not cells:
            raise ValueError("campaign needs at least one cell")
        self.cells = list(cells)
        self.base_seed = base_seed
        self.records: List[CampaignRecord] = []
        self.skipped: List[CellFailure] = []
        self.last_run_stats: Optional[RunStats] = None
        self.last_manifest: Optional[RunManifest] = None
        #: Distributed-run summary (workers, takeovers, fenced zombies)
        #: from the last ``run(store=...)``; None after local runs.
        self.last_dist: Optional[Dict[str, object]] = None

    @classmethod
    def grid(
        cls,
        vcas: Iterable[str],
        user_counts: Iterable[int],
        duration_s: float = 15.0,
        repeats: int = 3,
        base_seed: int = 0,
    ) -> "Campaign":
        """A full-factorial campaign over VCAs and user counts.

        Spatial-persona-capped configurations (FaceTime above five users)
        are skipped automatically.
        """
        cells = []
        for vca in vcas:
            for n in user_counts:
                profile = PROFILES[vca]
                if (profile.supports_spatial
                        and n > calibration.MAX_SPATIAL_PERSONAS):
                    continue
                cells.append(CampaignCell(vca, n, duration_s=duration_s,
                                          repeats=repeats))
        return cls(cells, base_seed=base_seed)

    def tasks(self) -> List[CellTask]:
        """One :class:`CellTask` per (cell, repeat), seeds preassigned.

        Seeds are allocated by enumeration order — identical to what the
        historical serial loop produced — so the execution strategy can
        never change a record.
        """
        tasks: List[CellTask] = []
        seed = self.base_seed
        for cell in self.cells:
            for repeat in range(cell.repeats):
                tasks.append(CellTask(
                    name=f"{cell.vca} n={cell.n_users} repeat={repeat}",
                    fn=run_cell,
                    kwargs={"cell": cell, "repeat": repeat, "seed": seed},
                    pack=pack_record,
                    unpack=unpack_record,
                ))
                seed += 1
        return tasks

    def fingerprint(self) -> str:
        """A stable identity for this exact sweep (sorted cell keys).

        Moves whenever anything that could change a record moves — grid,
        seeds, calibration, or code — so a resume can never replay a
        stale journal into a different campaign.
        """
        return run_fingerprint(task.cache_key() for task in self.tasks())

    def default_journal_path(self, root: Optional[Union[str, Path]] = None
                             ) -> Path:
        """Where this campaign's checkpoint journal lives by default."""
        base = Path(root) if root is not None else default_cache_root()
        return base / "journals" / f"{self.fingerprint()}.jsonl"

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        *,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        journal: Optional[RunJournal] = None,
        resume: bool = False,
        manifest: Optional[RunManifest] = None,
        failfast: bool = True,
        store: Optional[Union[str, Path]] = None,
        worker_wait_s: float = 10.0,
    ) -> List[CampaignRecord]:
        """Execute every cell; returns (and stores) the records.

        ``jobs > 1`` shards the (cell, repeat) grid over worker
        processes; ``cache`` replays unchanged cells from disk; a
        ``journal`` checkpoints every finished cell so ``resume=True``
        survives SIGINT/SIGKILL/crash; ``timeout`` arms the per-cell
        watchdog and ``max_retries`` bounds transient retries.  Whatever
        the path — serial, sharded, cached, or resumed — the records,
        and any CSV exported from them, are identical to a serial cold
        run.  Quarantined cells are excluded from :attr:`records` and
        listed in :attr:`skipped` and the manifest.

        ``store`` switches to **distributed** execution: cells are
        published into the shared store and executed by any ``repro
        worker`` processes pointed at it (the coordinator falls back to
        the local pool when none show up within ``worker_wait_s``).
        The store supplies its own shared cache and resume semantics
        (commit markers), so ``cache`` and ``resume`` are ignored on
        this path; ``journal`` still receives the merged distributed
        checkpoint.
        """
        if store is not None:
            return self._run_distributed(
                store, progress=progress, jobs=jobs, timeout=timeout,
                max_retries=max_retries, journal=journal,
                manifest=manifest, failfast=failfast,
                worker_wait_s=worker_wait_s,
            )
        policy = (RetryPolicy(max_retries=max_retries)
                  if max_retries is not None else None)
        runner = TaskRunner(jobs=jobs, cache=cache, progress=progress,
                            timeout=timeout, policy=policy, journal=journal,
                            resume=resume, manifest=manifest,
                            failfast=failfast)
        with obs_trace.span("campaign.run", cat="campaign",
                            cells=len(self.cells), jobs=jobs):
            results = runner.run(self.tasks())
        self.records = [r for r in results if not isinstance(r, CellFailure)]
        self.skipped = [r for r in results if isinstance(r, CellFailure)]
        self.last_run_stats = runner.stats
        self.last_manifest = runner.manifest
        self.last_dist = None
        return self.records

    def _run_distributed(
        self,
        store: Union[str, Path],
        *,
        progress: Optional[Callable[[str], None]],
        jobs: int,
        timeout: Optional[float],
        max_retries: Optional[int],
        journal: Optional[RunJournal],
        manifest: Optional[RunManifest],
        failfast: bool,
        worker_wait_s: float,
    ) -> List[CampaignRecord]:
        coordinator = Coordinator(
            store, jobs=jobs, worker_wait_s=worker_wait_s, timeout=timeout,
            max_retries=max_retries if max_retries is not None else 1,
            progress=progress,
        )
        with obs_trace.span("campaign.run", cat="campaign",
                            cells=len(self.cells), jobs=jobs,
                            distributed=True):
            results = coordinator.run(self.tasks(), journal=journal,
                                      manifest=manifest, failfast=failfast)
        self.records = [r for r in results if not isinstance(r, CellFailure)]
        self.skipped = [r for r in results if isinstance(r, CellFailure)]
        self.last_run_stats = coordinator.stats
        self.last_manifest = coordinator.manifest
        self.last_dist = coordinator.dist
        return self.records

    def _run_one(self, cell: CampaignCell, repeat: int,
                 seed: int) -> CampaignRecord:
        return run_cell(cell, repeat, seed)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Export the collected records.

        Raises:
            RuntimeError: If :meth:`run` has not produced records yet.
        """
        if not self.records:
            raise RuntimeError("run() the campaign before exporting")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CampaignRecord.FIELDS)
            for record in self.records:
                writer.writerow(record.as_row())

    def summary_by(self, key: str) -> Dict[str, Dict[str, float]]:
        """Group records by a field; mean uplink/downlink per group."""
        groups: Dict[str, List[CampaignRecord]] = {}
        for record in self.records:
            groups.setdefault(str(getattr(record, key)), []).append(record)
        return {
            name: {
                "uplink_mbps_mean": float(
                    np.mean([r.uplink_mbps_mean for r in records])
                ),
                "downlink_mbps_mean": float(
                    np.mean([r.downlink_mbps_mean for r in records])
                ),
                "sessions": float(len(records)),
            }
            for name, records in groups.items()
        }
