"""Automated measurement campaigns.

Sec. 5 of the paper: "We are currently building open-source tools for
Vision Pro to facilitate automated and large-scale crowd-sourced
measurement experiments in the wild."  On the simulated testbed that tool
already exists: a :class:`Campaign` sweeps a configuration grid (VCA x
device mix x user count x repeats), runs every cell unattended, and
collects one flat record per session — exportable to CSV for whatever
analysis stack the user prefers.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro import calibration
from repro.analysis.protocol import classify_capture
from repro.analysis.throughput import throughput_windows_mbps
from repro.core.testbed import multi_user_testbed
from repro.devices.models import Device, VisionPro
from repro.netsim.capture import Direction
from repro.vca.profiles import PROFILES, PersonaKind, VcaProfile

import numpy as np


@dataclass(frozen=True)
class CampaignCell:
    """One configuration to measure."""

    vca: str
    n_users: int
    device_factory: Callable[[], Device] = VisionPro
    duration_s: float = 15.0
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.vca not in PROFILES:
            raise ValueError(f"unknown VCA {self.vca!r}")
        if self.n_users < 2:
            raise ValueError("need at least two users")
        if self.duration_s <= 0 or self.repeats < 1:
            raise ValueError("duration and repeats must be positive")


@dataclass(frozen=True)
class CampaignRecord:
    """One measured session, flattened for tabular export."""

    vca: str
    n_users: int
    device: str
    repeat: int
    seed: int
    persona_kind: str
    protocol: str
    p2p: bool
    server_label: str
    uplink_mbps_mean: float
    downlink_mbps_mean: float
    persona_availability: float

    FIELDS = (
        "vca", "n_users", "device", "repeat", "seed", "persona_kind",
        "protocol", "p2p", "server_label", "uplink_mbps_mean",
        "downlink_mbps_mean", "persona_availability",
    )

    def as_row(self) -> List[str]:
        """CSV row in :attr:`FIELDS` order."""
        return [str(getattr(self, name)) for name in self.FIELDS]


class Campaign:
    """Runs a grid of session configurations unattended."""

    def __init__(self, cells: Sequence[CampaignCell], base_seed: int = 0) -> None:
        if not cells:
            raise ValueError("campaign needs at least one cell")
        self.cells = list(cells)
        self.base_seed = base_seed
        self.records: List[CampaignRecord] = []

    @classmethod
    def grid(
        cls,
        vcas: Iterable[str],
        user_counts: Iterable[int],
        duration_s: float = 15.0,
        repeats: int = 3,
        base_seed: int = 0,
    ) -> "Campaign":
        """A full-factorial campaign over VCAs and user counts.

        Spatial-persona-capped configurations (FaceTime above five users)
        are skipped automatically.
        """
        cells = []
        for vca in vcas:
            for n in user_counts:
                profile = PROFILES[vca]
                if (profile.supports_spatial
                        and n > calibration.MAX_SPATIAL_PERSONAS):
                    continue
                cells.append(CampaignCell(vca, n, duration_s=duration_s,
                                          repeats=repeats))
        return cls(cells, base_seed=base_seed)

    def run(self, progress: Optional[Callable[[str], None]] = None
            ) -> List[CampaignRecord]:
        """Execute every cell; returns (and stores) the records."""
        self.records = []
        seed = self.base_seed
        for cell in self.cells:
            for repeat in range(cell.repeats):
                if progress is not None:
                    progress(
                        f"{cell.vca} n={cell.n_users} repeat={repeat}"
                    )
                self.records.append(self._run_one(cell, repeat, seed))
                seed += 1
        return self.records

    def _run_one(self, cell: CampaignCell, repeat: int,
                 seed: int) -> CampaignRecord:
        testbed = multi_user_testbed(
            cell.n_users, device_factory=cell.device_factory
        )
        session = testbed.session(PROFILES[cell.vca], seed=seed)
        result = session.run(cell.duration_s)
        capture = result.capture_of("U1")
        up = throughput_windows_mbps(capture, Direction.UPLINK)
        down = throughput_windows_mbps(capture, Direction.DOWNLINK)
        availability = 1.0
        if result.persona_kind is PersonaKind.SPATIAL:
            receiver = result.receiver_of("U2")
            stats = receiver.stats.get(result.addresses["U1"])
            availability = stats.availability() if stats else 0.0
        protocol_report = classify_capture(capture)
        device = cell.device_factory().device_class.value
        return CampaignRecord(
            vca=cell.vca,
            n_users=cell.n_users,
            device=device,
            repeat=repeat,
            seed=seed,
            persona_kind=result.persona_kind.value,
            protocol=protocol_report.dominant,
            p2p=result.p2p,
            server_label=result.server.label if result.server else "-",
            uplink_mbps_mean=float(np.mean(up)) if up else 0.0,
            downlink_mbps_mean=float(np.mean(down)) if down else 0.0,
            persona_availability=availability,
        )

    def to_csv(self, path: Union[str, Path]) -> None:
        """Export the collected records.

        Raises:
            RuntimeError: If :meth:`run` has not produced records yet.
        """
        if not self.records:
            raise RuntimeError("run() the campaign before exporting")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CampaignRecord.FIELDS)
            for record in self.records:
                writer.writerow(record.as_row())

    def summary_by(self, key: str) -> Dict[str, Dict[str, float]]:
        """Group records by a field; mean uplink/downlink per group."""
        groups: Dict[str, List[CampaignRecord]] = {}
        for record in self.records:
            groups.setdefault(str(getattr(record, key)), []).append(record)
        return {
            name: {
                "uplink_mbps_mean": float(
                    np.mean([r.uplink_mbps_mean for r in records])
                ),
                "downlink_mbps_mean": float(
                    np.mean([r.downlink_mbps_mean for r in records])
                ),
                "sessions": float(len(records)),
            }
            for name, records in groups.items()
        }
