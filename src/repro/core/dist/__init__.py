"""Distributed multi-host campaign execution.

One shared directory (local disk or NFS) is the entire control plane:
a lease-based work-stealing queue (:mod:`~repro.core.dist.queue`),
heartbeat liveness beacons (:mod:`~repro.core.dist.heartbeat`), the
content-addressed result cache as shared artifact store, per-worker
journals/manifests merged deterministically
(:mod:`~repro.core.dist.merge`), and nothing else — no server, no
locks, no coordination service.

Entry points: :class:`~repro.core.dist.coordinator.Coordinator` runs a
campaign against a store (``repro campaign --distributed``);
:class:`~repro.core.dist.worker.WorkerAgent` works one
(``repro worker``).  Exactly-once cell effects under worker crashes,
freezes and partitions are enforced by monotonic fencing tokens — see
:mod:`~repro.core.dist.queue` for the protocol.
"""

from repro.core.dist.coordinator import Coordinator
from repro.core.dist.heartbeat import (
    DEFAULT_INTERVAL_S,
    STALE_FACTOR,
    HeartbeatWriter,
    live_workers,
    read_beacons,
)
from repro.core.dist.merge import (
    merge_journal_entries,
    merge_journals,
    merge_manifests,
    read_worker_manifests,
)
from repro.core.dist.queue import (
    QUEUE_FORMAT_VERSION,
    Lease,
    QueueError,
    TaskSpec,
    WorkQueue,
)
from repro.core.dist.store import StoreLayout, layout, worker_id
from repro.core.dist.worker import WorkerAgent, WorkerStats

__all__ = [
    "Coordinator",
    "DEFAULT_INTERVAL_S",
    "STALE_FACTOR",
    "HeartbeatWriter",
    "live_workers",
    "read_beacons",
    "merge_journal_entries",
    "merge_journals",
    "merge_manifests",
    "read_worker_manifests",
    "QUEUE_FORMAT_VERSION",
    "Lease",
    "QueueError",
    "TaskSpec",
    "WorkQueue",
    "StoreLayout",
    "layout",
    "worker_id",
    "WorkerAgent",
    "WorkerStats",
]
