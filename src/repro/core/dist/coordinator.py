"""The distributed campaign coordinator.

The coordinator is the only process that knows the full task list.  It
publishes one spec per cell into the shared queue, then *waits*: workers
(started independently, on any host that sees the store) claim, execute
and commit cells on their own.  The coordinator's job afterwards is
assembly — collect every committed outcome, fold per-worker journals and
manifests into single deterministic files, and hand back results **in
task order**, exactly as :class:`~repro.core.parallel.TaskRunner` would
have.

Two deliberate degradations keep a distributed campaign from being
*worse* than a local one:

- **No workers?  No problem.**  If no worker heartbeat appears within
  ``worker_wait_s`` (or the whole fleet dies mid-run), the coordinator
  claims cells itself — through the same lease protocol, so a late
  worker can still join — and executes them on the PR 4 in-process pool
  (``jobs`` workers, watchdog, retry taxonomy).  A distributed campaign
  with zero workers is therefore just a parallel campaign with extra
  bookkeeping.
- **Crash anywhere, resume anywhere.**  Commit markers are the ground
  truth.  Re-running the same campaign against the same store re-enqueues
  only unfinished cells; finished ones are collected from their committed
  outcomes without re-execution.

The merged journal the coordinator writes is a plain
:class:`~repro.core.journal.RunJournal`, so a later *single-process*
``--resume`` can pick up where a distributed fleet left off.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Union

from repro.core.cache import ResultCache, code_fingerprint
from repro.core.dist import heartbeat as hb
from repro.core.dist.merge import (
    merge_journals,
    merge_manifests,
    read_worker_manifests,
)
from repro.core.dist.queue import Lease, QueueError, TaskSpec, WorkQueue
from repro.core.dist.store import StoreLayout, layout as make_layout, worker_id
from repro.core.errors import CellFailure, RetryPolicy
from repro.core.journal import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RESUMED,
    CellOutcome,
    RunJournal,
    RunManifest,
    run_fingerprint,
)
from repro.core.parallel import CellTask, RunStats, TaskRunner
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Completed statuses an outcome may carry a payload under.
_COMPLETED = (STATUS_OK, STATUS_CACHED)


class Coordinator:
    """Publishes a campaign to a shared store and assembles its results.

    Args:
        store: Shared store directory (workers point ``--store`` here).
        jobs: Pool width of the *inline fallback* runner (irrelevant
            while external workers are doing the work).
        worker_wait_s: Grace period to wait for a first worker heartbeat
            before the coordinator starts executing cells itself.
        poll_s: Wait-loop polling interval.
        heartbeat_interval_s: The coordinator's own beacon interval (its
            fallback leases deserve the same takeover protection).
        lease_timeout_s: Owner-silence span after which a lease is
            stealable (default: 3x the heartbeat interval).
        timeout: Per-cell watchdog deadline for the fallback pool.
        max_retries: Transient-retry budget (fallback execution).
        jitter: Seeded backoff jitter fraction for fallback retries.
    """

    def __init__(
        self,
        store: Union[str, Path, StoreLayout],
        *,
        jobs: int = 1,
        worker_wait_s: float = 10.0,
        poll_s: float = 0.25,
        heartbeat_interval_s: float = hb.DEFAULT_INTERVAL_S,
        lease_timeout_s: Optional[float] = None,
        timeout: Optional[float] = None,
        max_retries: int = 1,
        jitter: float = 0.25,
        seed: int = 0,
        progress: Optional[Callable[[str], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        self.layout = (store if isinstance(store, StoreLayout)
                       else make_layout(store))
        self.worker = worker_id(None)
        self.jobs = jobs
        self.worker_wait_s = worker_wait_s
        self.poll_s = poll_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.lease_timeout_s = (
            lease_timeout_s if lease_timeout_s is not None
            else heartbeat_interval_s * hb.STALE_FACTOR
        )
        self.timeout = timeout
        self.policy = RetryPolicy(max_retries=max_retries, jitter=jitter,
                                  seed=seed)
        self.progress = progress
        self._sleep = sleep
        self._monotonic = monotonic
        self.queue = WorkQueue(self.layout, worker=self.worker)
        self.stats = RunStats()
        self.manifest = RunManifest()          # merged, after run()
        self.dist: Dict[str, Any] = {}         # distributed-run summary
        self._inline_keys: Set[str] = set()

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[CellTask],
        *,
        journal: Optional[RunJournal] = None,
        manifest: Optional[RunManifest] = None,
        failfast: bool = True,
    ) -> List[Any]:
        """Run ``tasks`` through the store; results come in task order.

        ``journal``/``manifest`` mirror the :class:`TaskRunner` API: the
        merged distributed journal is replicated into ``journal`` (so the
        operator's ``--journal`` file stays resumable locally) and every
        merged outcome is recorded into ``manifest``.
        """
        started = self._monotonic()
        self.stats = RunStats(tasks=len(tasks))
        self._inline_keys = set()
        keys = [task.cache_key() for task in tasks]
        specs = self._dedup_specs(tasks, keys)
        fingerprint = run_fingerprint(keys)
        self.layout.create()
        self._reset_side_files(fingerprint)
        counts = self.queue.publish(specs, fingerprint, code_fingerprint())
        resumed_keys = set(self.queue.done_tokens())
        self._tick(f"[dist] published {counts['published']} cells "
                   f"({len(resumed_keys)} already done) in "
                   f"{self.layout.root}")
        cache = ResultCache(self.layout.cache_dir)
        session = RunManifest()
        for key in sorted(resumed_keys):
            name = next((t.name for t, k in zip(tasks, keys) if k == key),
                        key)
            session.record(CellOutcome(name=name, key=key,
                                       status=STATUS_RESUMED, attempts=0))
        beacon = hb.HeartbeatWriter(self.layout, self.worker,
                                    interval_s=self.heartbeat_interval_s)
        own_journal = RunJournal(self.layout.journals_dir
                                 / f"{self.worker}.jsonl")
        try:
            with beacon, obs_trace.span("dist.coordinate", cat="dist",
                                        tasks=len(tasks), jobs=self.jobs):
                self._wait(cache, own_journal, session)
        finally:
            own_journal.close()
            self._write_session_manifest(session)
        results = self._assemble(tasks, keys, resumed_keys, journal,
                                 manifest, failfast)
        self.stats.elapsed_s = self._monotonic() - started
        return results

    def _dedup_specs(self, tasks: Sequence[CellTask],
                     keys: Sequence[str]) -> List[TaskSpec]:
        specs: List[TaskSpec] = []
        seen: Set[str] = set()
        for task, key in zip(tasks, keys):
            if key in seen:
                continue
            seen.add(key)
            specs.append(TaskSpec(key=key, name=task.name, task=task))
        return specs

    def _reset_side_files(self, fingerprint: str) -> None:
        """A different campaign in this store orphans old side files.

        The queue wipes itself on a fingerprint change; journals and
        manifests from the previous campaign must go too, or they would
        leak foreign cells into this run's merge.  The shared cache
        stays — it is content-addressed, so stale entries are unreachable
        by construction.
        """
        from repro.core.dist.store import read_json
        existing = read_json(self.layout.campaign_file)
        if existing is None or existing.get("fingerprint") == fingerprint:
            return
        for directory in (self.layout.journals_dir, self.layout.manifests_dir):
            if directory.exists():
                for path in directory.iterdir():
                    path.unlink(missing_ok=True)
        self.layout.merged_journal.unlink(missing_ok=True)
        self.layout.merged_manifest.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # the wait loop (plus inline fallback)
    # ------------------------------------------------------------------

    def _wait(self, cache: ResultCache, own_journal: RunJournal,
              session: RunManifest) -> None:
        fallback_at = self._monotonic() + self.worker_wait_s
        inline = False
        last_done = -1
        while not self.queue.finished():
            live = {
                worker: data
                for worker, data in hb.live_workers(
                    self.layout, self.lease_timeout_s
                ).items()
                if worker != self.worker
            }
            done = len(self.queue.done_tokens())
            if done != last_done:
                last_done = done
                total = int((self.queue.campaign() or {}).get("total", 0))
                self._tick(f"[dist] {done}/{total} cells done, "
                           f"{len(live)} worker(s) live")
            if not live and (inline or self._monotonic() >= fallback_at):
                if not inline:
                    self._tick("[dist] no live workers — "
                               "falling back to in-process execution")
                inline = True
                if self._drain_inline(cache, own_journal, session):
                    continue
            self._sleep(self.poll_s)

    def _drain_inline(self, cache: ResultCache, own_journal: RunJournal,
                      session: RunManifest) -> bool:
        """Claim one batch of cells and run them on the local pool.

        Goes through the very same lease protocol workers use, so a
        worker that shows up late can still steal from a stalled
        coordinator, and vice versa.  Returns False when nothing was
        claimable (all remaining leases belong to live owners).
        """
        leases: List[Lease] = []
        while len(leases) < max(self.jobs, 1):
            lease = self.queue.claim(stale_after_s=self.lease_timeout_s)
            if lease is None:
                break
            leases.append(lease)
        if not leases:
            return False
        runner_manifest = RunManifest()
        runner = TaskRunner(jobs=self.jobs, cache=cache, policy=self.policy,
                            timeout=self.timeout, manifest=runner_manifest,
                            failfast=False, progress=self.progress)
        try:
            runner.run([lease.spec.task for lease in leases])
        except BaseException:
            # Interrupted mid-batch: hand the cells straight back rather
            # than making survivors wait out the staleness deadline.
            for lease in leases:
                self.queue.release(lease)
            raise
        # Retries are folded from committed outcomes later; counting the
        # runner's here as well would double-book inline cells.
        self.stats.timeouts += runner.stats.timeouts
        self.stats.fallbacks += runner.stats.fallbacks
        by_key = {cell.key: cell for cell in runner_manifest.cells}
        for lease in leases:
            cell = by_key.get(lease.key)
            if cell is None:
                self.queue.release(lease)
                continue
            self._commit_cell(lease, cell, cache, own_journal, session)
        return True

    def _commit_cell(self, lease: Lease, cell: CellOutcome,
                     cache: ResultCache, own_journal: RunJournal,
                     session: RunManifest) -> None:
        outcome: Dict[str, Any] = {
            "name": lease.spec.name,
            "status": cell.status,
            "attempts": cell.attempts,
            "retries": cell.retries,
            "duration_s": round(cell.duration_s, 6),
            "sim_time_s": round(cell.sim_time_s, 6),
        }
        payload = None
        if cell.status in _COMPLETED:
            payload = cache.get(lease.key)
            outcome["payload"] = payload
        if cell.error is not None:
            outcome["error"] = cell.error
        if cell.metrics is not None:
            outcome["metrics"] = cell.metrics
        committed = self.queue.commit(lease, outcome)
        recorded = CellOutcome(
            name=lease.spec.name, key=lease.key,
            status=cell.status if committed else "fenced",
            attempts=cell.attempts, retries=cell.retries,
            duration_s=cell.duration_s, backoff_s=list(cell.backoff_s),
            error=cell.error, sim_time_s=cell.sim_time_s,
            metrics=cell.metrics, worker=self.worker,
        )
        session.record(recorded)
        if not committed:
            return
        self._inline_keys.add(lease.key)
        if cell.status in _COMPLETED:
            own_journal.append(key=lease.key, name=lease.spec.name,
                               status=cell.status, payload=payload,
                               attempts=cell.attempts,
                               duration_s=cell.duration_s)
        else:
            own_journal.append(key=lease.key, name=lease.spec.name,
                               status=cell.status, attempts=cell.attempts,
                               duration_s=cell.duration_s, error=cell.error)

    def _write_session_manifest(self, session: RunManifest) -> None:
        if not session.cells:
            return
        try:
            session.write(self.layout.manifests_dir / f"{self.worker}.json")
        except OSError:
            pass  # done/ markers still hold the truth

    # ------------------------------------------------------------------
    # assembly: outcomes -> results, merges, stats
    # ------------------------------------------------------------------

    def _assemble(self, tasks: Sequence[CellTask], keys: Sequence[str],
                  resumed_keys: Set[str], journal: Optional[RunJournal],
                  manifest: Optional[RunManifest],
                  failfast: bool) -> List[Any]:
        done = self.queue.done_tokens()
        outcomes: Dict[str, Dict[str, Any]] = {}
        for key, token in done.items():
            outcome = self.queue.outcome_for(key, token)
            if outcome is not None:
                outcomes[key] = outcome
        self._merge_artifacts(journal, manifest)
        self._fold_stats(outcomes, set(keys), resumed_keys)
        self.dist = {
            "workers": sorted({
                str(o.get("worker", "")) for o in outcomes.values()
            } - {""}),
            "takeovers": sum(1 for t in done.values() if t > 1),
            "fenced_zombies": len(self.queue.zombie_outcomes()),
            "resumed": len(resumed_keys),
            "inline_cells": len(self._inline_keys),
        }
        results: List[Any] = [None] * len(tasks)
        first_failure: Optional[str] = None
        for index, task in enumerate(tasks):
            key = keys[index]
            outcome = outcomes.get(key)
            if outcome is None:
                raise QueueError(
                    f"cell {task.name!r} has a commit marker but no "
                    f"readable outcome in {self.layout.outcomes_dir}"
                )
            status = outcome.get("status")
            if status in _COMPLETED:
                payload = outcome.get("payload")
                results[index] = (task.unpack(payload) if task.unpack
                                  else payload)
                continue
            error = outcome.get("error") or {}
            results[index] = CellFailure(
                name=task.name, key=key,
                category=str(error.get("category", "deterministic")),
                error_type=str(error.get("type", "Exception")),
                message=str(error.get("message", "")),
                attempts=int(outcome.get("attempts", 1)),
            )
            if (failfast and status == STATUS_FAILED
                    and first_failure is None):
                first_failure = (
                    f"cell {task.name!r} failed on worker "
                    f"{outcome.get('worker', '?')}: "
                    f"{error.get('type', 'Exception')}: "
                    f"{error.get('message', '')}"
                )
        if first_failure is not None:
            # Merges above already ran: the failure loses no finished work.
            raise RuntimeError(first_failure)
        return results

    def _merge_artifacts(self, journal: Optional[RunJournal],
                         manifest: Optional[RunManifest]) -> None:
        journal_paths = sorted(self.layout.journals_dir.glob("*.jsonl"))
        merged_journal = merge_journals(journal_paths,
                                        self.layout.merged_journal)
        if journal is not None:
            self._replicate_journal(merged_journal, journal)
        self.manifest = merge_manifests(
            read_worker_manifests(self.layout.manifests_dir)
        )
        self.manifest.write(self.layout.merged_manifest)
        if manifest is not None:
            for cell in self.manifest.cells:
                manifest.record(cell)

    @staticmethod
    def _replicate_journal(merged: RunJournal, journal: RunJournal) -> None:
        """Copy the merged entries into the operator's ``--journal`` file."""
        entries = merged.load()
        journal.ensure_fresh()
        for key in sorted(entries):
            entry = entries[key]
            journal.append(
                key=key, name=str(entry.get("name", "")),
                status=str(entry.get("status", "")),
                payload=entry.get("payload"),
                attempts=int(entry.get("attempts", 1)),
                duration_s=float(entry.get("duration_s", 0.0)),
                error=entry.get("error"),
            )
        journal.flush()

    def _fold_stats(self, outcomes: Dict[str, Dict[str, Any]],
                    wanted: Set[str], resumed_keys: Set[str]) -> None:
        for key, outcome in outcomes.items():
            if key not in wanted:
                continue
            status = outcome.get("status")
            if key in resumed_keys:
                self.stats.resumed += 1
            elif status == STATUS_CACHED:
                self.stats.cache_hits += 1
            elif status == STATUS_OK:
                self.stats.executed += 1
            elif status == STATUS_QUARANTINED:
                self.stats.quarantined += 1
            elif status == STATUS_FAILED:
                self.stats.failed += 1
            if key not in resumed_keys:
                self.stats.retries += int(outcome.get("retries", 0))
            # Fold foreign workers' per-cell metrics into this registry
            # so ``--metrics`` reports fleet totals; inline cells already
            # landed in it when they executed here.
            snap = outcome.get("metrics")
            if (snap and status == STATUS_OK
                    and outcome.get("worker") != self.worker):
                obs_metrics.REGISTRY.merge(snap)

    def _tick(self, label: str) -> None:
        if self.progress is not None:
            self.progress(label)
