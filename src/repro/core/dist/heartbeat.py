"""Heartbeat-file liveness detection for distributed workers.

A worker proves it is alive by atomically rewriting
``heartbeats/<worker>.json`` every ``interval`` seconds.  Liveness is
the *only* thing heartbeats decide: a worker whose beacon has not moved
for ``stale_after`` seconds is presumed dead (SIGKILLed, partitioned,
or frozen), and its leases become stealable.  Correctness never depends
on that presumption being right — a worker declared dead too eagerly is
fenced when it tries to commit, so a slow clock or an NFS hiccup can
cost duplicate *work*, never duplicate *results*.

Staleness compares the wall-clock timestamp inside the beacon against
the reader's clock, so multi-host fleets need loosely NTP-synced clocks
(off by seconds is fine; the deadline just shifts by the skew).

One deliberate wrinkle: the beat thread refuses to beat while the
worker's current cell has exceeded its declared ``busy_timeout``.  A
worker wedged inside a hung cell therefore *looks dead*, its lease is
stolen, and the campaign keeps moving — the distributed analogue of the
PR 4 per-cell watchdog, without needing anyone to kill anything.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.core.dist.store import StoreLayout, atomic_write_json, read_json
from repro.obs import metrics as obs_metrics

#: Default seconds between beats.
DEFAULT_INTERVAL_S = 1.0

#: Default multiple of the interval after which a worker is presumed
#: dead.  Three missed beats tolerates scheduler hiccups without making
#: takeover sluggish.
STALE_FACTOR = 3.0


class HeartbeatWriter:
    """Background thread keeping one worker's liveness beacon fresh."""

    def __init__(self, layout: StoreLayout, worker: str,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 busy_timeout_s: Optional[float] = None) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.layout = layout
        self.worker = worker
        self.interval_s = interval_s
        self.busy_timeout_s = busy_timeout_s
        self.path = layout.heartbeats_dir / f"{worker}.json"
        self._beats = obs_metrics.counter("dist.heartbeats")
        self._stop = threading.Event()
        self._busy_since: Optional[float] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # busy bookkeeping (the self-watchdog)
    # ------------------------------------------------------------------

    def cell_started(self) -> None:
        self._busy_since = time.monotonic()

    def cell_finished(self) -> None:
        self._busy_since = None

    def _wedged(self) -> bool:
        """True when the current cell has outrun its declared deadline."""
        if self.busy_timeout_s is None or self._busy_since is None:
            return False
        return time.monotonic() - self._busy_since > self.busy_timeout_s

    # ------------------------------------------------------------------
    # beating
    # ------------------------------------------------------------------

    def beat(self) -> None:
        """Write one beacon now (also called by the background thread)."""
        if self._wedged():
            return
        atomic_write_json(self.path, {
            "worker": self.worker,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "time": time.time(),
            "interval_s": self.interval_s,
        })
        self._beats.inc()

    def start(self) -> "HeartbeatWriter":
        self.beat()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name=f"heartbeat-{self.worker}")
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.beat()
            except OSError:
                # A partition: keep trying — the beacon going stale is
                # exactly how the fleet learns this worker is cut off.
                continue

    def stop(self, *, remove: bool = True) -> None:
        """Stop beating; by default withdraw the beacon entirely.

        A withdrawn beacon makes the worker immediately stealable, so a
        graceful shutdown hands its leases over without waiting out the
        staleness deadline.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if remove:
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "HeartbeatWriter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def read_beacons(layout: StoreLayout) -> Dict[str, Dict]:
    """Every parseable beacon, by worker id."""
    beacons: Dict[str, Dict] = {}
    if not layout.heartbeats_dir.exists():
        return beacons
    for path in sorted(layout.heartbeats_dir.glob("*.json")):
        data = read_json(path)
        if data and isinstance(data.get("worker"), str):
            beacons[data["worker"]] = data
    return beacons


def live_workers(layout: StoreLayout, stale_after_s: float,
                 now: Optional[float] = None) -> Dict[str, Dict]:
    """Beacons fresh enough to count as alive."""
    now = time.time() if now is None else now
    return {
        worker: data
        for worker, data in read_beacons(layout).items()
        if now - float(data.get("time", 0.0)) <= stale_after_s
    }


def is_stale(layout: StoreLayout, worker: str, stale_after_s: float,
             lease_path: Optional[Path] = None,
             now: Optional[float] = None) -> bool:
    """Whether ``worker`` is presumed dead for lease-takeover purposes.

    A missing beacon falls back to the lease file's own mtime: a worker
    that died before its first beat must still become stealable, but a
    lease younger than the deadline is given the benefit of the doubt.
    """
    now = time.time() if now is None else now
    data = read_json(layout.heartbeats_dir / f"{worker}.json")
    if data is not None:
        return now - float(data.get("time", 0.0)) > stale_after_s
    if lease_path is not None:
        try:
            return now - lease_path.stat().st_mtime > stale_after_s
        except OSError:
            return False  # lease vanished: someone else already acted
    return True
