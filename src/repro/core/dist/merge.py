"""Deterministic merge of per-worker journals and manifests.

Every worker checkpoints into its own ``journals/<worker>.jsonl`` and
audits into its own ``manifests/<worker>.json`` — concurrent appends to
one shared file would interleave.  After the campaign, the coordinator
folds them into a single account.  Both merges are engineered to be
**order-independent** (commutative and associative) and **idempotent**,
so it never matters which workers' files arrive first, whether a merge
is re-run after a crash, or whether partial merges are merged again:

- Manifest merge is a set union keyed by each outcome's canonical JSON
  form, emitted in sorted order.  Two workers that both report the same
  cell (a fenced attempt next to the committed one) both appear — the
  audit keeps every attempt, deduplicating only true duplicates.
- Journal merge keeps one entry per cell key, chosen by a total order:
  completed entries (they carry replayable payloads) beat failed ones,
  ties fall to the lexicographically smallest canonical form.  Cells
  are deterministic, so two completed entries for one key hold
  byte-identical payloads and the tiebreak is cosmetic.

The merged journal is a plain :class:`~repro.core.journal.RunJournal`
file keyed by the same content-addressed keys, so a later
*single-process* run can ``--resume`` from a distributed campaign's
merged checkpoint unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.core.journal import (
    STATUS_CACHED,
    STATUS_OK,
    CellOutcome,
    RunJournal,
    RunManifest,
)

#: Journal statuses whose entries carry a replayable payload.
_COMPLETED = (STATUS_OK, STATUS_CACHED)


# ---------------------------------------------------------------------------
# manifests
# ---------------------------------------------------------------------------

def merge_manifests(manifests: Iterable[RunManifest]) -> RunManifest:
    """One manifest holding every distinct outcome, canonically ordered."""
    seen: Dict[str, CellOutcome] = {}
    for manifest in manifests:
        for cell in manifest.cells:
            seen[json.dumps(cell.as_dict(), sort_keys=True)] = cell
    merged = RunManifest()
    for form in sorted(seen):
        merged.record(seen[form])
    return merged


def read_worker_manifests(directory: Union[str, Path]) -> List[RunManifest]:
    """Every parseable per-worker manifest under ``directory``."""
    manifests: List[RunManifest] = []
    directory = Path(directory)
    if not directory.exists():
        return manifests
    for path in sorted(directory.glob("*.json")):
        try:
            manifests.append(RunManifest.read(path))
        except (OSError, ValueError, KeyError):
            continue  # a worker died mid-write; its cells are in done/
    return manifests


# ---------------------------------------------------------------------------
# journals
# ---------------------------------------------------------------------------

def _entry_rank(entry: Dict[str, Any]) -> Tuple[int, str]:
    """Total order: completed first, then canonical form."""
    completed = 0 if entry.get("status") in _COMPLETED else 1
    return completed, json.dumps(entry, sort_keys=True)


def merge_journal_entries(
    entry_maps: Iterable[Dict[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Fold per-worker ``key -> entry`` maps into one, deterministically.

    Taking the minimum of a total order per key makes the fold
    commutative, associative, and idempotent — the property suite holds
    it to all three.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for entries in entry_maps:
        for key, entry in entries.items():
            current = merged.get(key)
            if current is None or _entry_rank(entry) < _entry_rank(current):
                merged[key] = entry
    return merged


def merge_journals(paths: Iterable[Union[str, Path]],
                   out_path: Union[str, Path]) -> RunJournal:
    """Merge per-worker journal files into one resumable journal."""
    maps = []
    for path in paths:
        journal = RunJournal(path)
        maps.append(journal.load())
    merged = merge_journal_entries(maps)
    out = RunJournal(out_path)
    out.reset()
    try:
        for key in sorted(merged):
            entry = merged[key]
            out.append(
                key=key,
                name=str(entry.get("name", "")),
                status=str(entry.get("status", "")),
                payload=entry.get("payload"),
                attempts=int(entry.get("attempts", 1)),
                duration_s=float(entry.get("duration_s", 0.0)),
                error=entry.get("error"),
            )
    finally:
        out.close()
    return out
