"""Lease-based work-stealing cell queue over a shared directory.

The queue is four directories and three atomic renames:

- **publish** — the coordinator writes one spec file per cell into
  ``pending/`` (skipping keys that already have a commit marker from an
  earlier run, which is what makes distributed campaigns resumable).
- **claim** — a worker renames ``pending/<key>.json`` to
  ``active/<key>@1@<worker>.json``.  ``os.rename`` of one source path
  has exactly one winner per POSIX, so two workers grabbing the same
  cell costs the loser an ``ENOENT`` and a move to the next file — no
  locks, no server.
- **steal** — when ``pending/`` is empty, workers scan ``active/`` for
  leases whose owner's heartbeat has gone stale and rename the lease
  onto themselves with the **fencing token incremented**:
  ``<key>@2@<thief>``.  Same single-winner rename; a lease bounces
  between takeovers with a strictly increasing token.
- **commit** — the lease holder writes the outcome to
  ``outcomes/<key>@<token>.json`` and then renames its *own* lease file
  to ``done/<key>@<token>.json``.  A zombie — SIGSTOPped past the
  heartbeat deadline, or partitioned, and since stolen from — no longer
  owns its lease file, so its commit rename fails and the result is
  **fenced**: at most one commit marker ever exists per key, which is
  the exactly-once guarantee the chaos suite asserts.

Because every cell is a deterministic pure function of its spec, the
*work* may legally run twice (takeover after a false death verdict);
only the *commit* is unique.  Duplicate artifact-store writes are
byte-identical and therefore harmless.

Specs carry the pickled :class:`~repro.core.parallel.CellTask` (cells
reference module-level functions, so they unpickle anywhere the same
code is installed; the campaign file pins the code fingerprint and
workers refuse to join a store built from different sources).  The
store directory is operator-controlled infrastructure — the same trust
boundary as the existing on-disk cache and journal.
"""

from __future__ import annotations

import base64
import os
import pickle
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.dist import heartbeat as hb
from repro.core.dist.store import (
    SEP,
    StoreLayout,
    atomic_write_json,
    layout as make_layout,
    read_json,
)
from repro.core.parallel import CellTask
from repro.obs import metrics as obs_metrics

#: Bump to orphan every existing queue wholesale.
QUEUE_FORMAT_VERSION = 1


class QueueError(RuntimeError):
    """The shared queue is missing, incompatible, or corrupt."""


@dataclass(frozen=True)
class TaskSpec:
    """One published cell: its content-addressed key and its task."""

    key: str
    name: str
    task: CellTask

    def to_json(self) -> Dict[str, Any]:
        blob = base64.b64encode(pickle.dumps(self.task)).decode("ascii")
        return {"key": self.key, "name": self.name, "task_b64": blob}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TaskSpec":
        task = pickle.loads(base64.b64decode(data["task_b64"]))
        return cls(key=data["key"], name=data["name"], task=task)


@dataclass(frozen=True)
class Lease:
    """One claimed cell: who holds it and at which fencing token."""

    key: str
    token: int
    worker: str
    path: Path
    spec: TaskSpec


def _lease_name(key: str, token: int, worker: str) -> str:
    return f"{key}{SEP}{token}{SEP}{worker}.json"


def _parse_lease_name(name: str) -> Optional[Tuple[str, int, str]]:
    """(key, token, worker) from an active-file name, None if foreign."""
    if not name.endswith(".json"):
        return None
    parts = name[:-len(".json")].split(SEP, 2)
    if len(parts) != 3:
        return None
    key, token_text, worker = parts
    try:
        return key, int(token_text), worker
    except ValueError:
        return None


class WorkQueue:
    """One campaign's cell queue inside a shared store."""

    def __init__(self, root: Union[str, Path, StoreLayout],
                 worker: str = "coordinator") -> None:
        self.layout = (root if isinstance(root, StoreLayout)
                       else make_layout(root))
        self.worker = worker
        self._campaign: Optional[Dict[str, Any]] = None
        self._claims = obs_metrics.counter("dist.claims")
        self._claim_races = obs_metrics.counter("dist.claim_races")
        self._steals = obs_metrics.counter("dist.steals")
        self._commits = obs_metrics.counter("dist.commits")
        self._fenced = obs_metrics.counter("dist.fenced")
        self._releases = obs_metrics.counter("dist.releases")

    # ------------------------------------------------------------------
    # coordinator side: publish
    # ------------------------------------------------------------------

    def publish(self, specs: Sequence[TaskSpec], fingerprint: str,
                code_fingerprint: str) -> Dict[str, int]:
        """Make this campaign the store's current one; enqueue its cells.

        A store already holding the *same* campaign (matching
        fingerprint) keeps its commit markers — publishing becomes a
        resume that enqueues only unfinished cells.  A different
        fingerprint wipes the queue first: one store runs one campaign
        at a time.
        """
        self.layout.create()
        existing = read_json(self.layout.campaign_file)
        if existing is not None and (
            existing.get("fingerprint") != fingerprint
            or existing.get("version") != QUEUE_FORMAT_VERSION
        ):
            self._wipe_queue()
            existing = None
        done = self.done_tokens()
        held = {parsed[0] for parsed in self._active_leases()}
        published = skipped = 0
        for spec in specs:
            if spec.key in done:
                continue  # counted once, in already_done
            target = self.layout.pending_dir / f"{spec.key}.json"
            if spec.key in held or target.exists():
                skipped += 1
                continue
            atomic_write_json(target, spec.to_json())
            published += 1
        self._campaign = {
            "version": QUEUE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "code": code_fingerprint,
            "total": len(specs),
            "created": time.time(),
        }
        atomic_write_json(self.layout.campaign_file, self._campaign)
        return {"published": published, "already_done": len(done),
                "skipped": skipped}

    def _wipe_queue(self) -> None:
        for directory in (self.layout.pending_dir, self.layout.active_dir,
                          self.layout.outcomes_dir, self.layout.done_dir):
            if directory.exists():
                for path in directory.iterdir():
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def campaign(self, refresh: bool = False) -> Optional[Dict[str, Any]]:
        """The published campaign descriptor (None before publish)."""
        if self._campaign is None or refresh:
            self._campaign = read_json(self.layout.campaign_file)
        return self._campaign

    def join(self, code_fingerprint: str) -> Dict[str, Any]:
        """Validate this process against the published campaign.

        Raises:
            QueueError: No campaign published, incompatible queue
                format, or the store was built from different sources —
                running mismatched code would poison the shared cache
                with results keyed to the coordinator's fingerprint.
        """
        campaign = self.campaign(refresh=True)
        if campaign is None:
            raise QueueError(
                f"no campaign published in {self.layout.root} "
                f"(start the coordinator first, or wait for it)"
            )
        if campaign.get("version") != QUEUE_FORMAT_VERSION:
            raise QueueError(
                f"queue format {campaign.get('version')!r} != "
                f"{QUEUE_FORMAT_VERSION} (mixed repro versions?)"
            )
        if campaign.get("code") != code_fingerprint:
            raise QueueError(
                "code fingerprint mismatch: this worker's sources differ "
                "from the coordinator's — refusing to join (results would "
                "not be comparable)"
            )
        return campaign

    # ------------------------------------------------------------------
    # worker side: claim / steal / release / commit
    # ------------------------------------------------------------------

    def claim(self, stale_after_s: float = 3.0,
              steal: bool = True) -> Optional[Lease]:
        """Take one cell: pending first, then stale-lease takeover.

        Returns ``None`` when nothing is claimable right now (queue
        drained, or every remaining lease is held by a live worker).
        """
        lease = self._claim_pending()
        if lease is None and steal:
            lease = self._steal_stale(stale_after_s)
        return lease

    def _claim_pending(self) -> Optional[Lease]:
        try:
            names = sorted(p.name for p in self.layout.pending_dir.iterdir()
                           if p.name.endswith(".json"))
        except OSError:
            return None
        if not names:
            return None
        # Start each worker at a different point of the (sorted) list so
        # a fleet does not fight over the same file on every claim.
        offset = zlib.crc32(self.worker.encode()) % len(names)
        for name in names[offset:] + names[:offset]:
            key = name[:-len(".json")]
            target = self.layout.active_dir / _lease_name(key, 1, self.worker)
            try:
                os.rename(self.layout.pending_dir / name, target)
            except FileNotFoundError:
                self._claim_races.inc()
                continue  # lost the rename race; try the next cell
            except OSError:
                continue
            spec = self._spec_at(target)
            if spec is None:
                continue
            self._claims.inc()
            return Lease(key=key, token=1, worker=self.worker, path=target,
                         spec=spec)
        return None

    def _steal_stale(self, stale_after_s: float) -> Optional[Lease]:
        for key, token, owner in self._active_leases():
            if owner == self.worker:
                continue
            source = self.layout.active_dir / _lease_name(key, token, owner)
            if not hb.is_stale(self.layout, owner, stale_after_s,
                               lease_path=source):
                continue
            target = self.layout.active_dir / _lease_name(
                key, token + 1, self.worker
            )
            try:
                os.rename(source, target)
            except FileNotFoundError:
                continue  # the owner committed, released, or was re-stolen
            except OSError:
                continue
            spec = self._spec_at(target)
            if spec is None:
                continue
            self._steals.inc()
            self._claims.inc()
            return Lease(key=key, token=token + 1, worker=self.worker,
                         path=target, spec=spec)
        return None

    def _spec_at(self, path: Path) -> Optional[TaskSpec]:
        data = read_json(path)
        if data is None:
            return None
        try:
            return TaskSpec.from_json(data)
        except Exception:  # noqa: BLE001 - corrupt spec: poisoned file
            return None

    def _active_leases(self) -> List[Tuple[str, int, str]]:
        leases: List[Tuple[str, int, str]] = []
        try:
            names = sorted(p.name for p in self.layout.active_dir.iterdir())
        except OSError:
            return leases
        for name in names:
            parsed = _parse_lease_name(name)
            if parsed is not None:
                leases.append(parsed)
        return leases

    def release(self, lease: Lease) -> bool:
        """Put a claimed cell back (graceful shutdown mid-queue).

        False when the lease was already stolen — then it is someone
        else's problem by definition, and nothing needs doing.
        """
        try:
            os.rename(lease.path,
                      self.layout.pending_dir / f"{lease.key}.json")
        except FileNotFoundError:
            return False
        self._releases.inc()
        return True

    def commit(self, lease: Lease, outcome: Dict[str, Any]) -> bool:
        """Publish a finished cell's outcome — exactly once per key.

        The outcome file lands first (token-namespaced, conflict-free);
        the rename of the lease file into ``done/`` is the fencing
        point.  Returns False when fenced: the caller's lease was taken
        over and a successor owns the cell now.
        """
        outcome = dict(outcome)
        outcome.setdefault("key", lease.key)
        outcome["token"] = lease.token
        outcome["worker"] = lease.worker
        atomic_write_json(
            self.layout.outcomes_dir
            / f"{lease.key}{SEP}{lease.token}.json",
            outcome,
        )
        try:
            os.rename(lease.path,
                      self.layout.done_dir
                      / f"{lease.key}{SEP}{lease.token}.json")
        except FileNotFoundError:
            self._fenced.inc()
            return False
        self._commits.inc()
        return True

    # ------------------------------------------------------------------
    # progress / results
    # ------------------------------------------------------------------

    def done_tokens(self) -> Dict[str, int]:
        """key -> committed fencing token, for every finished cell."""
        tokens: Dict[str, int] = {}
        try:
            names = [p.name for p in self.layout.done_dir.iterdir()]
        except OSError:
            return tokens
        for name in names:
            if not name.endswith(".json"):
                continue
            parts = name[:-len(".json")].split(SEP)
            if len(parts) != 2:
                continue
            try:
                tokens[parts[0]] = int(parts[1])
            except ValueError:
                continue
        return tokens

    def outcome_for(self, key: str,
                    token: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """The committed outcome of one cell (None when not done)."""
        if token is None:
            token = self.done_tokens().get(key)
            if token is None:
                return None
        return read_json(
            self.layout.outcomes_dir / f"{key}{SEP}{token}.json"
        )

    def zombie_outcomes(self) -> List[Dict[str, Any]]:
        """Outcome files whose token lost the fencing race.

        Forensic evidence that exactly-once did its job: each entry is a
        finished computation that was *not* committed because its lease
        had been taken over.
        """
        committed = self.done_tokens()
        zombies: List[Dict[str, Any]] = []
        try:
            names = sorted(p.name for p in self.layout.outcomes_dir.iterdir())
        except OSError:
            return zombies
        for name in names:
            if not name.endswith(".json"):
                continue
            parts = name[:-len(".json")].split(SEP)
            if len(parts) != 2:
                continue
            key, token_text = parts
            try:
                token = int(token_text)
            except ValueError:
                continue
            if committed.get(key) != token:
                data = read_json(self.layout.outcomes_dir / name)
                if data is not None:
                    zombies.append(data)
        return zombies

    def counts(self) -> Dict[str, int]:
        """Queue occupancy: pending / active / done / total."""
        campaign = self.campaign(refresh=True) or {}

        def _count(directory: Path) -> int:
            try:
                return sum(1 for p in directory.iterdir()
                           if p.name.endswith(".json"))
            except OSError:
                return 0

        return {
            "pending": _count(self.layout.pending_dir),
            "active": _count(self.layout.active_dir),
            "done": _count(self.layout.done_dir),
            "total": int(campaign.get("total", 0)),
        }

    def finished(self) -> bool:
        """Every published cell has a commit marker."""
        campaign = self.campaign(refresh=True)
        if campaign is None:
            return False
        return len(self.done_tokens()) >= int(campaign.get("total", 0))
