"""Shared-store layout and primitives for distributed campaigns.

Everything the coordinator and the workers agree on lives in one
directory tree (local disk for same-host fleets, NFS or another shared
filesystem for multi-host ones)::

    <store>/
      queue/
        campaign.json          # what is being run: fingerprint, total
        pending/<key>.json     # unclaimed cell specs
        active/<key>@<token>@<worker>.json   # leased cells
        outcomes/<key>@<token>.json          # finished-cell payloads
        done/<key>@<token>.json              # commit markers (fencing)
      cache/                   # the shared ResultCache artifact store
      heartbeats/<worker>.json # per-worker liveness beacons
      journals/<worker>.jsonl  # per-worker checkpoint journals
      manifests/<worker>.json  # per-worker run manifests
      journal.jsonl            # deterministic merge of all journals
      manifest.json            # deterministic merge of all manifests

The only filesystem operations the protocol relies on are atomic
same-directory ``os.rename`` and atomic-visibility writes (temp file +
rename), which hold on every POSIX filesystem and on NFSv3+.  Nothing
here needs locks, fcntl, or a coordination service.
"""

from __future__ import annotations

import json
import os
import re
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Separates key / fencing token / worker id inside lease and marker
#: file names.  Never appears in sha256 hex keys or sanitized ids.
SEP = "@"

#: Characters allowed in a worker id (everything else is mapped to "-").
_ID_SAFE = re.compile(r"[^A-Za-z0-9_.-]")


def worker_id(label: Optional[str] = None) -> str:
    """A store-safe worker identity: ``<host>-<pid>-<nonce>``.

    ``label`` overrides the generated id (sanitized); ids only have to
    be unique per fleet, they never influence results.
    """
    if label:
        return _ID_SAFE.sub("-", label)
    return _ID_SAFE.sub("-", (
        f"{socket.gethostname()}-{os.getpid()}-{os.urandom(3).hex()}"
    ))


def atomic_write_json(path: Path, payload: Any) -> None:
    """Publish a JSON file so readers only ever see complete content."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f".{path.name}.tmp.{os.getpid()}-{os.urandom(4).hex()}"
    )
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def read_json(path: Path) -> Optional[Dict[str, Any]]:
    """The parsed file, or ``None`` if missing/torn (reader retries)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


@dataclass(frozen=True)
class StoreLayout:
    """Resolved paths of one shared store."""

    root: Path

    @property
    def queue_dir(self) -> Path:
        return self.root / "queue"

    @property
    def campaign_file(self) -> Path:
        return self.queue_dir / "campaign.json"

    @property
    def pending_dir(self) -> Path:
        return self.queue_dir / "pending"

    @property
    def active_dir(self) -> Path:
        return self.queue_dir / "active"

    @property
    def outcomes_dir(self) -> Path:
        return self.queue_dir / "outcomes"

    @property
    def done_dir(self) -> Path:
        return self.queue_dir / "done"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def heartbeats_dir(self) -> Path:
        return self.root / "heartbeats"

    @property
    def journals_dir(self) -> Path:
        return self.root / "journals"

    @property
    def manifests_dir(self) -> Path:
        return self.root / "manifests"

    @property
    def merged_journal(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def merged_manifest(self) -> Path:
        return self.root / "manifest.json"

    def create(self) -> "StoreLayout":
        for directory in (self.pending_dir, self.active_dir,
                          self.outcomes_dir, self.done_dir, self.cache_dir,
                          self.heartbeats_dir, self.journals_dir,
                          self.manifests_dir):
            directory.mkdir(parents=True, exist_ok=True)
        return self


def layout(root: Union[str, Path]) -> StoreLayout:
    """The :class:`StoreLayout` rooted at ``root``."""
    return StoreLayout(Path(root))
