"""The distributed worker agent: claim, execute, commit, repeat.

A worker is one process (``repro worker --store DIR`` from the CLI, or
:class:`WorkerAgent` embedded) that joins a shared store, then loops:
claim a cell from the queue (stealing stale leases when the pending
directory is dry), execute it with the full PR 4 retry taxonomy —
transient failures retried locally with seeded-jitter backoff so a
fleet never retries in lockstep — and commit the outcome through the
fencing protocol.  Every commit is also checkpointed to the worker's
own journal and manifest, which the coordinator later merges.

Parallelism across a host is "run more workers": each agent is serial
inside, which keeps the failure unit (one process == one lease == one
cell) aligned with what SIGKILL, OOM, and partitions actually take out.

Shutdown paths:

- **queue drained** — every published cell has a commit marker; exit 0.
- **SIGINT/SIGTERM** — the CLI turns these into
  :class:`~repro.core.errors.CampaignInterrupted`; the agent releases
  its current lease back to ``pending/`` (no waiting out a staleness
  deadline), flushes journal and manifest, withdraws its heartbeat, and
  reports itself drained.
- **SIGKILL / power loss** — nothing runs, and nothing needs to: the
  heartbeat goes stale and survivors steal the lease.  That path is the
  chaos suite's favorite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.cache import ResultCache, code_fingerprint
from repro.core.dist import heartbeat as hb
from repro.core.dist.queue import Lease, QueueError, WorkQueue
from repro.core.dist.store import StoreLayout, layout as make_layout, worker_id
from repro.core.errors import (
    CampaignInterrupted,
    Category,
    RetryPolicy,
    classify,
)
from repro.core.journal import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_FENCED,
    STATUS_OK,
    STATUS_QUARANTINED,
    CellOutcome,
    RunJournal,
    RunManifest,
)
from repro.core.parallel import CellTask, _sim_time_of
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Default fraction of backoff jitter for fleet retries — high enough to
#: decorrelate a fleet, too small to distort the schedule.
DEFAULT_JITTER = 0.25


@dataclass
class WorkerStats:
    """What one :meth:`WorkerAgent.run` actually did."""

    claimed: int = 0
    stolen: int = 0
    executed: int = 0
    cache_hits: int = 0
    committed: int = 0
    fenced: int = 0
    released: int = 0
    retries: int = 0
    failed: int = 0
    quarantined: int = 0
    idle_polls: int = 0
    elapsed_s: float = 0.0
    interrupted: bool = False

    def summary_line(self) -> str:
        parts = [f"{self.committed} committed"]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.stolen:
            parts.append(f"{self.stolen} stolen")
        if self.fenced:
            parts.append(f"{self.fenced} fenced")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.released:
            parts.append(f"{self.released} released")
        return ", ".join(parts) + f" in {self.elapsed_s:.1f} s"


@dataclass
class _CellRun:
    """One lease's execution record, pre-commit."""

    status: str
    payload: Any = None
    error: Optional[Dict[str, Any]] = None
    attempts: int = 0
    retries: int = 0
    duration_s: float = 0.0
    backoff_s: List[float] = field(default_factory=list)
    sim_time_s: float = 0.0
    metrics: Optional[Dict[str, Any]] = None


class WorkerAgent:
    """One pull-based execution agent against a shared store.

    Args:
        store: The shared store directory (same value the coordinator
            got via ``--store``).
        worker: Explicit worker id (default: host-pid-nonce).
        poll_s: Sleep between claim attempts when nothing is claimable.
        heartbeat_interval_s: Seconds between liveness beacons.
        lease_timeout_s: Owner-silence span after which a lease is
            stealable (default: 3x the heartbeat interval).
        cell_timeout_s: Self-watchdog — a cell running past this stops
            the agent's own heartbeat, inviting takeover and fencing.
        retries: Local transient-retry budget per cell.
        jitter: Backoff jitter fraction (see
            :class:`~repro.core.errors.RetryPolicy`).
        join_timeout_s: How long to wait for a campaign to be published
            before giving up (workers may legally start first).
        idle_exit_s: Exit after this much continuous idleness even if
            the campaign has not finished (opportunistic fleets).
        max_cells: Commit at most this many cells, then exit (chaos
            tests and bounded scavengers).
    """

    def __init__(
        self,
        store: Union[str, Path, StoreLayout],
        worker: Optional[str] = None,
        *,
        poll_s: float = 0.25,
        heartbeat_interval_s: float = hb.DEFAULT_INTERVAL_S,
        lease_timeout_s: Optional[float] = None,
        cell_timeout_s: Optional[float] = None,
        retries: int = 1,
        jitter: float = DEFAULT_JITTER,
        seed: int = 0,
        join_timeout_s: float = 60.0,
        idle_exit_s: Optional[float] = None,
        max_cells: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        self.layout = (store if isinstance(store, StoreLayout)
                       else make_layout(store))
        self.worker = worker_id(worker)
        self.poll_s = poll_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.lease_timeout_s = (
            lease_timeout_s if lease_timeout_s is not None
            else heartbeat_interval_s * hb.STALE_FACTOR
        )
        self.cell_timeout_s = cell_timeout_s
        self.policy = RetryPolicy(max_retries=retries, jitter=jitter,
                                  seed=seed)
        self.join_timeout_s = join_timeout_s
        self.idle_exit_s = idle_exit_s
        self.max_cells = max_cells
        self.progress = progress
        self._sleep = sleep
        self._monotonic = monotonic
        self.queue = WorkQueue(self.layout, worker=self.worker)
        self.stats = WorkerStats()
        self.manifest = RunManifest()
        self._stop = False

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the loop to drain after the current cell (signal-safe)."""
        self._stop = True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> WorkerStats:
        """Work the queue until it finishes (or stop/idle-exit/max)."""
        started = self._monotonic()
        self.stats = WorkerStats()
        self.manifest = RunManifest()
        self.layout.create()
        self._join()
        journal = RunJournal(self.layout.journals_dir
                             / f"{self.worker}.jsonl")
        journal.reset()
        cache = ResultCache(self.layout.cache_dir)
        beacon = hb.HeartbeatWriter(
            self.layout, self.worker,
            interval_s=self.heartbeat_interval_s,
            busy_timeout_s=self.cell_timeout_s,
        )
        lease: Optional[Lease] = None
        idle_since: Optional[float] = None
        try:
            with beacon, obs_trace.span("worker.run", cat="dist",
                                        worker=self.worker):
                while not self._stop:
                    if self.queue.finished():
                        break
                    if (self.max_cells is not None
                            and self.stats.committed >= self.max_cells):
                        break
                    lease = self.queue.claim(
                        stale_after_s=self.lease_timeout_s
                    )
                    if lease is None:
                        now = self._monotonic()
                        idle_since = idle_since if idle_since is not None \
                            else now
                        if (self.idle_exit_s is not None
                                and now - idle_since >= self.idle_exit_s):
                            break
                        self.stats.idle_polls += 1
                        self._sleep(self.poll_s)
                        continue
                    idle_since = None
                    self.stats.claimed += 1
                    if lease.token > 1:
                        self.stats.stolen += 1
                        self._tick(f"stole {lease.spec.name} "
                                   f"(token {lease.token})")
                    self._work_lease(lease, cache, journal, beacon)
                    lease = None
        except CampaignInterrupted:
            self.stats.interrupted = True
            if lease is not None and self.queue.release(lease):
                self.stats.released += 1
        finally:
            journal.close()
            self._write_manifest()
            self.stats.elapsed_s = self._monotonic() - started
        return self.stats

    def _join(self) -> None:
        """Wait for a campaign to appear, then validate compatibility."""
        deadline = self._monotonic() + self.join_timeout_s
        fingerprint = code_fingerprint()
        while True:
            try:
                self.queue.join(fingerprint)
                return
            except QueueError as exc:
                if ("no campaign published" not in str(exc)
                        or self._monotonic() >= deadline or self._stop):
                    raise
                self._sleep(self.poll_s)

    # ------------------------------------------------------------------
    # one lease, end to end
    # ------------------------------------------------------------------

    def _work_lease(self, lease: Lease, cache: ResultCache,
                    journal: RunJournal, beacon: hb.HeartbeatWriter) -> None:
        beacon.cell_started()
        try:
            payload = cache.get(lease.key)
            if payload is not None:
                run = _CellRun(status=STATUS_CACHED, payload=payload)
                self.stats.cache_hits += 1
            else:
                run = self._execute(lease.spec.task, lease.key)
        finally:
            beacon.cell_finished()
        outcome = {
            "name": lease.spec.name,
            "status": run.status,
            "attempts": run.attempts,
            "retries": run.retries,
            "duration_s": round(run.duration_s, 6),
            "sim_time_s": round(run.sim_time_s, 6),
        }
        if run.status in (STATUS_OK, STATUS_CACHED):
            outcome["payload"] = run.payload
        if run.error is not None:
            outcome["error"] = run.error
        if run.metrics is not None:
            outcome["metrics"] = run.metrics
        committed = self.queue.commit(lease, outcome)
        status = run.status if committed else STATUS_FENCED
        if committed:
            self.stats.committed += 1
            if run.status == STATUS_OK:
                cache.put(lease.key, run.payload)
            if run.status in (STATUS_OK, STATUS_CACHED):
                journal.append(
                    key=lease.key, name=lease.spec.name, status=run.status,
                    payload=run.payload, attempts=run.attempts,
                    duration_s=run.duration_s,
                )
            else:
                journal.append(
                    key=lease.key, name=lease.spec.name, status=run.status,
                    attempts=run.attempts, duration_s=run.duration_s,
                    error=run.error,
                )
            self._tick(f"{lease.spec.name} [{run.status}]")
        else:
            self.stats.fenced += 1
            self._tick(f"{lease.spec.name} [fenced: lease taken over]")
        self.manifest.record(CellOutcome(
            name=lease.spec.name, key=lease.key, status=status,
            attempts=run.attempts, retries=run.retries,
            duration_s=run.duration_s, backoff_s=run.backoff_s,
            error=run.error, sim_time_s=run.sim_time_s, metrics=run.metrics,
            worker=self.worker,
        ))
        self._write_manifest()

    def _execute(self, task: CellTask, key: str) -> _CellRun:
        """Run one cell with the local retry taxonomy."""
        run = _CellRun(status=STATUS_OK)
        started = self._monotonic()
        while True:
            run.attempts += 1
            try:
                before = obs_metrics.snapshot()
                with obs_trace.span(f"cell.{task.name}",
                                    cat="cell") as cell_span:
                    result = task.execute()
                    snap = obs_metrics.delta(before, obs_metrics.snapshot())
                    cell_span.set(sim_dur_s=_sim_time_of(snap))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - classified below
                category = classify(exc)
                if (category is Category.TRANSIENT
                        and run.retries < self.policy.max_retries):
                    run.retries += 1
                    self.stats.retries += 1
                    # Salting with worker id decorrelates the fleet: a
                    # shared-store blip no longer synchronizes retries.
                    delay = self.policy.delay_for(
                        run.retries, salt=f"{key}:{self.worker}"
                    )
                    run.backoff_s.append(delay)
                    self._tick(f"{task.name} [retry {run.retries} "
                               f"in {delay:.2f}s]")
                    self._sleep(delay)
                    continue
                run.error = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "category": category.value,
                }
                if category is Category.POISON:
                    run.status = STATUS_QUARANTINED
                    self.stats.quarantined += 1
                else:
                    run.status = STATUS_FAILED
                    self.stats.failed += 1
                run.duration_s = self._monotonic() - started
                return run
            else:
                run.metrics = snap
                run.sim_time_s = _sim_time_of(snap)
                run.payload = task.pack(result) if task.pack else result
                run.duration_s = self._monotonic() - started
                self.stats.executed += 1
                return run

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _write_manifest(self) -> None:
        try:
            self.manifest.write(self.layout.manifests_dir
                                / f"{self.worker}.json")
        except OSError:
            pass  # a partition: done/ markers still hold the truth

    def _tick(self, label: str) -> None:
        if self.progress is not None:
            self.progress(f"[{self.worker}] {label}")
