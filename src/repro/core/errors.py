"""Error taxonomy and retry policy for crash-safe sweep execution.

A 10k-cell campaign meets three very different kinds of failure, and
treating them alike either wastes hours or throws a whole run away:

- **transient** — the worker died (SIGKILL, OOM), the cell hung past its
  deadline, or the cell itself raised :class:`TransientError`.  Worth
  retrying, with exponential backoff so a struggling machine gets air.
- **deterministic** — the cell raised an ordinary exception.  Retrying a
  pure function of its arguments reproduces the same traceback, so these
  fail fast: no retry, surfaced immediately (or recorded, in
  record-and-continue mode).
- **poison** — the cell *declared itself unrunnable* by raising
  :class:`PoisonCell` (bad config, unsatisfiable grid point).  Quarantined
  on first failure: never retried, never fatal, always listed in the run
  manifest so the operator can audit what was skipped.

:func:`classify` maps any raised exception to one of these categories;
:func:`classify_names` does the same from an exception's MRO class names,
which is how errors that crossed a process boundary (where the original
object may not unpickle) are categorized.
"""

from __future__ import annotations

import enum
import hashlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional


class CellError(Exception):
    """Base of the taxonomy; cells may raise subclasses to self-classify."""


class TransientError(CellError):
    """A failure expected to clear on retry (flaky I/O, resource blips)."""


class DeterministicError(CellError):
    """A failure that will reproduce on retry; fail fast, never retry."""


class PoisonCell(CellError):
    """The cell declares its own configuration unrunnable.

    Quarantined on first failure: the sweep continues, the manifest
    records the reason, and the cell is never retried within the run.
    """


class CellTimeoutError(TransientError):
    """The watchdog killed a cell that ran past its deadline."""

    def __init__(self, name: str, timeout_s: float, attempts: int) -> None:
        super().__init__(
            f"cell {name!r} exceeded its {timeout_s:.1f} s deadline "
            f"(attempt {attempts})"
        )
        self.cell_name = name
        self.timeout_s = timeout_s
        self.attempts = attempts


class WorkerCrashError(TransientError):
    """A worker process died (SIGKILL, segfault, OOM) without an answer."""

    def __init__(self, name: str, exitcode: Optional[int]) -> None:
        super().__init__(
            f"worker running cell {name!r} died with exitcode {exitcode}"
        )
        self.cell_name = name
        self.exitcode = exitcode


class CampaignInterrupted(KeyboardInterrupt):
    """SIGINT/SIGTERM during a sweep, after in-flight workers drained.

    Subclasses ``KeyboardInterrupt`` so code that already handles Ctrl-C
    keeps working; the CLI catches it to print a ``--resume`` hint
    instead of a raw traceback.
    """

    def __init__(self, reason: str = "interrupted") -> None:
        super().__init__(reason)
        self.reason = reason


class Category(enum.Enum):
    """What the retry policy should do with a failure."""

    TRANSIENT = "transient"
    DETERMINISTIC = "deterministic"
    POISON = "poison"


#: Exception class *names* treated as transient when an error arrives
#: from another process as a bag of MRO names rather than an object.
_TRANSIENT_NAMES = frozenset({
    "TransientError",
    "CellTimeoutError",
    "WorkerCrashError",
    "BrokenProcessPool",
    "ConnectionError",
    "TimeoutError",
})


def classify(exc: BaseException) -> Category:
    """The taxonomy category of a live exception object."""
    if isinstance(exc, PoisonCell):
        return Category.POISON
    if isinstance(exc, (TransientError, BrokenProcessPool,
                        ConnectionError, TimeoutError)):
        return Category.TRANSIENT
    return Category.DETERMINISTIC


def classify_names(mro_names: Iterable[str]) -> Category:
    """The category from an exception's MRO class names (cross-process)."""
    names = set(mro_names)
    if "PoisonCell" in names:
        return Category.POISON
    if names & _TRANSIENT_NAMES:
        return Category.TRANSIENT
    return Category.DETERMINISTIC


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff for transient failures.

    ``delay_for(1)`` is the wait before the first retry; each further
    retry multiplies it by ``backoff_factor``, capped at
    ``backoff_max_s``.  Deterministic and poison failures never consult
    the policy.

    ``jitter`` spreads each delay by up to that fraction either way,
    derived from sha256 of ``(seed, salt, retry)`` — so a fleet of
    workers that all hit the same transient failure (a shared store
    blip, say) does not retry in lockstep, while the schedule is still a
    pure function of its inputs: same seed, same salt, same delays,
    bit-identical runs.  ``jitter=0`` (the default) reproduces the
    un-jittered schedule exactly.
    """

    max_retries: int = 1
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay_for(self, retry: int, salt: str = "") -> float:
        """Seconds to wait before retry number ``retry`` (1-based).

        ``salt`` decorrelates otherwise-identical schedules: the sweep
        runner salts with the cell key, distributed workers add their
        worker id, so no two retry streams share a jitter sequence.
        """
        if retry < 1:
            return 0.0
        delay = self.backoff_base_s * (self.backoff_factor ** (retry - 1))
        if self.jitter:
            digest = hashlib.sha256(
                f"{self.seed}:{salt}:{retry}".encode()
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64  # [0, 1)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return min(delay, self.backoff_max_s)


@dataclass(frozen=True)
class CellFailure:
    """The result slot of a cell that did not produce a value.

    Returned in a runner's results list (instead of raising) for
    quarantined poison cells always, and for failed cells when the
    runner is in record-and-continue mode.  Consumers filter these with
    ``isinstance(r, CellFailure)``.
    """

    name: str
    key: str
    category: str
    error_type: str
    message: str
    attempts: int
    traceback: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form for the journal and the run manifest."""
        return {
            "name": self.name,
            "key": self.key,
            "category": self.category,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass
class RemoteErrorInfo:
    """What a worker reports about an exception it could not return.

    Carries enough to classify (MRO names), to report (type, message,
    formatted traceback), and — when the exception pickled cleanly — the
    original object for exact re-raising.
    """

    error_type: str
    message: str
    mro_names: list = field(default_factory=list)
    traceback: str = ""
    pickled: Optional[bytes] = None

    def category(self) -> Category:
        return classify_names(self.mro_names)

    def rebuild(self) -> BaseException:
        """The original exception when possible, else a faithful stand-in."""
        if self.pickled is not None:
            import pickle

            try:
                exc = pickle.loads(self.pickled)
                if isinstance(exc, BaseException):
                    return exc
            except Exception:  # noqa: BLE001 - fall through to stand-in
                pass
        return RuntimeError(
            f"{self.error_type}: {self.message}\n"
            f"(remote traceback)\n{self.traceback}"
        )
