"""Crash-safe checkpoint journal and per-run manifest for sweeps.

A multi-hour campaign must survive SIGINT, a SIGKILLed worker, and a
machine crash without losing the cells it already finished.  Two
artifacts make that true:

- :class:`RunJournal` — an append-only JSONL file.  Every completed cell
  is appended (with its packed payload) and fsynced before the sweep
  moves on, so after *any* interruption the journal holds exactly the
  finished work.  ``--resume`` replays those payloads through the cell's
  ``unpack`` codec — byte-identical to an undisturbed run, because the
  payloads are the same ones the result cache would have stored — and
  executes only the remainder.  A torn final line (crash mid-append) is
  detected and skipped, costing at most one cell.
- :class:`RunManifest` — the auditable record of what one run actually
  did: per-cell outcome, attempts, durations, retry/backoff history,
  inline fallbacks, and quarantine reasons.  Written atomically as JSON
  (temp file + ``os.replace``) so a crash can never leave a half
  manifest.

Journal entries are keyed by the cell's content-addressed cache key
(config x seed x calibration x code fingerprint), so a journal can never
replay a stale result into a changed sweep: edit anything that matters
and the keys simply stop matching.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

#: Bump to orphan every existing journal wholesale.
JOURNAL_FORMAT_VERSION = 1

#: Cell outcome states recorded in journals and manifests.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_RESUMED = "resumed"
STATUS_FAILED = "failed"
STATUS_QUARANTINED = "quarantined"
#: A distributed worker finished a cell but lost the fencing race — its
#: lease had been taken over, so the commit was rejected (never counted
#: as the cell's result; kept for audit because it proves the
#: exactly-once machinery fired).
STATUS_FENCED = "fenced"

#: States that mean "this cell has a replayable payload".
_COMPLETED = (STATUS_OK, STATUS_CACHED)


def run_fingerprint(keys: Iterable[str]) -> str:
    """A stable identity for one sweep: sha256 over its sorted cell keys.

    Used to derive a default journal path, so ``--resume`` finds the
    right journal without the operator naming it.
    """
    digest = hashlib.sha256()
    for key in sorted(keys):
        digest.update(key.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class RunJournal:
    """Append-only JSONL checkpoint of completed/failed sweep cells."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._seen: Dict[str, Dict[str, Any]] = {}
        self._handle = None
        self._fresh = False
        self.torn_lines = 0

    # ------------------------------------------------------------------
    # reading (resume)
    # ------------------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Entries by cell key; undecodable (torn) lines are skipped.

        The last decodable entry per key wins, so a cell that failed and
        later succeeded resumes as a success.
        """
        self._seen = {}
        self.torn_lines = 0
        if not self.path.exists():
            return {}
        with open(self.path, "rb") as handle:
            for raw in handle:
                try:
                    entry = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    self.torn_lines += 1
                    continue
                if not isinstance(entry, dict):
                    self.torn_lines += 1
                    continue
                if entry.get("journal") is not None:
                    if entry.get("version") != JOURNAL_FORMAT_VERSION:
                        # Incompatible journal: pretend it is empty.
                        self._seen = {}
                        return {}
                    continue
                key = entry.get("key")
                if isinstance(key, str):
                    self._seen[key] = entry
        return dict(self._seen)

    def completed_payloads(self) -> Dict[str, Any]:
        """key -> packed payload for every cell finished in a prior run."""
        return {
            key: entry.get("payload")
            for key, entry in self._seen.items()
            if entry.get("status") in _COMPLETED
        }

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def ensure_fresh(self) -> None:
        """Truncate once per journal instance (not once per sweep).

        A full report threads one journal through many sweeps; only the
        first may wipe a stale file, or each sweep would destroy the
        previous one's checkpoints.
        """
        if not self._fresh:
            self.reset()

    def reset(self) -> None:
        """Start a fresh journal (truncates any existing file)."""
        self.close()
        self._fresh = True
        self._seen = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as handle:
            handle.write(json.dumps({
                "journal": "repro-run",
                "version": JOURNAL_FORMAT_VERSION,
            }) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, key: str, name: str, status: str,
               payload: Any = None, attempts: int = 1,
               duration_s: float = 0.0,
               error: Optional[Dict[str, Any]] = None) -> None:
        """Record one cell outcome; flushed and fsynced before returning.

        Recording the same key twice is a no-op unless the status
        changed (a resume re-running a previously failed cell).
        """
        previous = self._seen.get(key)
        if previous is not None and previous.get("status") == status:
            return
        entry: Dict[str, Any] = {
            "key": key,
            "name": name,
            "status": status,
            "attempts": attempts,
            "duration_s": round(duration_s, 6),
        }
        if status in _COMPLETED:
            entry["payload"] = payload
        if error is not None:
            entry["error"] = error
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if not self.path.exists():
                self.reset()
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seen[key] = entry

    def flush(self) -> None:
        """Force buffered appends to disk (appends already fsync)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class CellOutcome:
    """What happened to one cell across all its attempts."""

    name: str
    key: str
    status: str
    attempts: int = 1
    retries: int = 0
    duration_s: float = 0.0
    fallback: bool = False
    timeouts: int = 0
    backoff_s: List[float] = field(default_factory=list)
    error: Optional[Dict[str, Any]] = None
    #: Simulated seconds the cell advanced its event loops (0 when the
    #: cell ran no simulator, e.g. cached/resumed replays).
    sim_time_s: float = 0.0
    #: Per-cell metrics snapshot (see :mod:`repro.obs.metrics`), None
    #: for replayed cells — they executed nothing.
    metrics: Optional[Dict[str, Any]] = None
    #: Distributed-worker id that produced this outcome ("" when the
    #: cell ran in the local runner).
    worker: str = ""

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "duration_s": round(self.duration_s, 6),
        }
        if self.fallback:
            out["fallback"] = True
        if self.timeouts:
            out["timeouts"] = self.timeouts
        if self.backoff_s:
            out["backoff_s"] = [round(b, 6) for b in self.backoff_s]
        if self.error is not None:
            out["error"] = self.error
        if self.sim_time_s:
            out["sim_time_s"] = round(self.sim_time_s, 6)
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.worker:
            out["worker"] = self.worker
        return out


@dataclass
class RunManifest:
    """The auditable record of one (or several chained) runner passes.

    One manifest instance can be threaded through every sweep of a full
    report so the operator gets a single account of the whole
    reproduction: which cells ran, which replayed, which were retried,
    which fell back inline, and which were quarantined — and why.
    """

    cells: List[CellOutcome] = field(default_factory=list)

    def record(self, outcome: CellOutcome) -> None:
        self.cells.append(outcome)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def by_status(self, status: str) -> List[CellOutcome]:
        return [c for c in self.cells if c.status == status]

    def quarantined(self) -> List[CellOutcome]:
        """Poison cells skipped this run, with their recorded reasons."""
        return self.by_status(STATUS_QUARANTINED)

    def failed(self) -> List[CellOutcome]:
        return self.by_status(STATUS_FAILED)

    def retried(self) -> List[CellOutcome]:
        return [c for c in self.cells if c.retries > 0]

    def fallbacks(self) -> List[CellOutcome]:
        """Cells that completed in-process after pool retries ran out."""
        return [c for c in self.cells if c.fallback]

    def total_sim_time_s(self) -> float:
        """Simulated seconds actually executed across every cell."""
        return sum(c.sim_time_s for c in self.cells)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts

    def summary_line(self) -> str:
        """One human line for CLI output."""
        counts = self.counts()
        parts = [f"{len(self.cells)} cells"]
        for status in (STATUS_OK, STATUS_CACHED, STATUS_RESUMED,
                       STATUS_FAILED, STATUS_QUARANTINED, STATUS_FENCED):
            if counts.get(status):
                parts.append(f"{counts[status]} {status}")
        retried = len(self.retried())
        if retried:
            parts.append(f"{retried} retried")
        fallbacks = len(self.fallbacks())
        if fallbacks:
            parts.append(f"{fallbacks} inline-fallback")
        return ", ".join(parts)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": JOURNAL_FORMAT_VERSION,
            "counts": self.counts(),
            "cells": [c.as_dict() for c in self.cells],
        }

    def write(self, path: Union[str, Path]) -> None:
        """Atomic JSON dump (temp file in the same directory + replace)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w") as handle:
                json.dump(self.as_dict(), handle, indent=2, sort_keys=False)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        """Load a previously written manifest."""
        data = json.loads(Path(path).read_text())
        manifest = cls()
        for entry in data.get("cells", []):
            manifest.record(CellOutcome(
                name=entry.get("name", ""),
                key=entry.get("key", ""),
                status=entry.get("status", STATUS_OK),
                attempts=entry.get("attempts", 1),
                retries=entry.get("retries", 0),
                duration_s=entry.get("duration_s", 0.0),
                fallback=entry.get("fallback", False),
                timeouts=entry.get("timeouts", 0),
                backoff_s=entry.get("backoff_s", []),
                error=entry.get("error"),
                sim_time_s=entry.get("sim_time_s", 0.0),
                metrics=entry.get("metrics"),
                worker=entry.get("worker", ""),
            ))
        return manifest
