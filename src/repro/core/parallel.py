"""Process-pool execution engine for campaign and experiment sweeps.

Sec. 5 of the paper calls for "automated and large-scale" measurement
campaigns; a grid of independent, seeded cells is embarrassingly parallel,
so every sweep in the package funnels through one runner:

- a :class:`CellTask` names a module-level function, its keyword
  arguments (seed included), and optional pack/unpack codecs for the
  on-disk cache;
- :class:`TaskRunner` executes a task list serially (``jobs <= 1``) or on
  a ``ProcessPoolExecutor`` (``jobs > 1``), always returning results in
  task order;
- a crashed worker (``BrokenProcessPool``) only costs the tasks that were
  in flight: the pool is rebuilt and each unfinished task retried up to
  :attr:`TaskRunner.retries` times, with a final in-process fallback so a
  hostile environment degrades to the serial path instead of failing;
- with a :class:`~repro.core.cache.ResultCache` attached, cells whose key
  (config x seed x calibration x code fingerprint) is already on disk are
  replayed without recomputation.

Determinism is the contract that makes all of this safe: every cell
function is a pure function of its arguments, so serial, parallel and
cache-replayed sweeps produce identical results — the equivalence test
suite asserts byte-identical CSV exports across all three paths.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.cache import ResultCache, task_key


@dataclass(frozen=True)
class CellTask:
    """One independent, seeded unit of sweep work.

    Attributes:
        name: Human-readable label (progress lines, error messages).
        fn: A **module-level** callable — it crosses process boundaries by
            pickling, so lambdas and bound methods are rejected.
        kwargs: Keyword arguments for ``fn``; must be picklable, and
            canonicalizable for the cache key (see
            :func:`repro.core.cache.canonical`).
        pack: Result -> JSON-serializable payload (cache write).
        unpack: Payload -> result (cache replay).  ``pack``/``unpack``
            must round-trip exactly for cache hits to be equivalent.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    pack: Optional[Callable[[Any], Any]] = None
    unpack: Optional[Callable[[Any], Any]] = None

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError("CellTask.fn must be callable")
        qualname = getattr(self.fn, "__qualname__", "")
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise ValueError(
                f"CellTask.fn must be a module-level function, got {qualname!r}"
            )

    def cache_key(self) -> str:
        """The content-addressed identity of this cell."""
        return task_key(self.fn, self.kwargs)

    def execute(self) -> Any:
        """Run the cell in the current process."""
        return self.fn(**self.kwargs)


def _invoke(fn: Callable[..., Any], kwargs: Mapping[str, Any]) -> Any:
    """Worker-side trampoline (module-level, so it pickles)."""
    return fn(**kwargs)


@dataclass
class RunStats:
    """What one :meth:`TaskRunner.run` actually did."""

    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    retries: int = 0
    elapsed_s: float = 0.0

    def hit_rate(self) -> float:
        """Fraction of tasks replayed from cache."""
        return self.cache_hits / self.tasks if self.tasks else 0.0


class TaskRunner:
    """Executes :class:`CellTask` lists serially or on a process pool."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        retries: int = 1,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0/1 mean serial)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.retries = retries
        self.progress = progress
        self.stats = RunStats()

    def run(self, tasks: Sequence[CellTask]) -> List[Any]:
        """Execute every task; results come back in task order."""
        started = time.monotonic()
        self.stats = RunStats(tasks=len(tasks))
        results: List[Any] = [None] * len(tasks)
        pending: List[int] = []
        for index, task in enumerate(tasks):
            payload = self.cache.get(task.cache_key()) if self.cache else None
            if payload is not None:
                results[index] = (
                    task.unpack(payload) if task.unpack else payload
                )
                self.stats.cache_hits += 1
                self._tick(f"{task.name} [cached]")
            else:
                pending.append(index)
        if pending:
            if self.jobs > 1:
                self._run_pool(tasks, pending, results)
            else:
                for index in pending:
                    results[index] = self._run_inline(tasks[index])
        self.stats.elapsed_s = time.monotonic() - started
        return results

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------

    def _run_inline(self, task: CellTask) -> Any:
        result = task.execute()
        self._store(task, result)
        self.stats.executed += 1
        self._tick(task.name)
        return result

    def _run_pool(self, tasks: Sequence[CellTask], pending: List[int],
                  results: List[Any]) -> None:
        """Dispatch to a process pool, isolating worker crashes.

        A ``BrokenProcessPool`` poisons every in-flight future, so the
        pool is rebuilt and the unfinished tasks resubmitted; each task
        carries its own retry budget, and a task that exhausts it falls
        back to in-process execution (which surfaces the real exception
        if the task itself — not the worker — is at fault).
        """
        budgets: Dict[int, int] = {i: self.retries for i in pending}
        remaining = list(pending)
        while remaining:
            try:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    futures = {
                        pool.submit(_invoke, tasks[i].fn, dict(tasks[i].kwargs)): i
                        for i in remaining
                    }
                    not_done = set(futures)
                    while not_done:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            index = futures[future]
                            task = tasks[index]
                            results[index] = future.result()
                            self._store(task, results[index])
                            self.stats.executed += 1
                            remaining.remove(index)
                            self._tick(task.name)
                return
            except BrokenProcessPool:
                retryable = []
                for index in remaining:
                    if budgets[index] > 0:
                        budgets[index] -= 1
                        self.stats.retries += 1
                        retryable.append(index)
                    else:
                        results[index] = self._run_inline(tasks[index])
                remaining = retryable

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _store(self, task: CellTask, result: Any) -> None:
        if self.cache is not None:
            payload = task.pack(result) if task.pack else result
            self.cache.put(task.cache_key(), payload)

    def _tick(self, label: str) -> None:
        if self.progress is not None:
            self.progress(label)


def run_tasks(
    tasks: Sequence[CellTask],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`TaskRunner`."""
    return TaskRunner(jobs=jobs, cache=cache, retries=retries,
                      progress=progress).run(tasks)
