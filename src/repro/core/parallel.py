"""Crash-safe process-pool execution engine for campaign sweeps.

Sec. 5 of the paper calls for "automated and large-scale" measurement
campaigns; a grid of independent, seeded cells is embarrassingly parallel,
so every sweep in the package funnels through one runner — and a sweep
that takes hours must *finish*, not merely start, so the runner is built
to survive real execution failures:

- a :class:`CellTask` names a module-level function, its keyword
  arguments (seed included), and optional pack/unpack codecs for the
  on-disk cache and the checkpoint journal;
- :class:`TaskRunner` executes a task list serially (``jobs <= 1``) or on
  a window of worker processes (``jobs > 1``), always returning results
  in task order;
- a per-cell **deadline watchdog** (``timeout``) kills a hung worker
  instead of blocking the sweep forever;
- failures are classified by the taxonomy in :mod:`repro.core.errors`:
  transient ones (worker SIGKILL/OOM, timeouts,
  :class:`~repro.core.errors.TransientError`) are retried with
  exponential backoff, deterministic ones fail fast, and
  :class:`~repro.core.errors.PoisonCell` configurations are quarantined
  on first failure so one bad cell cannot sink the run;
- a worker that keeps dying gets one final **in-process fallback** —
  recorded in the run manifest and warned about, never silent;
- with a :class:`~repro.core.cache.ResultCache` attached, cells whose key
  (config x seed x calibration x code fingerprint) is already on disk are
  replayed without recomputation;
- with a :class:`~repro.core.journal.RunJournal` attached, every
  completed cell is checkpointed (fsynced JSONL) and ``resume=True``
  replays finished cells after SIGINT, SIGKILL, or a machine crash —
  byte-identical to an undisturbed run;
- every executed cell is wrapped in an observability span
  (:mod:`repro.obs.trace` — workers append to the same trace file as
  the parent) and its :mod:`repro.obs.metrics` delta rides back with
  the result, so the run manifest records per-cell wall time,
  *simulated* time, and a metrics snapshot, and the parent registry
  aggregates sweep-wide totals.  The parent also computes the code
  fingerprint once and ships it to each worker, which would otherwise
  re-hash every source file on its first cell.

Determinism is the contract that makes all of this safe: every cell
function is a pure function of its arguments, so serial, parallel,
cache-replayed and journal-resumed sweeps produce identical results — the
equivalence and chaos test suites assert byte-identical CSV exports
across all of these paths.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import pickle
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.core.cache import (
    ResultCache,
    code_fingerprint,
    set_code_fingerprint,
    task_key,
)
from repro.core.errors import (
    Category,
    CellFailure,
    CellTimeoutError,
    RemoteErrorInfo,
    RetryPolicy,
    WorkerCrashError,
    classify,
)
from repro.core.journal import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RESUMED,
    CellOutcome,
    RunJournal,
    RunManifest,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class CellTask:
    """One independent, seeded unit of sweep work.

    Attributes:
        name: Human-readable label (progress lines, error messages).
        fn: A **module-level** callable — it crosses process boundaries by
            pickling, so lambdas and bound methods are rejected.
        kwargs: Keyword arguments for ``fn``; must be picklable, and
            canonicalizable for the cache key (see
            :func:`repro.core.cache.canonical`).
        pack: Result -> JSON-serializable payload (cache/journal write).
        unpack: Payload -> result (cache/journal replay).
            ``pack``/``unpack`` must round-trip exactly for replays to be
            equivalent.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    pack: Optional[Callable[[Any], Any]] = None
    unpack: Optional[Callable[[Any], Any]] = None

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError("CellTask.fn must be callable")
        qualname = getattr(self.fn, "__qualname__", "")
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise ValueError(
                f"CellTask.fn must be a module-level function, got {qualname!r}"
            )

    def cache_key(self) -> str:
        """The content-addressed identity of this cell."""
        return task_key(self.fn, self.kwargs)

    def execute(self) -> Any:
        """Run the cell in the current process."""
        return self.fn(**self.kwargs)


def _invoke(fn: Callable[..., Any], kwargs: Mapping[str, Any]) -> Any:
    """In-process trampoline (kept module-level for picklability)."""
    return fn(**kwargs)


def _describe_exception(exc: BaseException) -> RemoteErrorInfo:
    """Package an exception so it survives the process boundary."""
    pickled: Optional[bytes] = None
    try:
        pickled = pickle.dumps(exc)
    except Exception:  # noqa: BLE001 - unpicklable exception objects
        pickled = None
    return RemoteErrorInfo(
        error_type=type(exc).__name__,
        message=str(exc),
        mro_names=[c.__name__ for c in type(exc).__mro__],
        traceback=traceback.format_exc(),
        pickled=pickled,
    )


def _sim_time_of(snap: Dict[str, Any]) -> float:
    """Simulated seconds recorded in one metrics snapshot/delta."""
    return float(snap.get("counters", {}).get("netsim.sim_time_s", 0.0))


def _child_main(conn: Any, fn: Callable[..., Any],
                kwargs: Dict[str, Any],
                obs_context: Optional[Dict[str, Any]] = None) -> None:
    """Worker entry point: run one cell, report exactly one outcome.

    ``obs_context`` carries the parent's observability state across the
    process boundary: the parent-computed code fingerprint (so workers
    never re-hash the source tree), the trace path (so worker spans land
    in the same JSONL file), and the cell name for the span label.
    """
    obs_context = obs_context or {}
    fingerprint = obs_context.get("code_fingerprint")
    if fingerprint:
        set_code_fingerprint(fingerprint)
    if obs_context.get("trace_path"):
        obs_trace.configure(obs_context["trace_path"])
    name = obs_context.get("name", getattr(fn, "__name__", "cell"))
    try:
        before = obs_metrics.snapshot()
        with obs_trace.span(f"cell.{name}", cat="cell") as cell_span:
            result = fn(**kwargs)
            snap = obs_metrics.delta(before, obs_metrics.snapshot())
            cell_span.set(sim_dur_s=_sim_time_of(snap))
        outcome: Dict[str, Any] = {"status": "ok", "result": result,
                                   "metrics": snap}
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        outcome = {"status": "error", "info": _describe_exception(exc)}
    finally:
        obs_trace.shutdown()
    try:
        conn.send(outcome)
    except Exception as exc:  # noqa: BLE001 - e.g. unpicklable result
        if outcome["status"] == "ok":
            try:
                conn.send({"status": "error",
                           "info": _describe_exception(exc)})
            except Exception:  # noqa: BLE001 - nothing left to report with
                pass
    finally:
        conn.close()


@dataclass
class RunStats:
    """What one :meth:`TaskRunner.run` actually did."""

    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    retries: int = 0
    elapsed_s: float = 0.0
    resumed: int = 0
    timeouts: int = 0
    fallbacks: int = 0
    quarantined: int = 0
    failed: int = 0

    def hit_rate(self) -> float:
        """Fraction of tasks replayed from cache."""
        return self.cache_hits / self.tasks if self.tasks else 0.0


@dataclass
class _CellState:
    """Mutable per-cell bookkeeping across attempts."""

    index: int
    attempts: int = 0
    retries_used: int = 0
    timeouts: int = 0
    fallback: bool = False
    backoff_s: List[float] = field(default_factory=list)
    first_started: Optional[float] = None
    key: Optional[str] = None
    sim_time_s: float = 0.0
    metrics: Optional[Dict[str, Any]] = None


@dataclass
class _Active:
    """One in-flight worker process."""

    state: _CellState
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]


class TaskRunner:
    """Executes :class:`CellTask` lists serially or on worker processes.

    Args:
        jobs: Worker processes (0/1 mean serial, in-process).
        cache: Optional content-addressed result cache.
        retries: Transient-failure retry budget per cell (shorthand for
            ``policy=RetryPolicy(max_retries=retries)``).
        progress: Per-cell progress callback.
        timeout: Per-cell deadline in seconds; a worker running past it
            is killed by the watchdog and the cell retried as transient.
            Enforced on the pool path only (``jobs > 1``).
        policy: Full retry/backoff policy (overrides ``retries``).
        journal: Checkpoint journal; every completed cell is appended and
            fsynced so an interrupted run can resume.
        resume: Replay cells the journal already holds instead of
            truncating it and starting fresh.
        manifest: Run manifest to append outcomes to (a fresh one is
            created when omitted; share one instance across several
            sweeps to get a single audit record).
        failfast: When True (default), deterministic failures and
            exhausted transients raise; when False they are recorded in
            the manifest and surface as :class:`CellFailure` result
            slots.  Poison cells are quarantined either way.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        retries: int = 1,
        progress: Optional[Callable[[str], None]] = None,
        *,
        timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        resume: bool = False,
        manifest: Optional[RunManifest] = None,
        failfast: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0/1 mean serial)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.jobs = jobs
        self.cache = cache
        self.policy = policy or RetryPolicy(max_retries=retries)
        self.retries = self.policy.max_retries
        self.progress = progress
        self.timeout = timeout
        self.journal = journal
        self.resume = resume
        self.manifest = manifest if manifest is not None else RunManifest()
        self.failfast = failfast
        self.stats = RunStats()
        self._sleep = sleep
        self._monotonic = monotonic

    # ------------------------------------------------------------------
    # top-level run
    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[CellTask]) -> List[Any]:
        """Execute every task; results come back in task order.

        Quarantined (and, with ``failfast=False``, failed) cells occupy
        their result slot with a :class:`CellFailure` marker.
        """
        started = self._monotonic()
        self.stats = RunStats(tasks=len(tasks))
        with obs_trace.span("runner.run", cat="runner", tasks=len(tasks),
                            jobs=self.jobs):
            results = self._run_traced(tasks)
        self.stats.elapsed_s = self._monotonic() - started
        return results

    def _run_traced(self, tasks: Sequence[CellTask]) -> List[Any]:
        results: List[Any] = [None] * len(tasks)
        # Keys are only needed (and their kwargs only need to be
        # canonicalizable) when something content-addressed consumes them.
        need_keys = self.cache is not None or self.journal is not None
        states = {
            i: _CellState(index=i, key=t.cache_key() if need_keys else None)
            for i, t in enumerate(tasks)
        }
        pending: List[int] = list(range(len(tasks)))

        if self.journal is not None:
            if self.resume:
                pending = self._replay_journal(tasks, states, results,
                                               pending)
            else:
                self.journal.ensure_fresh()

        pending = self._replay_cache(tasks, states, results, pending)

        if pending:
            if self.jobs > 1:
                self._run_pool(tasks, states, pending, results)
            else:
                for index in pending:
                    self._execute_inline(tasks[index], states[index], results)
        return results

    def _replay_journal(self, tasks: Sequence[CellTask],
                        states: Dict[int, _CellState], results: List[Any],
                        pending: List[int]) -> List[int]:
        """Fill result slots from a prior run's checkpoint journal."""
        self.journal.load()
        payloads = self.journal.completed_payloads()
        remaining: List[int] = []
        for index in pending:
            task, state = tasks[index], states[index]
            if state.key in payloads:
                payload = payloads[state.key]
                results[index] = (
                    task.unpack(payload) if task.unpack else payload
                )
                self.stats.resumed += 1
                self.manifest.record(CellOutcome(
                    name=task.name, key=state.key, status=STATUS_RESUMED,
                    attempts=0,
                ))
                self._tick(f"{task.name} [resumed]")
            else:
                remaining.append(index)
        return remaining

    def _replay_cache(self, tasks: Sequence[CellTask],
                      states: Dict[int, _CellState], results: List[Any],
                      pending: List[int]) -> List[int]:
        """Fill result slots from the content-addressed result cache."""
        if self.cache is None:
            return pending
        remaining: List[int] = []
        for index in pending:
            task, state = tasks[index], states[index]
            payload = self.cache.get(state.key)
            if payload is not None:
                results[index] = (
                    task.unpack(payload) if task.unpack else payload
                )
                self.stats.cache_hits += 1
                self._journal_payload(task, state, payload,
                                      status=STATUS_CACHED)
                self.manifest.record(CellOutcome(
                    name=task.name, key=state.key, status=STATUS_CACHED,
                    attempts=0,
                ))
                self._tick(f"{task.name} [cached]")
            else:
                remaining.append(index)
        return remaining

    # ------------------------------------------------------------------
    # serial path (also the pool's last-resort fallback)
    # ------------------------------------------------------------------

    def _execute_inline(self, task: CellTask, state: _CellState,
                        results: List[Any]) -> None:
        """Run one cell in-process, applying the full retry taxonomy.

        The watchdog cannot enforce deadlines here (there is no worker to
        kill), so ``timeout`` only applies on the pool path.
        """
        while True:
            if state.first_started is None:
                state.first_started = self._monotonic()
            state.attempts += 1
            try:
                before = obs_metrics.snapshot()
                with obs_trace.span(f"cell.{task.name}",
                                    cat="cell") as cell_span:
                    result = task.execute()
                    snap = obs_metrics.delta(before, obs_metrics.snapshot())
                    cell_span.set(sim_dur_s=_sim_time_of(snap))
                state.metrics = snap
                state.sim_time_s = _sim_time_of(snap)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - classified below
                category = classify(exc)
                if (category is Category.TRANSIENT
                        and state.retries_used < self.policy.max_retries):
                    delay = self._note_retry(task, state)
                    self._sleep(delay)
                    continue
                self._dispose_failure(task, state, category, exc, results)
                return
            else:
                self._complete(task, state, result, results)
                return

    # ------------------------------------------------------------------
    # pool path: sliding window of watched worker processes
    # ------------------------------------------------------------------

    def _run_pool(self, tasks: Sequence[CellTask],
                  states: Dict[int, _CellState], pending: List[int],
                  results: List[Any]) -> None:
        """Dispatch to a window of worker processes with a watchdog.

        Each cell runs in its own process (at most ``jobs`` in flight),
        so the watchdog can kill exactly the hung worker; a worker that
        dies without an answer (SIGKILL, OOM, segfault) retries on its
        own budget, and a cell whose workers keep dying gets one final
        in-process fallback — recorded and warned, never silent.
        """
        ctx = multiprocessing.get_context()
        queue: deque = deque(pending)
        delayed: List[Tuple[float, int, int]] = []  # (ready_at, seq, index)
        seq = itertools.count()
        active: Dict[Any, _Active] = {}
        fallbacks: List[int] = []

        def requeue(index: int, ready_at: float) -> None:
            heapq.heappush(delayed, (ready_at, next(seq), index))

        try:
            while queue or delayed or active:
                now = self._monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, index = heapq.heappop(delayed)
                    queue.append(index)
                while queue and len(active) < self.jobs:
                    index = queue.popleft()
                    self._spawn(ctx, tasks[index], states[index], active)
                tick = self._next_tick(active, delayed)
                conns = [entry.conn for entry in active.values()]
                if conns:
                    ready = mp_connection.wait(conns, timeout=tick)
                else:
                    if tick:
                        self._sleep(tick)
                    ready = ()
                for conn in ready:
                    entry = active.pop(conn)
                    self._reap(tasks, entry, results, requeue, fallbacks)
                self._enforce_deadlines(tasks, active, results, requeue,
                                        fallbacks)
        except BaseException:
            self._drain_and_kill(tasks, active, results)
            raise
        for index in fallbacks:
            self._execute_inline(tasks[index], states[index], results)

    def _spawn(self, ctx: Any, task: CellTask, state: _CellState,
               active: Dict[Any, _Active]) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        obs_context = {
            "name": task.name,
            # Computed once per parent (memoized) and shipped, so a
            # fresh worker never re-hashes the whole source tree just
            # to key its first cell.
            "code_fingerprint": code_fingerprint(),
            "trace_path": obs_trace.trace_path(),
        }
        process = ctx.Process(
            target=_child_main,
            args=(child_conn, task.fn, dict(task.kwargs), obs_context),
            daemon=True,
        )
        process.start()
        child_conn.close()
        started = self._monotonic()
        if state.first_started is None:
            state.first_started = started
        deadline = started + self.timeout if self.timeout else None
        active[parent_conn] = _Active(state, process, parent_conn, started,
                                      deadline)

    def _reap(self, tasks: Sequence[CellTask], entry: _Active,
              results: List[Any],
              requeue: Callable[[int, float], None],
              fallbacks: List[int]) -> None:
        """Collect one worker's outcome (message, or death without one)."""
        state = entry.state
        task = tasks[state.index]
        state.attempts += 1
        try:
            message = entry.conn.recv()
        except (EOFError, OSError):
            message = None
        entry.conn.close()
        entry.process.join()
        if message is None:
            exc = WorkerCrashError(task.name, entry.process.exitcode)
            self._after_pool_failure(task, state, Category.TRANSIENT, exc,
                                     results, requeue, fallbacks,
                                     crash=True)
        elif message.get("status") == "ok":
            snap = message.get("metrics")
            if snap:
                state.metrics = snap
                state.sim_time_s = _sim_time_of(snap)
                # Fold the worker's process-local counters into the
                # parent registry so ``--metrics`` reports sweep totals.
                obs_metrics.REGISTRY.merge(snap)
            self._complete(task, state, message["result"], results)
        else:
            info: RemoteErrorInfo = message["info"]
            self._after_pool_failure(task, state, info.category(),
                                     info.rebuild(), results, requeue,
                                     fallbacks, crash=False)

    def _enforce_deadlines(self, tasks: Sequence[CellTask],
                           active: Dict[Any, _Active], results: List[Any],
                           requeue: Callable[[int, float], None],
                           fallbacks: List[int]) -> None:
        """Kill workers past their deadline; retry their cells."""
        if self.timeout is None:
            return
        now = self._monotonic()
        for conn, entry in list(active.items()):
            if entry.deadline is None or now < entry.deadline:
                continue
            if entry.conn.poll():
                # Finished just under the wire: harvest, don't kill.
                del active[conn]
                self._reap(tasks, entry, results, requeue, fallbacks)
                continue
            del active[conn]
            entry.process.kill()
            entry.process.join()
            entry.conn.close()
            state = entry.state
            state.attempts += 1
            state.timeouts += 1
            self.stats.timeouts += 1
            task = tasks[state.index]
            exc = CellTimeoutError(task.name, self.timeout, state.attempts)
            self._after_pool_failure(task, state, Category.TRANSIENT, exc,
                                     results, requeue, fallbacks,
                                     crash=False)

    def _after_pool_failure(self, task: CellTask, state: _CellState,
                            category: Category, exc: BaseException,
                            results: List[Any],
                            requeue: Callable[[int, float], None],
                            fallbacks: List[int], crash: bool) -> None:
        """Route a pool-side failure through the taxonomy."""
        if (category is Category.TRANSIENT
                and state.retries_used < self.policy.max_retries):
            delay = self._note_retry(task, state)
            requeue(state.index, self._monotonic() + delay)
            return
        if crash:
            # Workers keep dying under this cell: degrade to in-process
            # execution so the real exception (if the cell, not the
            # environment, is at fault) can surface.  Loud, not silent.
            warnings.warn(
                f"cell {task.name!r}: worker died "
                f"{state.attempts} time(s); falling back to in-process "
                f"execution (recorded in the run manifest)",
                RuntimeWarning,
                stacklevel=2,
            )
            state.fallback = True
            self.stats.fallbacks += 1
            fallbacks.append(state.index)
            return
        self._dispose_failure(task, state, category, exc, results)

    def _next_tick(self, active: Dict[Any, _Active],
                   delayed: List[Tuple[float, int, int]]) -> Optional[float]:
        """How long the event loop may block before something is due."""
        now = self._monotonic()
        candidates: List[float] = []
        for entry in active.values():
            if entry.deadline is not None:
                candidates.append(entry.deadline - now)
        if delayed:
            candidates.append(delayed[0][0] - now)
        if not candidates:
            return None
        return max(0.0, min(candidates)) + 0.005

    def _drain_and_kill(self, tasks: Sequence[CellTask],
                        active: Dict[Any, _Active],
                        results: List[Any]) -> None:
        """On interrupt: harvest finished workers, kill the rest.

        Completed cells that already sent their result are journaled
        (they are done work — losing them would betray ``--resume``);
        everything still running is killed so the process exits promptly.
        """
        for conn, entry in list(active.items()):
            try:
                if entry.conn.poll():
                    message = entry.conn.recv()
                    if (isinstance(message, dict)
                            and message.get("status") == "ok"):
                        entry.state.attempts += 1
                        snap = message.get("metrics")
                        if snap:
                            entry.state.metrics = snap
                            entry.state.sim_time_s = _sim_time_of(snap)
                            obs_metrics.REGISTRY.merge(snap)
                        self._complete(tasks[entry.state.index], entry.state,
                                       message["result"], results)
            except Exception:  # noqa: BLE001 - best-effort during shutdown
                pass
            finally:
                if entry.process.is_alive():
                    entry.process.kill()
                entry.process.join()
                entry.conn.close()
                del active[conn]
        if self.journal is not None:
            self.journal.flush()

    # ------------------------------------------------------------------
    # outcome bookkeeping
    # ------------------------------------------------------------------

    def _note_retry(self, task: CellTask, state: _CellState) -> float:
        state.retries_used += 1
        self.stats.retries += 1
        # Salting with the cell identity keeps jittered schedules
        # deterministic per cell but uncorrelated across cells.
        delay = self.policy.delay_for(state.retries_used,
                                      salt=state.key or task.name)
        state.backoff_s.append(delay)
        self._tick(f"{task.name} [retry {state.retries_used} "
                   f"in {delay:.2f}s]")
        return delay

    def _complete(self, task: CellTask, state: _CellState, result: Any,
                  results: List[Any]) -> None:
        results[state.index] = result
        if self.cache is not None or self.journal is not None:
            payload = task.pack(result) if task.pack else result
            if self.cache is not None:
                self.cache.put(state.key or task.cache_key(), payload)
            self._journal_payload(task, state, payload, status=STATUS_OK)
        self.stats.executed += 1
        self.manifest.record(self._outcome(task, state, STATUS_OK))
        self._tick(task.name + (" [fallback]" if state.fallback else ""))

    def _dispose_failure(self, task: CellTask, state: _CellState,
                         category: Category, exc: BaseException,
                         results: List[Any]) -> None:
        """Terminal failure: quarantine, record, or raise."""
        error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "category": category.value,
        }
        if category is Category.POISON:
            status = STATUS_QUARANTINED
            self.stats.quarantined += 1
        else:
            status = STATUS_FAILED
            self.stats.failed += 1
        self.manifest.record(self._outcome(task, state, status, error=error))
        if self.journal is not None:
            self.journal.append(
                key=state.key or task.cache_key(), name=task.name,
                status=status, attempts=state.attempts,
                duration_s=self._elapsed(state), error=error,
            )
        if category is Category.POISON:
            # Quarantine never sinks the sweep, even in failfast mode.
            results[state.index] = CellFailure(
                name=task.name, key=state.key or "", category=category.value,
                error_type=type(exc).__name__, message=str(exc),
                attempts=state.attempts,
            )
            self._tick(f"{task.name} [quarantined]")
            return
        if self.failfast:
            raise exc
        results[state.index] = CellFailure(
            name=task.name, key=state.key or "", category=category.value,
            error_type=type(exc).__name__, message=str(exc),
            attempts=state.attempts,
        )
        self._tick(f"{task.name} [failed]")

    def _outcome(self, task: CellTask, state: _CellState, status: str,
                 error: Optional[Dict[str, Any]] = None) -> CellOutcome:
        return CellOutcome(
            name=task.name, key=state.key or "", status=status,
            attempts=state.attempts, retries=state.retries_used,
            duration_s=self._elapsed(state), fallback=state.fallback,
            timeouts=state.timeouts, backoff_s=list(state.backoff_s),
            error=error, sim_time_s=state.sim_time_s, metrics=state.metrics,
        )

    def _elapsed(self, state: _CellState) -> float:
        if state.first_started is None:
            return 0.0
        return self._monotonic() - state.first_started

    def _journal_payload(self, task: CellTask, state: _CellState,
                         payload: Any, status: str) -> None:
        if self.journal is None:
            return
        try:
            self.journal.append(
                key=state.key or task.cache_key(), name=task.name,
                status=status, payload=payload, attempts=state.attempts,
                duration_s=self._elapsed(state),
            )
        except TypeError:
            # A task without a pack codec returned something JSON cannot
            # hold; the run still works, it just cannot resume this cell.
            warnings.warn(
                f"cell {task.name!r}: result is not JSON-serializable; "
                f"not journaled (add pack/unpack codecs to enable resume)",
                RuntimeWarning,
                stacklevel=2,
            )

    def _tick(self, label: str) -> None:
        if self.progress is not None:
            self.progress(label)


def run_tasks(
    tasks: Sequence[CellTask],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    *,
    timeout: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    manifest: Optional[RunManifest] = None,
    failfast: bool = True,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`TaskRunner`."""
    return TaskRunner(
        jobs=jobs, cache=cache, retries=retries, progress=progress,
        timeout=timeout, policy=policy, journal=journal, resume=resume,
        manifest=manifest, failfast=failfast,
    ).run(tasks)
