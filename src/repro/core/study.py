"""Study runner: repeated experiments with independent seeds.

The paper repeats every experiment at least five times (Sec. 3.2).  The
helpers here run a measurement function across seeds and aggregate the
per-repeat results, so every experiment module shares the same repetition
discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Sequence, TypeVar

import numpy as np

from repro import calibration
from repro.analysis.stats import SummaryStats, summarize_samples

T = TypeVar("T")


@dataclass
class Repeated(Generic[T]):
    """Results of one experiment across its repeats."""

    name: str
    results: List[T]

    @property
    def n(self) -> int:
        """Number of repeats."""
        return len(self.results)

    def values(self, extract: Callable[[T], float]) -> List[float]:
        """Pull one scalar from each repeat."""
        return [extract(r) for r in self.results]

    def summary(self, extract: Callable[[T], float]) -> SummaryStats:
        """Box-plot summary of one scalar across repeats."""
        return summarize_samples(self.values(extract))


def repeat_experiment(
    name: str,
    run: Callable[[int], T],
    repeats: int = calibration.MIN_REPEATS,
    base_seed: int = 0,
) -> Repeated[T]:
    """Run ``run(seed)`` for ``repeats`` independent seeds.

    Raises:
        ValueError: If fewer repeats than the paper's minimum are requested
            with ``enforce_minimum``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return Repeated(name, [run(base_seed + i) for i in range(repeats)])


@dataclass
class Study:
    """A named collection of repeated experiments.

    Experiments register themselves by name; :meth:`report` prints every
    collected summary in a stable order.  This is the top-level object the
    examples drive.
    """

    name: str
    repeats: int = calibration.MIN_REPEATS
    base_seed: int = 0
    _collected: Dict[str, Repeated] = field(default_factory=dict)

    def run(self, experiment_name: str, fn: Callable[[int], T]) -> Repeated[T]:
        """Run and store one experiment."""
        result = repeat_experiment(
            experiment_name, fn, repeats=self.repeats, base_seed=self.base_seed
        )
        self._collected[experiment_name] = result
        return result

    def get(self, experiment_name: str) -> Repeated:
        """A previously run experiment."""
        return self._collected[experiment_name]

    def experiment_names(self) -> List[str]:
        """All stored experiments, in insertion order."""
        return list(self._collected)
