"""The experimental testbed of Fig. 3, as a reusable object.

U1 always wears a Vision Pro; U2 (and any further users) join on a chosen
device.  Each user sits behind their own WiFi AP, Wireshark runs at the
APs, and ``tc`` can shape either user's access link — all of which the
:class:`Testbed` assembles for any of the four VCA profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.devices.models import Device, VisionPro
from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel
from repro.geo.regions import city
from repro.vca.profiles import VcaProfile
from repro.vca.session import Participant, TelepresenceSession


@dataclass
class Testbed:
    """A set of users and the factory for sessions between them.

    Attributes:
        participants: Users in join order (first = default initiator).
        path_model: Optional custom wide-area model.
    """

    participants: List[Participant]
    path_model: Optional[PathModel] = None

    def __post_init__(self) -> None:
        if len(self.participants) < 2:
            raise ValueError("a testbed needs at least two users")
        ids = [p.user_id for p in self.participants]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate user ids: {ids}")

    def session(self, profile: VcaProfile, seed: int = 0,
                initiator_index: int = 0, faults=None,
                resilience=None, sim=None) -> TelepresenceSession:
        """Create (but do not run) a session on this testbed.

        ``faults`` / ``resilience`` pass through to
        :class:`~repro.vca.session.TelepresenceSession` and enable the
        fault-injection + resilience runtime.  ``sim`` injects an
        externally owned engine (e.g. one lane of a
        :class:`~repro.netsim.batch.BatchSimulator`).
        """
        return TelepresenceSession(
            profile,
            self.participants,
            initiator_index=initiator_index,
            seed=seed,
            path_model=self.path_model,
            faults=faults,
            resilience=resilience,
            sim=sim,
        )

    @property
    def devices(self) -> List[Device]:
        """Devices in join order."""
        return [p.device for p in self.participants]


def default_two_user_testbed(
    u2_device: Optional[Device] = None,
    u1_city: str = "san jose",
    u2_city: str = "dallas",
) -> Testbed:
    """The paper's default setup: U1 on Vision Pro, U2 configurable."""
    return Testbed([
        Participant("U1", VisionPro(), city(u1_city)),
        Participant("U2", u2_device or VisionPro(), city(u2_city)),
    ])


def multi_user_testbed(
    n_users: int,
    device_factory: Callable[[], Device] = VisionPro,
    cities: Optional[Sequence[str]] = None,
) -> Testbed:
    """``n_users`` participants, all on ``device_factory()`` devices.

    Used by the scalability experiments (Sec. 4.5): up to five Vision Pro
    users spread over the catalog cities.
    """
    if n_users < 2:
        raise ValueError("need at least two users")
    default_cities = ["san jose", "dallas", "washington", "chicago", "seattle"]
    chosen = list(cities) if cities is not None else default_cities
    if len(chosen) < n_users:
        raise ValueError(f"need {n_users} cities, got {len(chosen)}")
    return Testbed([
        Participant(f"U{i + 1}", device_factory(), city(chosen[i]))
        for i in range(n_users)
    ])
