"""Device models for the testbed endpoints."""

from repro.devices.models import (
    Device,
    DeviceClass,
    VisionPro,
    MacBook,
    IPad,
    IPhone,
    CameraKind,
)

__all__ = [
    "Device",
    "DeviceClass",
    "VisionPro",
    "MacBook",
    "IPad",
    "IPhone",
    "CameraKind",
]
