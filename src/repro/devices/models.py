"""Endpoint device models.

The testbed (Sec. 3.2) pairs a Vision Pro user (U1) with a second user on
Vision Pro, MacBook, iPad, or iPhone.  The device mix decides everything
downstream: persona kind (spatial personas render only when *every*
participant has a Vision Pro), FaceTime's transport (QUIC iff all Vision
Pro), and the rendering workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


class DeviceClass(enum.Enum):
    """The four endpoint types the paper tests."""

    VISION_PRO = "Vision Pro"
    MACBOOK = "MacBook"
    IPAD = "iPad"
    IPHONE = "iPhone"


class CameraKind(enum.Enum):
    """Vision Pro's camera suite (Fig. 2 of the paper)."""

    MAIN = "main"              # front see-through view of the real world
    TRACKING = "tracking"      # position + extra surroundings
    TRUEDEPTH = "truedepth"    # offline spatial-persona pre-capture
    DOWNWARD = "downward"      # monitors the user's face in-call
    INTERNAL = "internal"      # eye tracking (eye contact, foveation)


@dataclass(frozen=True)
class Device:
    """An endpoint participating in a telepresence session.

    Attributes:
        device_class: What kind of hardware this is.
        cameras: The sensors the device exposes.
        display_fps: Target display refresh driving render deadlines.
    """

    device_class: DeviceClass
    cameras: FrozenSet[CameraKind] = frozenset()
    display_fps: int = 60

    @property
    def supports_spatial_persona(self) -> bool:
        """Spatial personas require the full Vision Pro sensor suite."""
        return self.device_class is DeviceClass.VISION_PRO

    @property
    def can_render_spatial_persona(self) -> bool:
        """Only a headset can *display* spatial personas in 3D."""
        return self.device_class is DeviceClass.VISION_PRO


def VisionPro() -> Device:
    """An Apple Vision Pro with the Fig. 2 camera suite, 90 FPS display."""
    return Device(
        DeviceClass.VISION_PRO,
        cameras=frozenset(CameraKind),
        display_fps=90,
    )


def MacBook() -> Device:
    """A MacBook with its FaceTime camera (2D persona endpoints)."""
    return Device(DeviceClass.MACBOOK, cameras=frozenset({CameraKind.MAIN}))


def IPad() -> Device:
    """An iPad with front camera."""
    return Device(DeviceClass.IPAD, cameras=frozenset({CameraKind.MAIN}))


def IPhone() -> Device:
    """An iPhone with TrueDepth front camera."""
    return Device(
        DeviceClass.IPHONE,
        cameras=frozenset({CameraKind.MAIN, CameraKind.TRUEDEPTH}),
    )


def all_vision_pro(devices: Tuple[Device, ...]) -> bool:
    """Whether every participant is on Vision Pro (the QUIC condition)."""
    return all(d.device_class is DeviceClass.VISION_PRO for d in devices)
