"""Experiment reproductions, one module per table/figure/finding.

========================  ====================================================
Module                    Reproduces
========================  ====================================================
``table1``                Table 1: server RTT matrix from W/M/E test users
``protocols``             Sec. 4.1: QUIC/RTP choice, P2P policy, server
                          selection, anycast check
``fig4``                  Fig. 4: two-party throughput per VCA
``content_delivery``      Sec. 4.3: Draco streaming, keypoint streaming,
                          display-latency invariance
``rate_adaptation``       Sec. 4.3: the 700 Kbps spatial-persona cutoff
``fig5``                  Fig. 5: visibility-aware rendering optimizations
``fig6``                  Fig. 6: scalability (triangles, CPU/GPU, downlink)
``ablations``             A1 delivery-side culling, A2 geo-distributed
                          servers, A3 occlusion-aware rendering
``resilience``            Beyond the paper: the four profiles under the
                          standard fault gauntlet (recovery, ladder, MOS)
========================  ====================================================
"""

from repro.experiments import (  # noqa: F401
    ablations,
    cloud_rendering,
    content_delivery,
    fig4,
    fig5,
    fig6,
    framerate,
    protocols,
    qoe_study,
    resilience,
    shareplay,
    rate_adaptation,
    table1,
)

__all__ = [
    "table1",
    "protocols",
    "fig4",
    "content_delivery",
    "rate_adaptation",
    "fig5",
    "fig6",
    "ablations",
    "framerate",
    "qoe_study",
    "resilience",
    "shareplay",
    "cloud_rendering",
]
