"""Ablations: the optimizations the paper proposes but does not observe.

- **A1 — visibility-aware delivery** (Sec. 4.4 discussion): if the sender
  omitted content that falls outside the receiver's viewport, bandwidth
  would drop in proportion to the culled time share.
- **A2 — geo-distributed servers** (Sec. 4.1 discussion): attaching each
  client to its nearest server with a fast private backbone between
  servers, instead of the observed initiator-nearest single relay.
- A3 (occlusion-aware rendering) lives in
  :func:`repro.experiments.fig5.run_occlusion` next to the paper's
  negative result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import calibration
from repro.geo.coords import GeoPoint
from repro.geo.regions import city
from repro.geo.servers import ALL_FLEETS, ServerFleet
from repro.rendering.gaze import AttentionModel, arrange_personas
from repro.rendering.lod import LodPolicy, VisibilityState


# ---------------------------------------------------------------------------
# A1 — visibility-aware delivery
# ---------------------------------------------------------------------------

@dataclass
class DeliveryCullingResult:
    """Bandwidth with and without delivery-side viewport culling."""

    n_users: int
    baseline_mbps: float
    culled_mbps: float

    @property
    def savings_fraction(self) -> float:
        """Fraction of bandwidth the optimization would save."""
        if self.baseline_mbps <= 0:
            return 0.0
        return 1.0 - self.culled_mbps / self.baseline_mbps


def run_delivery_culling(
    n_users: int = 5,
    duration_s: float = 60.0,
    per_stream_mbps: float = calibration.SPATIAL_PERSONA_MBPS,
    seed: int = 0,
) -> DeliveryCullingResult:
    """Estimate A1 savings from the receiver's visibility timeline.

    Replays the attention dynamics of an ``n_users`` session and suppresses
    each sender's stream during the frames its persona is outside the
    receiver's viewport (the paper: "if the content is known to fall
    outside of a receiver's viewport, it could be omitted from delivery").
    """
    if n_users < 2:
        raise ValueError("need at least two users")
    personas = arrange_personas([f"U{i + 2}" for i in range(n_users - 1)])
    attention = AttentionModel(personas, seed=seed)
    policy = LodPolicy()
    frames = int(duration_s * calibration.TARGET_FPS)
    delivered = 0
    total = 0
    for _ in range(frames):
        sample = attention.step()
        for decision in policy.decide(sample.camera, sample.views):
            total += 1
            if decision.state is not VisibilityState.CULLED:
                delivered += 1
    baseline = (n_users - 1) * per_stream_mbps
    culled = baseline * (delivered / total if total else 1.0)
    return DeliveryCullingResult(n_users, baseline, culled)


# ---------------------------------------------------------------------------
# A4 — layered semantic codec (rate adaptation the paper finds missing)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LayeredRatePoint:
    """Outcome at one uplink limit with the adaptive layered sender."""

    limit_kbps: float
    layer: "object"          # Layer or None when not even BASE fits
    availability: float
    degraded: bool


@dataclass
class LayeredCodecResult:
    """The A4 sweep."""

    points: List[LayeredRatePoint]

    def cutoff_kbps(self) -> float:
        """Lowest limit at which the persona remains available."""
        working = [
            p.limit_kbps for p in self.points if p.availability >= 0.9
        ]
        return min(working) if working else float("inf")

    def format_table(self) -> str:
        """Printable sweep."""
        lines = ["limit_kbps  layer      availability  degraded"]
        for p in self.points:
            layer = p.layer.name if p.layer is not None else "-"
            lines.append(
                f"{p.limit_kbps:10.0f}  {layer:9s}  "
                f"{p.availability:12.3f}  {p.degraded}"
            )
        return "\n".join(lines)


def _measure_layered_at_limit(limit_kbps: float, layer,
                              duration_s: float, seed: int
                              ) -> LayeredRatePoint:
    """Run one shaped layered stream and count decodable frames."""
    from repro.geo.regions import city
    from repro.keypoints.layered import LayeredSemanticCodec
    from repro.netsim.engine import Simulator
    from repro.netsim.network import Network
    from repro.netsim.node import Host
    from repro.netsim.shaper import TrafficShaper
    from repro.keypoints.codec import EncodedKeypointFrame
    from repro.vca.media import LayeredSemanticSource, quic_connection_for

    sim = Simulator()
    network = Network(sim)
    sender = Host("10.0.0.2", city("san jose"), name="sender")
    receiver = Host("10.0.1.2", city("dallas"), name="receiver")
    network.attach(sender)
    network.attach(receiver)
    network.set_uplink_shaper(
        sender.address, TrafficShaper(rate_bps=limit_kbps * 1000.0, seed=seed)
    )
    secret = b"layered-secret-0"
    codec = LayeredSemanticCodec(seed=seed)
    conn = quic_connection_for(sender.address, secret)
    decoded = []

    def on_packet(packet) -> None:
        try:
            frame = codec.decode(
                EncodedKeypointFrame(conn.unprotect(packet.payload))
            )
        except ValueError:
            return
        decoded.append(frame)

    receiver.bind(40000, on_packet)
    source = LayeredSemanticSource(secret, layer, seed=seed)
    source.attach(sim, sender, receiver.address)
    sim.run(until=duration_s)
    availability = min(
        1.0, len(decoded) / (duration_s * calibration.TARGET_FPS)
    )
    degraded = any(f.degraded for f in decoded)
    return LayeredRatePoint(limit_kbps, layer, availability, degraded)


def run_layered_codec(
    limits_kbps=(2000.0, 1000.0, 700.0, 600.0, 500.0, 400.0, 300.0, 200.0,
                 100.0),
    duration_s: float = 10.0,
    seed: int = 0,
) -> LayeredCodecResult:
    """A4: the same shaping sweep as Sec. 4.3, with an adaptive sender.

    For each limit the selector picks the best-fitting layer; the stream
    then actually runs through the shaped path.  Where FaceTime shows
    "poor connection" below 700 Kbps, the layered sender stays available
    down to the BASE layer's ~200 Kbps.
    """
    from repro.keypoints.layered import AdaptiveLayerSelector, LayeredSemanticCodec

    selector = AdaptiveLayerSelector(LayeredSemanticCodec(seed=seed))
    points = []
    for limit in limits_kbps:
        layer = selector.select(limit / 1000.0)
        if layer is None:
            points.append(LayeredRatePoint(limit, None, 0.0, True))
            continue
        points.append(
            _measure_layered_at_limit(limit, layer, duration_s, seed)
        )
    return LayeredCodecResult(points)


# ---------------------------------------------------------------------------
# A5 — forward error correction for the loss-fragile semantic stream
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FecPoint:
    """Availability at one loss rate, with and without parity."""

    loss_rate: float
    availability_plain: float
    availability_fec: float
    fec_overhead: float


@dataclass
class FecResilienceResult:
    """The A5 sweep."""

    points: List[FecPoint]
    k: int

    def fec_always_helps(self) -> bool:
        """Parity must not make availability worse anywhere."""
        return all(
            p.availability_fec >= p.availability_plain - 0.005
            for p in self.points
        )

    def format_table(self) -> str:
        """Printable sweep."""
        lines = [
            f"loss_rate  plain_avail  fec_avail  (k={self.k}, "
            f"overhead {self.points[0].fec_overhead:.0%})"
        ]
        for p in self.points:
            lines.append(
                f"{p.loss_rate:9.3f}  {p.availability_plain:11.3f}  "
                f"{p.availability_fec:9.3f}"
            )
        return "\n".join(lines)


def _semantic_over_lossy_link(loss: float, use_fec: bool, k: int,
                              duration_s: float, seed: int) -> float:
    """Delivered-frame availability of a semantic stream under loss."""
    from repro.geo.regions import city
    from repro.keypoints.codec import EncodedKeypointFrame, SemanticCodec
    from repro.keypoints.motion import MotionSynthesizer
    from repro.netsim.engine import Simulator
    from repro.netsim.network import Network
    from repro.netsim.node import Host
    from repro.netsim.packet import IPPROTO_UDP, Packet
    from repro.netsim.shaper import TrafficShaper
    from repro.transport.fec import FecDecoder, FecEncoder, FecPacket

    sim = Simulator()
    network = Network(sim)
    sender = Host("10.0.0.2", city("san jose"))
    receiver = Host("10.0.1.2", city("dallas"))
    network.attach(sender)
    network.attach(receiver)
    network.set_uplink_shaper(
        sender.address, TrafficShaper(loss=loss, seed=seed)
    )
    codec = SemanticCodec(seed=seed)
    synth = MotionSynthesizer(fps=calibration.TARGET_FPS, seed=seed)
    pool = [
        codec.encode(f, include_confidence=False).payload
        for f in synth.frames(128)
    ]
    encoder = FecEncoder(k=k) if use_fec else None
    decoder = FecDecoder()
    delivered = []

    def on_packet(packet: Packet) -> None:
        if use_fec:
            try:
                fec_packet = FecPacket.parse(packet.payload)
            except ValueError:
                return
            for payload in decoder.receive(fec_packet):
                _count_frame(payload)
        else:
            _count_frame(packet.payload)

    def _count_frame(payload: bytes) -> None:
        try:
            codec.decode(EncodedKeypointFrame(payload))
        except ValueError:
            return
        delivered.append(1)

    receiver.bind(40000, on_packet)
    frame_counter = [0]

    def send_frame() -> None:
        payload = pool[frame_counter[0] % len(pool)]
        frame_counter[0] += 1
        if encoder is not None:
            wire_payloads = [p.pack() for p in encoder.protect(payload)]
        else:
            wire_payloads = [payload]
        for wire in wire_payloads:
            sender.send(Packet(
                src=sender.address, dst=receiver.address,
                src_port=40000, dst_port=40000,
                protocol=IPPROTO_UDP, payload=wire,
            ))

    sim.schedule_every(1.0 / calibration.TARGET_FPS, send_frame,
                       until=duration_s)
    sim.run(until=duration_s + 1.0)
    expected = frame_counter[0]
    return len(delivered) / expected if expected else 0.0


def run_fec_resilience(
    loss_rates=(0.0, 0.01, 0.02, 0.05, 0.10),
    k: int = 4,
    duration_s: float = 10.0,
    seed: int = 0,
) -> FecResilienceResult:
    """A5: XOR parity vs plain delivery under random loss.

    Plain semantic delivery loses availability one-for-one with packet
    loss (each frame is one packet, no retransmission); interleaved
    parity recovers any single loss per group at 1/k bandwidth overhead.
    """
    points = []
    for loss in loss_rates:
        plain = _semantic_over_lossy_link(loss, False, k, duration_s, seed)
        fec = _semantic_over_lossy_link(loss, True, k, duration_s, seed)
        points.append(FecPoint(loss, plain, fec, 1.0 / k))
    return FecResilienceResult(points, k)


# ---------------------------------------------------------------------------
# A2 — geo-distributed server selection
# ---------------------------------------------------------------------------

@dataclass
class ServerPolicyResult:
    """Worst client RTT under both selection policies, per scenario."""

    scenario: str
    initiator_nearest_ms: float
    geo_distributed_ms: float

    @property
    def improvement_fraction(self) -> float:
        """Relative worst-RTT reduction from geo-distribution."""
        if self.initiator_nearest_ms <= 0:
            return 0.0
        return 1.0 - self.geo_distributed_ms / self.initiator_nearest_ms


#: An intercontinental what-if: the paper notes Europe-Asia one-way delay
#: already exceeds the 100 ms immersive-QoE threshold.
GLOBAL_CITIES: Dict[str, GeoPoint] = {
    "london": GeoPoint("London, UK", 51.5074, -0.1278),
    "singapore": GeoPoint("Singapore", 1.3521, 103.8198),
    "frankfurt": GeoPoint("Frankfurt, DE", 50.1109, 8.6821),
    "tokyo": GeoPoint("Tokyo, JP", 35.6762, 139.6503),
}


def _global_fleet(base: ServerFleet) -> ServerFleet:
    """The provider's fleet extended with hypothetical overseas POPs."""
    from repro.geo.servers import Server

    extended = list(base.servers) + [
        Server(base.vca, "EU", GLOBAL_CITIES["frankfurt"], "198.51.100.1"),
        Server(base.vca, "AS", GLOBAL_CITIES["singapore"], "198.51.100.2"),
    ]
    return ServerFleet(base.vca, extended, base.path_model)


def run_server_policies(
    vca: str = "FaceTime",
    backbone_speedup: float = 1.6,
) -> List[ServerPolicyResult]:
    """Compare worst-client RTT across US-only and intercontinental calls."""
    base_fleet = ALL_FLEETS[vca]
    results = []

    us_participants = [city("san jose"), city("dallas"), city("washington")]
    results.append(ServerPolicyResult(
        scenario="US coast-to-coast (E initiator)",
        initiator_nearest_ms=base_fleet.worst_pair_rtt_ms(
            city("washington"), us_participants
        ),
        geo_distributed_ms=base_fleet.worst_pair_rtt_ms_geo_distributed(
            us_participants, backbone_speedup=backbone_speedup
        ),
    ))

    world_fleet = _global_fleet(base_fleet)
    world_participants = [
        city("san jose"), GLOBAL_CITIES["london"], GLOBAL_CITIES["tokyo"]
    ]
    results.append(ServerPolicyResult(
        scenario="Intercontinental (London initiator)",
        initiator_nearest_ms=world_fleet.worst_pair_rtt_ms(
            GLOBAL_CITIES["london"], world_participants
        ),
        geo_distributed_ms=world_fleet.worst_pair_rtt_ms_geo_distributed(
            world_participants, backbone_speedup=backbone_speedup
        ),
    ))
    return results
