"""Ablation A6: cloud-rendered personas (the paper's scalability remedy).

Sec. 4.5 closes with: "A potential solution to address such scalability
issues is to offload the rendering to the cloud server(s) [24]."  This
experiment prices that proposal:

- **On-device (today)**: each headset reconstructs and renders every
  persona locally.  GPU cost grows with persona count (Fig. 6(b)) and
  hits the 11.1 ms wall near five users — but viewport changes are
  handled locally (display-latency difference < 16 ms, Sec. 4.3).
- **Cloud-rendered**: the server reconstructs all personas and streams a
  per-viewer 2D video.  Device GPU collapses to video decode +
  composition (no per-persona geometry), so the five-user cap
  disappears — but every viewport change now rides the network
  (sender-rendered latency semantics), and downlink becomes a video
  stream instead of semantic trickles.

The trade surfaces exactly as the paper implies: offload buys headroom
and sells interactivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro import calibration
from repro.rendering.cost import FRAME_COST_FIT
from repro.rendering.display import ContentDeliveryMode, DisplayLatencyModel
from repro.rendering.framerate import analyze_frame_rate
from repro.rendering.pipeline import RenderPipeline

#: Device-side cost of decoding + compositing one cloud-rendered video
#: stream (hardware decoder + one full-screen composite pass), ms/frame.
#: Engineering estimate; documented rather than calibrated — the paper
#: has no cloud-rendering measurements to anchor against.
DECODE_COMPOSITE_MS_PER_STREAM = 0.35

#: Per-viewer video rate the cloud must stream (a high-quality headset
#: view; between the paper's Webex 1080p rate and a 4K rate).
CLOUD_VIDEO_MBPS = 10.0


@dataclass(frozen=True)
class CloudRenderingPoint:
    """Both architectures at one user count."""

    n_users: int
    local_gpu_ms: float
    local_effective_fps: float
    cloud_gpu_ms: float
    cloud_effective_fps: float
    local_downlink_mbps: float
    cloud_downlink_mbps: float
    local_viewport_latency_ms: float
    cloud_viewport_latency_ms: float


@dataclass
class CloudRenderingResult:
    """The A6 sweep."""

    points: List[CloudRenderingPoint]

    def cloud_removes_gpu_ceiling(self) -> bool:
        """Cloud GPU time stays flat and far from the deadline."""
        return all(
            p.cloud_gpu_ms < 0.5 * calibration.FRAME_DEADLINE_MS
            for p in self.points
        )

    def cloud_costs_interactivity(self) -> bool:
        """Viewport-change latency is strictly worse under offload."""
        return all(
            p.cloud_viewport_latency_ms > p.local_viewport_latency_ms
            for p in self.points
        )

    def cloud_costs_bandwidth(self) -> bool:
        """Per-viewer downlink is higher under offload at small scale.

        (Semantic downlink grows linearly, so the two cross eventually;
        within the five-persona regime video costs more.)
        """
        return all(
            p.cloud_downlink_mbps > p.local_downlink_mbps
            for p in self.points
        )

    def format_table(self) -> str:
        """Printable comparison."""
        lines = [
            "users  gpu_ms local/cloud  fps local/cloud  "
            "downlink local/cloud  viewport_ms local/cloud"
        ]
        for p in self.points:
            lines.append(
                f"{p.n_users:5d}  {p.local_gpu_ms:6.2f}/{p.cloud_gpu_ms:5.2f}"
                f"  {p.local_effective_fps:5.1f}/{p.cloud_effective_fps:5.1f}"
                f"      {p.local_downlink_mbps:5.2f}/{p.cloud_downlink_mbps:5.2f}"
                f"          {p.local_viewport_latency_ms:5.1f}/"
                f"{p.cloud_viewport_latency_ms:5.1f}"
            )
        return "\n".join(lines)


def _cloud_device_gpu_ms(n_personas: int) -> float:
    """Device GPU under offload: setup + one decoded-video composite.

    The cloud composes all personas into one per-viewer view, so the
    device decodes a single stream regardless of persona count; a small
    per-persona compositing term covers overlays/UI chrome.
    """
    return (
        FRAME_COST_FIT.setup_ms
        + DECODE_COMPOSITE_MS_PER_STREAM
        + 0.02 * n_personas
    )


def run(
    user_counts=(2, 3, 4, 5, 6, 8),
    duration_s: float = 20.0,
    network_rtt_ms: float = 40.0,
    seed: int = 0,
) -> CloudRenderingResult:
    """Compare on-device and cloud-rendered architectures per user count.

    User counts above the spatial cap only exist on the cloud side for
    local rendering they are measured anyway to show the wall.
    """
    rng = np.random.default_rng(seed)
    local_latency = DisplayLatencyModel(
        mode=ContentDeliveryMode.LOCAL_RECONSTRUCTION
    )
    local_latency.seed(seed)
    cloud_latency = DisplayLatencyModel(
        mode=ContentDeliveryMode.SENDER_RENDERED_VIDEO
    )
    cloud_latency.seed(seed + 1)

    points = []
    for n in user_counts:
        n_personas = n - 1
        pipeline = RenderPipeline(seed=seed + n)
        frames = pipeline.render_session(
            [f"U{i + 2}" for i in range(n_personas)], duration_s=duration_s
        )
        local_gpu = float(np.mean([f.gpu_ms for f in frames]))
        local_fps = analyze_frame_rate(frames).effective_fps

        cloud_gpu = _cloud_device_gpu_ms(n_personas)
        cloud_gpu_samples = cloud_gpu + rng.normal(0.0, 0.05, len(frames))
        # Build synthetic FrameStats-like GPU times for the fps math.
        from repro.rendering.framerate import vsync_slots

        slots = [vsync_slots(g) for g in cloud_gpu_samples]
        cloud_fps = calibration.TARGET_FPS * len(slots) / sum(slots)

        local_viewport = float(np.mean([
            local_latency.latency_difference_ms(network_rtt_ms)
            for _ in range(50)
        ]))
        cloud_viewport = float(np.mean([
            cloud_latency.latency_difference_ms(network_rtt_ms)
            for _ in range(50)
        ]))

        points.append(CloudRenderingPoint(
            n_users=n,
            local_gpu_ms=local_gpu,
            local_effective_fps=local_fps,
            cloud_gpu_ms=float(np.mean(cloud_gpu_samples)),
            cloud_effective_fps=float(cloud_fps),
            local_downlink_mbps=n_personas * calibration.SPATIAL_PERSONA_MBPS,
            cloud_downlink_mbps=CLOUD_VIDEO_MBPS,
            local_viewport_latency_ms=local_viewport,
            cloud_viewport_latency_ms=cloud_viewport,
        ))
    return CloudRenderingResult(points)
