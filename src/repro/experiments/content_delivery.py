"""Sec. 4.3: what is being delivered for the spatial persona?

Three sub-experiments eliminate delivery hypotheses one by one:

1. **Direct 3D streaming** — Draco-compressing five 70-90K-triangle head
   meshes and streaming at 90 FPS costs ~107 Mbps, two orders of magnitude
   above the measured 0.67 Mbps: the persona is not shipped as a mesh.
2. **Sender-rendered 2D video** — the passthrough-vs-persona display
   latency difference stays < 16 ms while 0-1000 ms of ``tc`` delay is
   injected; a sender-rendered stream would track the delay.
3. **Semantic keypoints** — 74 keypoints, LZMA, 90 FPS lands at
   ~0.64 Mbps, right where the measured persona stream sits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro import calibration
from repro.analysis.stats import SummaryStats, summarize_samples
from repro.capture.rgbd import RgbdCamera
from repro.keypoints.codec import SemanticCodec
from repro.mesh.codec import DracoLikeCodec
from repro.mesh.generate import sketchfab_head_set
from repro.rendering.display import ContentDeliveryMode, DisplayLatencyModel


@dataclass
class MeshStreamingResult:
    """Draco-streaming bitrates of the five head meshes."""

    per_mesh_mbps: Dict[str, float]

    @property
    def summary(self) -> SummaryStats:
        """Bitrate distribution across meshes (paper: 107.4 +/- 14.1)."""
        return summarize_samples(list(self.per_mesh_mbps.values()))

    def dwarfs_spatial_persona(self) -> bool:
        """The elimination argument: mesh streaming is >> 0.67 Mbps."""
        return min(self.per_mesh_mbps.values()) > (
            20.0 * calibration.SPATIAL_PERSONA_MBPS
        )


def run_mesh_streaming(seed: int = 0,
                       quantization_bits: int = 11) -> MeshStreamingResult:
    """Compress the head set and report 90 FPS streaming bitrates."""
    codec = DracoLikeCodec(quantization_bits=quantization_bits)
    rates = {}
    for mesh in sketchfab_head_set(seed=seed):
        encoded = codec.encode(mesh)
        rates[mesh.name] = encoded.bitrate_mbps(calibration.TARGET_FPS)
    return MeshStreamingResult(rates)


@dataclass
class KeypointStreamingResult:
    """LZMA keypoint streaming over the RGB-D capture."""

    frame_bytes: List[int]

    @property
    def mbps(self) -> SummaryStats:
        """Per-frame bitrate at 90 FPS (paper: 0.64 +/- 0.02 Mbps)."""
        rates = [
            b * 8.0 * calibration.TARGET_FPS / 1e6 for b in self.frame_bytes
        ]
        return summarize_samples(rates)

    def matches_spatial_persona(self, tolerance_mbps: float = 0.1) -> bool:
        """Whether the estimate lands near the measured persona stream."""
        return abs(
            self.mbps.mean - calibration.SPATIAL_PERSONA_MBPS
        ) <= tolerance_mbps


def run_keypoint_streaming(
    frames: int = calibration.RGBD_CAPTURE_FRAMES, seed: int = 0
) -> KeypointStreamingResult:
    """The ZED-capture + dlib/OpenPose + LZMA experiment."""
    camera = RgbdCamera(seed=seed)
    codec = SemanticCodec(seed=seed)
    captured = camera.record(frames)
    sizes = [codec.encode(frame).byte_size for frame in captured]
    return KeypointStreamingResult(sizes)


@dataclass
class DisplayLatencyResult:
    """Latency differences per injected delay, per delivery mode."""

    #: mode value -> list of (injected delay ms, mean difference ms)
    series: Dict[str, List[Tuple[float, float]]]

    def local_mode_invariant(self, bound_ms: float = float(
            calibration.DISPLAY_LATENCY_DIFF_BOUND_MS)) -> bool:
        """Local reconstruction stays under the paper's 16 ms bound."""
        local = self.series[ContentDeliveryMode.LOCAL_RECONSTRUCTION.value]
        return all(diff < bound_ms for _, diff in local)

    def remote_mode_tracks_delay(self) -> bool:
        """Sender-rendered video difference grows with injected delay."""
        remote = self.series[ContentDeliveryMode.SENDER_RENDERED_VIDEO.value]
        delays = [d for d, _ in remote]
        diffs = [v for _, v in remote]
        return diffs[-1] - diffs[0] > 0.8 * (delays[-1] - delays[0])


def run_display_latency(
    base_rtt_ms: float = 40.0,
    injected_delays_ms: Tuple[float, ...] = tuple(range(0, 1001, 100)),
    trials: int = 30,
    seed: int = 0,
) -> DisplayLatencyResult:
    """Viewport-change latency sweep under both delivery hypotheses."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for mode in ContentDeliveryMode:
        model = DisplayLatencyModel(mode=mode)
        model.seed(seed)
        points = []
        for delay in injected_delays_ms:
            diffs = [
                model.latency_difference_ms(base_rtt_ms + delay)
                for _ in range(trials)
            ]
            points.append((float(delay), float(np.mean(diffs))))
        series[mode.value] = points
    return DisplayLatencyResult(series)
