"""Fig. 4: two-party uplink throughput per VCA configuration.

Five configurations, matching the figure's x axis:

- ``F``  — FaceTime, both users on Vision Pro (spatial persona, QUIC)
- ``F*`` — FaceTime, U2 on MacBook (2D persona, RTP)
- ``Z``  — Zoom, both on Vision Pro (2D persona)
- ``W``  — Webex, both on Vision Pro (2D persona)
- ``T``  — Teams, both on Vision Pro (2D persona)

The observable is U1's uplink wire throughput at the AP, windowed at one
second — the spatial persona's data rate, since the servers only forward
(Sec. 4.2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import calibration
from repro.analysis.stats import SummaryStats, summarize_samples
from repro.analysis.throughput import throughput_windows_mbps
from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.core.testbed import default_two_user_testbed
from repro.devices.models import Device, MacBook, VisionPro
from repro.netsim.capture import Direction
from repro.vca.profiles import PROFILES, VcaProfile

#: Fig. 4 configurations: label -> (profile, U2 device factory).
CONFIGURATIONS: Dict[str, Tuple[str, Callable[[], Device]]] = {
    "F": ("FaceTime", VisionPro),
    "F*": ("FaceTime", MacBook),
    "Z": ("Zoom", VisionPro),
    "W": ("Webex", VisionPro),
    "T": ("Teams", VisionPro),
}

#: Published means for sanity comparison (Fig. 4 / Sec. 4.2).
PAPER_MEANS_MBPS: Dict[str, float] = {
    "F": calibration.SPATIAL_PERSONA_MBPS,
    "F*": calibration.FACETIME_2D_MBPS,
    "Z": calibration.ZOOM_MBPS,
    "W": calibration.WEBEX_MBPS,
    "T": calibration.TEAMS_MBPS,
}


@dataclass
class Fig4Result:
    """Throughput summary per configuration."""

    summaries: Dict[str, SummaryStats]

    def format_table(self) -> str:
        """Printable Fig. 4 table with the paper's box-plot stats."""
        lines = ["cfg  mean   p5    p25   med   p75   p95   (Mbps, uplink)"]
        for label in CONFIGURATIONS:
            s = self.summaries[label]
            lines.append(
                f"{label:4s} {s.mean:5.2f} {s.p5:5.2f} {s.p25:5.2f} "
                f"{s.median:5.2f} {s.p75:5.2f} {s.p95:5.2f}"
            )
        return "\n".join(lines)

    def ordering_holds(self) -> bool:
        """The paper's headline ordering: F < Z < F* < T < W."""
        means = {k: v.mean for k, v in self.summaries.items()}
        return (
            means["F"] < means["Z"] < means["F*"] < means["T"] < means["W"]
        )


def measure_configuration(
    label: str,
    duration_s: float = 30.0,
    repeats: int = calibration.MIN_REPEATS,
    seed: int = 0,
) -> SummaryStats:
    """All throughput windows of one configuration across repeats."""
    vca_name, device_factory = CONFIGURATIONS[label]
    profile: VcaProfile = PROFILES[vca_name]
    windows: List[float] = []
    for repeat in range(repeats):
        testbed = default_two_user_testbed(u2_device=device_factory())
        session = testbed.session(profile, seed=seed + repeat)
        result = session.run(duration_s)
        windows.extend(
            throughput_windows_mbps(result.capture_of("U1"), Direction.UPLINK)
        )
    return summarize_samples(windows)


def pack_stats(stats: SummaryStats) -> Dict[str, float]:
    """SummaryStats -> cacheable JSON payload."""
    return dataclasses.asdict(stats)


def unpack_stats(payload: Dict[str, float]) -> SummaryStats:
    """Cache payload -> SummaryStats (exact round-trip)."""
    return SummaryStats(**payload)


def run(duration_s: float = 30.0, repeats: int = calibration.MIN_REPEATS,
        seed: int = 0, jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None, retries: int = 1,
        journal: Optional[RunJournal] = None, resume: bool = False,
        manifest: Optional[RunManifest] = None) -> Fig4Result:
    """Measure every Fig. 4 configuration.

    Each configuration is an independent seeded cell, so the sweep shards
    over ``jobs`` worker processes and replays from ``cache`` with results
    identical to the serial path.  The crash-safety knobs (``timeout``
    watchdog, transient ``retries``, checkpoint ``journal``/``resume``,
    shared run ``manifest``) pass straight through to the runner.
    """
    tasks = [
        CellTask(
            name=f"fig4/{label}",
            fn=measure_configuration,
            kwargs={"label": label, "duration_s": duration_s,
                    "repeats": repeats, "seed": seed},
            pack=pack_stats,
            unpack=unpack_stats,
        )
        for label in CONFIGURATIONS
    ]
    summaries = run_tasks(tasks, jobs=jobs, cache=cache, retries=retries,
                          timeout=timeout, journal=journal, resume=resume,
                          manifest=manifest)
    return Fig4Result(dict(zip(CONFIGURATIONS, summaries)))
