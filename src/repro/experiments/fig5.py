"""Fig. 5 + Sec. 4.4: visibility-aware rendering optimizations.

Reconstructs the paper's four controlled scenarios for a single remote
persona and reads the RealityKit-style counters:

- **BL** — staring at the persona from 1 m (no optimization applies),
- **V**  — the persona rotated out of the viewport (viewport adaptation),
- **F**  — the persona in peripheral vision (foveated rendering),
- **D**  — the persona beyond 3 m (distance-aware optimization),

plus the five-user line-of-personas occlusion test, and the negative
results: neither bandwidth nor CPU time changes under any optimization.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import calibration
from repro.analysis.stats import SummaryStats, summarize_samples
from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.rendering.camera import Camera
from repro.rendering.lod import LodPolicy, PersonaView, VisibilityState
from repro.rendering.pipeline import RenderPipeline
from repro.vca.media import SemanticSource

#: The four Fig. 5 scenarios.
SCENARIOS = ("BL", "V", "F", "D")

#: Published (triangles, gpu mean ms) anchors per scenario.
PAPER_ANCHORS: Dict[str, Tuple[int, float]] = {
    "BL": (calibration.PERSONA_TRIANGLES, calibration.GPU_MS_BASELINE[0]),
    "V": (calibration.VIEWPORT_CULLED_TRIANGLES, calibration.GPU_MS_VIEWPORT[0]),
    "F": (calibration.FOVEATED_TRIANGLES, calibration.GPU_MS_FOVEATED[0]),
    "D": (calibration.DISTANCE_TRIANGLES, calibration.GPU_MS_DISTANCE[0]),
}


def scenario_scene(name: str) -> Tuple[Camera, PersonaView]:
    """Camera and persona placement for one Fig. 5 scenario."""
    forward = np.array([1.0, 0.0, 0.0])
    if name == "BL":
        camera = Camera(np.zeros(3), forward)
        view = PersonaView("U2", np.array([1.0, 0.0, 0.0]), 0.0)
    elif name == "V":
        # U1 turns the head so U2's persona leaves the viewport.
        camera = Camera(np.zeros(3), forward)
        view = PersonaView("U2", np.array([-1.0, 0.3, 0.0]), 150.0)
    elif name == "F":
        # U2 at the left corner of the viewport while U1 gazes at the
        # right corner: in view, far from the gaze.
        angle = math.radians(40.0)
        camera = Camera(np.zeros(3), forward)
        view = PersonaView(
            "U2",
            np.array([math.cos(angle), math.sin(angle), 0.0]),
            80.0,
        )
    elif name == "D":
        camera = Camera(np.zeros(3), forward)
        view = PersonaView("U2", np.array([3.5, 0.0, 0.0]), 0.0)
    else:
        raise KeyError(f"unknown scenario {name!r}")
    return camera, view


@dataclass
class Fig5Result:
    """Measured triangles and GPU time per scenario."""

    triangles: Dict[str, int]
    gpu_ms: Dict[str, SummaryStats]

    def format_table(self) -> str:
        """Printable Fig. 5 table with paper anchors."""
        lines = ["scenario  triangles  gpu_ms (mean±std)   paper"]
        for name in SCENARIOS:
            tri_paper, gpu_paper = PAPER_ANCHORS[name]
            s = self.gpu_ms[name]
            lines.append(
                f"{name:8s}  {self.triangles[name]:9d}  "
                f"{s.mean:5.2f}±{s.std:4.2f}          "
                f"{tri_paper} tri / {gpu_paper:.2f} ms"
            )
        return "\n".join(lines)

    def reductions_vs_baseline(self) -> Dict[str, float]:
        """GPU-time reduction per optimization (paper: V 59%, F 39%, D 40%)."""
        base = self.gpu_ms["BL"].mean
        return {
            name: 1.0 - self.gpu_ms[name].mean / base
            for name in SCENARIOS if name != "BL"
        }


def render_scenario(name: str, index: int, frames_per_scenario: int,
                    seed: int) -> Tuple[int, SummaryStats]:
    """Render one Fig. 5 scenario — the unit of sweep work."""
    pipeline = RenderPipeline(seed=seed + index)
    camera, view = scenario_scene(name)
    frames = [
        pipeline.render_frame(i, camera, [view])
        for i in range(frames_per_scenario)
    ]
    return frames[0].triangles, summarize_samples([f.gpu_ms for f in frames])


def _pack_scenario(result: Tuple[int, SummaryStats]) -> Dict[str, object]:
    triangles, stats = result
    return {"triangles": triangles, "gpu": dataclasses.asdict(stats)}


def _unpack_scenario(payload: Dict[str, object]) -> Tuple[int, SummaryStats]:
    return int(payload["triangles"]), SummaryStats(**payload["gpu"])


def run(frames_per_scenario: int = 300, seed: int = 0, jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None, retries: int = 1,
        journal: Optional[RunJournal] = None, resume: bool = False,
        manifest: Optional[RunManifest] = None) -> Fig5Result:
    """Render each controlled scenario and summarize the counters.

    The four scenarios are independent seeded cells for the shared sweep
    runner (``jobs``/``cache``, plus the crash-safety knobs: ``timeout``
    watchdog, transient ``retries``, ``journal``/``resume``,
    ``manifest``).
    """
    tasks = [
        CellTask(
            name=f"fig5/{name}",
            fn=render_scenario,
            kwargs={"name": name, "index": index,
                    "frames_per_scenario": frames_per_scenario, "seed": seed},
            pack=_pack_scenario,
            unpack=_unpack_scenario,
        )
        for index, name in enumerate(SCENARIOS)
    ]
    triangles: Dict[str, int] = {}
    gpu: Dict[str, SummaryStats] = {}
    for name, (tri, stats) in zip(SCENARIOS, run_tasks(
            tasks, jobs=jobs, cache=cache, retries=retries, timeout=timeout,
            journal=journal, resume=resume, manifest=manifest)):
        triangles[name] = tri
        gpu[name] = stats
    return Fig5Result(triangles, gpu)


# ---------------------------------------------------------------------------
# Occlusion experiment (five users, personas in a line)
# ---------------------------------------------------------------------------

def occlusion_scene() -> Tuple[Camera, List[PersonaView]]:
    """U2..U5 lined up in front of U1, U2 nearest (Sec. 4.4)."""
    camera = Camera(np.zeros(3), np.array([1.0, 0.0, 0.0]))
    views = [
        PersonaView(f"U{i + 2}", np.array([1.2 + 0.5 * i, 0.0, 0.0]), 0.0)
        for i in range(4)
    ]
    return camera, views


def spread_scene() -> Tuple[Camera, List[PersonaView]]:
    """The control: same distances, personas spread so all are visible."""
    camera = Camera(np.zeros(3), np.array([1.0, 0.0, 0.0]))
    views = []
    for i in range(4):
        distance = 1.2 + 0.5 * i
        angle = math.radians(-18.0 + 12.0 * i)
        views.append(PersonaView(
            f"U{i + 2}",
            np.array([distance * math.cos(angle), distance * math.sin(angle), 0.0]),
            abs(math.degrees(angle)),
        ))
    return camera, views


@dataclass
class OcclusionResult:
    """Triangles rendered with personas lined up vs spread out."""

    line_triangles: int
    spread_triangles: int
    occlusion_aware: bool

    def optimization_adopted(self) -> bool:
        """True when lining personas up reduced rendering work."""
        return self.line_triangles < 0.8 * self.spread_triangles


def run_occlusion(occlusion_aware: bool = False, seed: int = 0) -> OcclusionResult:
    """The line-vs-spread comparison under a configurable policy.

    ``occlusion_aware=False`` is the FaceTime behaviour the paper observes
    (no reduction); ``True`` is the A3 ablation.
    """
    policy = LodPolicy(occlusion_aware=occlusion_aware,
                       foveated_rendering=False)
    pipeline = RenderPipeline(policy=policy, seed=seed)
    line_cam, line_views = occlusion_scene()
    spread_cam, spread_views = spread_scene()
    line = pipeline.render_frame(0, line_cam, line_views)
    spread = pipeline.render_frame(0, spread_cam, spread_views)
    return OcclusionResult(line.triangles, spread.triangles, occlusion_aware)


# ---------------------------------------------------------------------------
# Negative results: bandwidth and CPU unchanged by visibility optimizations
# ---------------------------------------------------------------------------

@dataclass
class DeliveryInvarianceResult:
    """Stream rate and CPU time across the Fig. 5 scenarios."""

    stream_mbps: Dict[str, float]
    cpu_ms: Dict[str, float]

    def bandwidth_unchanged(self, tolerance: float = 0.05) -> bool:
        """Delivery rate does not depend on the receiver's view (Sec. 4.4)."""
        rates = list(self.stream_mbps.values())
        return (max(rates) - min(rates)) <= tolerance * max(rates)

    def cpu_unchanged(self, tolerance: float = 0.05) -> bool:
        """CPU time does not depend on visibility either."""
        times = list(self.cpu_ms.values())
        return (max(times) - min(times)) <= tolerance * max(times)


def run_delivery_invariance(seed: int = 0) -> DeliveryInvarianceResult:
    """Show delivery and CPU are visibility-oblivious in FaceTime's design.

    The sender's semantic stream is generated without any knowledge of the
    receiver's viewport, so its rate is identical across scenarios; the
    CPU decodes every received frame regardless of how the persona is
    rendered.
    """
    stream = SemanticSource(session_secret=b"x" * 32, seed=seed)
    per_frame_wire = stream.mean_frame_bytes + 41.0  # QUIC + UDP + IP
    rate = per_frame_wire * 8.0 * calibration.TARGET_FPS / 1e6
    rates: Dict[str, float] = {}
    cpu: Dict[str, float] = {}
    for index, name in enumerate(SCENARIOS):
        pipeline = RenderPipeline(seed=seed + index)
        camera, view = scenario_scene(name)
        frames = [
            pipeline.render_frame(i, camera, [view]) for i in range(200)
        ]
        rates[name] = rate  # sender is scenario-oblivious by construction
        cpu[name] = float(np.mean([f.cpu_ms for f in frames]))
    return DeliveryInvarianceResult(rates, cpu)
