"""Fig. 6 + Sec. 4.5: scalability of spatial personas, 2 to 5 users.

Two coupled measurements per user count:

- **Rendering** (Fig. 6(a)(b)): natural sessions through the attention
  model — rendered triangles, CPU ms, GPU ms per frame.
- **Network** (Fig. 6(c)): all-Vision-Pro FaceTime sessions through the
  SFU — per-client downlink throughput, which grows linearly because the
  server only forwards.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import calibration
from repro.analysis.stats import SummaryStats, summarize_samples
from repro.analysis.throughput import throughput_windows_mbps
from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.core.testbed import multi_user_testbed
from repro.netsim.capture import Direction
from repro.rendering.pipeline import RenderPipeline
from repro.vca.cohort import CohortRunner, SfuCohortResult, sfu_cohort_downlink
from repro.vca.profiles import PROFILES

USER_COUNTS = (2, 3, 4, 5)

#: SFU fan-outs of the batched what-if extension (Sec. "Batched
#: cohorts" of EXPERIMENTS.md) — far past the paper's 5-persona cap.
COHORT_FANOUTS = (50, 200, 500)

#: Datacenter NIC rate assumed for the what-if SFU (the testbed AP's
#: 300 Mbps would saturate at n ≈ 22 already).
COHORT_SERVER_GBPS = 10.0


@dataclass
class RenderScalability:
    """Fig. 6(a)(b) observables per user count."""

    triangles: Dict[int, SummaryStats]
    gpu_ms: Dict[int, SummaryStats]
    cpu_ms: Dict[int, SummaryStats]

    def format_table(self) -> str:
        """Printable Fig. 6(a)(b)."""
        lines = [
            "users  tri_mean  tri_p5   gpu mean±std  gpu_p95  cpu mean±std"
        ]
        for n in USER_COUNTS:
            t, g, c = self.triangles[n], self.gpu_ms[n], self.cpu_ms[n]
            lines.append(
                f"{n:5d}  {t.mean:8.0f}  {t.p5:7.0f}  "
                f"{g.mean:5.2f}±{g.std:4.2f}  {g.p95:7.2f}  "
                f"{c.mean:5.2f}±{c.std:4.2f}"
            )
        return "\n".join(lines)

    def gpu_approaches_deadline(self) -> bool:
        """At five users the GPU p95 nears the 11.1 ms budget (>9 ms)."""
        return self.gpu_ms[5].p95 > 9.0

    def triangles_grow_with_users(self) -> bool:
        """Mean rendered triangles increase monotonically."""
        means = [self.triangles[n].mean for n in USER_COUNTS]
        return all(a < b for a, b in zip(means, means[1:]))

    def p5_grows_slower_than_mean(self) -> bool:
        """Foveation flattens the lower tail from 3 to 5 users."""
        mean_growth = self.triangles[5].mean / self.triangles[3].mean
        p5_growth = self.triangles[5].p5 / max(self.triangles[3].p5, 1.0)
        return p5_growth < mean_growth


def measure_rendering_cell(
    n: int, duration_s: float, repeats: int, seed: int
) -> Tuple[SummaryStats, SummaryStats, SummaryStats]:
    """One user count's rendering counters — the unit of Fig. 6(a)(b) work."""
    tri_samples: List[float] = []
    gpu_samples: List[float] = []
    cpu_samples: List[float] = []
    for repeat in range(repeats):
        pipeline = RenderPipeline(seed=seed + repeat * 10 + n)
        frames = pipeline.render_session(
            [f"U{i + 2}" for i in range(n - 1)], duration_s=duration_s
        )
        tri_samples.extend(float(f.triangles) for f in frames)
        gpu_samples.extend(f.gpu_ms for f in frames)
        cpu_samples.extend(f.cpu_ms for f in frames)
    return (summarize_samples(tri_samples), summarize_samples(gpu_samples),
            summarize_samples(cpu_samples))


def _pack_rendering(result: Tuple[SummaryStats, ...]) -> List[Dict[str, float]]:
    return [dataclasses.asdict(stats) for stats in result]


def _unpack_rendering(
    payload: List[Dict[str, float]]
) -> Tuple[SummaryStats, SummaryStats, SummaryStats]:
    tri, gpu, cpu = (SummaryStats(**entry) for entry in payload)
    return tri, gpu, cpu


def run_rendering(duration_s: float = 60.0,
                  repeats: int = calibration.MIN_REPEATS,
                  seed: int = 0, jobs: int = 1,
                  cache: Optional[ResultCache] = None,
                  timeout: Optional[float] = None, retries: int = 1,
                  journal: Optional[RunJournal] = None, resume: bool = False,
                  manifest: Optional[RunManifest] = None) -> RenderScalability:
    """Render sessions for every user count and summarize the counters.

    User counts are independent seeded cells for the shared sweep runner
    (``jobs``/``cache``, plus the crash-safety knobs: ``timeout``
    watchdog, transient ``retries``, ``journal``/``resume``,
    ``manifest``).
    """
    tasks = [
        CellTask(
            name=f"fig6/render/n{n}",
            fn=measure_rendering_cell,
            kwargs={"n": n, "duration_s": duration_s, "repeats": repeats,
                    "seed": seed},
            pack=_pack_rendering,
            unpack=_unpack_rendering,
        )
        for n in USER_COUNTS
    ]
    triangles: Dict[int, SummaryStats] = {}
    gpu: Dict[int, SummaryStats] = {}
    cpu: Dict[int, SummaryStats] = {}
    for n, (tri, g, c) in zip(USER_COUNTS, run_tasks(
            tasks, jobs=jobs, cache=cache, retries=retries, timeout=timeout,
            journal=journal, resume=resume, manifest=manifest)):
        triangles[n], gpu[n], cpu[n] = tri, g, c
    return RenderScalability(triangles, gpu, cpu)


@dataclass
class NetworkScalability:
    """Fig. 6(c): per-client downlink throughput per user count."""

    downlink_mbps: Dict[int, SummaryStats]

    def format_table(self) -> str:
        """Printable Fig. 6(c)."""
        lines = ["users  downlink mean  p5     p95   (Mbps)"]
        for n in USER_COUNTS:
            s = self.downlink_mbps[n]
            lines.append(f"{n:5d}  {s.mean:13.2f}  {s.p5:5.2f}  {s.p95:5.2f}")
        return "\n".join(lines)

    def grows_linearly(self, tolerance: float = 0.25) -> bool:
        """Downlink ~ (n - 1) * per-stream rate (pure SFU forwarding)."""
        means = {n: self.downlink_mbps[n].mean for n in USER_COUNTS}
        per_stream = means[2]  # one remote stream at two users
        for n in USER_COUNTS:
            expected = (n - 1) * per_stream
            if abs(means[n] - expected) > tolerance * expected:
                return False
        return True


def measure_network_cell(n: int, duration_s: float, repeats: int,
                         seed: int) -> SummaryStats:
    """One user count's downlink summary — the unit of Fig. 6(c) work.

    The ``repeats`` independent sessions run as one batched cohort on a
    shared engine (:class:`~repro.vca.cohort.CohortRunner`).  Each lane
    is bit-identical to the scalar run it replaces, so the summaries —
    and any cached campaign CSVs — are unchanged.
    """
    facetime = PROFILES["FaceTime"]
    runner = CohortRunner()
    for repeat in range(repeats):
        testbed = multi_user_testbed(n)
        runner.add(
            lambda sim, tb=testbed, s=seed + repeat:
            tb.session(facetime, seed=s, sim=sim)
        )
    windows: List[float] = []
    for outcome in runner.run(duration_s):
        windows.extend(throughput_windows_mbps(
            outcome.capture_of("U1"), Direction.DOWNLINK
        ))
    return summarize_samples(windows)


def _pack_network(stats: SummaryStats) -> Dict[str, float]:
    return dataclasses.asdict(stats)


def _unpack_network(payload: Dict[str, float]) -> SummaryStats:
    return SummaryStats(**payload)


def run_network(duration_s: float = 20.0,
                repeats: int = calibration.MIN_REPEATS,
                seed: int = 0, jobs: int = 1,
                cache: Optional[ResultCache] = None,
                timeout: Optional[float] = None, retries: int = 1,
                journal: Optional[RunJournal] = None, resume: bool = False,
                manifest: Optional[RunManifest] = None) -> NetworkScalability:
    """All-Vision-Pro FaceTime sessions, 2-5 users, downlink at U1's AP."""
    tasks = [
        CellTask(
            name=f"fig6/network/n{n}",
            fn=measure_network_cell,
            kwargs={"n": n, "duration_s": duration_s, "repeats": repeats,
                    "seed": seed},
            pack=_pack_network,
            unpack=_unpack_network,
        )
        for n in USER_COUNTS
    ]
    return NetworkScalability(dict(zip(
        USER_COUNTS, run_tasks(
            tasks, jobs=jobs, cache=cache, retries=retries, timeout=timeout,
            journal=journal, resume=resume, manifest=manifest)
    )))


@dataclass
class CohortScalability:
    """The batched fig6 extension: SFU fan-outs past the persona cap.

    One :class:`~repro.vca.cohort.SfuCohortResult` per fan-out, plus the
    per-client downlink summary the Fig. 6(c) table reports.  Produced
    by the vectorized cohort fast path, so hundreds of participants run
    in one process in seconds.
    """

    fanouts: Tuple[int, ...]
    server_gbps: float
    downlink_mbps: Dict[int, SummaryStats]
    results: Dict[int, SfuCohortResult]

    def format_table(self) -> str:
        """Printable fleet table for the extended fan-outs."""
        lines = [
            f"SFU what-if at {self.server_gbps:.0f} Gbit/s "
            "(batched cohort engine)",
            "users  downlink mean  p5      p95     egress   drop(out)",
        ]
        for n in self.fanouts:
            s = self.downlink_mbps[n]
            r = self.results[n]
            lines.append(
                f"{n:5d}  {s.mean:13.2f}  {s.p5:6.2f}  {s.p95:7.2f}  "
                f"{r.delivered_egress_mbps:7.0f}  {r.egress_drop_rate:8.3f}"
            )
        return "\n".join(lines)

    def knee_fanout(self) -> float:
        """Fan-out where quadratic egress meets the server NIC.

        Per-upload rate u and n participants offer ``n*(n-1)*u`` of
        egress; the knee is where that meets the NIC rate.
        """
        per_stream = calibration.SPATIAL_PERSONA_MBPS
        return float(0.5 + np.sqrt(0.25 + self.server_gbps * 1000.0
                                   / per_stream))

    def saturates_at_largest(self) -> bool:
        """Whether the largest fan-out drove the SFU into drops."""
        return self.results[max(self.fanouts)].saturated


def run_network_cohort(
    fanouts: Tuple[int, ...] = COHORT_FANOUTS,
    duration_s: float = 12.0,
    seed: int = 0,
    server_gbps: float = COHORT_SERVER_GBPS,
) -> CohortScalability:
    """Fig. 6(c) past the cap: 50/200/500-participant SFU cohorts.

    Runs the struct-of-arrays fast path (validated against the
    event-driven oracle at n = 2..5 by the batch-equivalence suite) for
    each fan-out and collects fleet aggregates: per-client downlink
    windows, SFU ingress/egress rates, and drop behaviour past the
    saturation knee.
    """
    downlink: Dict[int, SummaryStats] = {}
    results: Dict[int, SfuCohortResult] = {}
    for n in fanouts:
        result = sfu_cohort_downlink(
            n, duration_s, seed=seed, server_gbps=server_gbps
        )
        results[n] = result
        downlink[n] = result.downlink_summary()
    return CohortScalability(
        fanouts=tuple(fanouts),
        server_gbps=server_gbps,
        downlink_mbps=downlink,
        results=results,
    )
