"""Displayed frame rate vs. user count (the Sec. 3.2 frame-rate metric).

The paper measures "Frame Rate and Rendering Time for Each Frame" and
links the five-persona cap to the GPU approaching the 11.1 ms deadline
(Sec. 4.5).  This experiment closes that loop: run the natural sessions,
push the per-frame GPU times through the vsync scheduler, and report the
*displayed* FPS plus a what-if at six users (one past the cap) showing why
FaceTime stops at five.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import calibration
from repro.rendering.framerate import FrameRateReport, analyze_frame_rate
from repro.rendering.pipeline import RenderPipeline


@dataclass
class FrameRateScalability:
    """Displayed-FPS reports per user count."""

    reports: Dict[int, FrameRateReport]

    def format_table(self) -> str:
        """Printable table."""
        lines = ["users  effective_fps  miss_rate  worst_run"]
        for n, report in sorted(self.reports.items()):
            lines.append(
                f"{n:5d}  {report.effective_fps:13.1f}  "
                f"{report.miss_rate:9.3f}  {report.worst_consecutive_misses:9d}"
            )
        return "\n".join(lines)

    def degrades_monotonically(self) -> bool:
        """Displayed FPS must not improve as personas are added."""
        fps = [r.effective_fps for _, r in sorted(self.reports.items())]
        return all(a >= b - 0.5 for a, b in zip(fps, fps[1:]))

    def cap_is_justified(self, cap: int = calibration.MAX_SPATIAL_PERSONAS
                         ) -> bool:
        """The what-if past the cap degrades markedly more than at it."""
        over = self.reports.get(cap + 1)
        at = self.reports.get(cap)
        if over is None or at is None:
            return False
        return over.miss_rate > 2.0 * max(at.miss_rate, 0.005)


def run(duration_s: float = 40.0, seed: int = 0,
        include_over_cap: bool = True) -> FrameRateScalability:
    """Measure displayed FPS for 2-5 users, plus the 6-user what-if."""
    counts = [2, 3, 4, 5] + ([6] if include_over_cap else [])
    reports = {}
    for n in counts:
        pipeline = RenderPipeline(seed=seed + n)
        frames = pipeline.render_session(
            [f"U{i + 2}" for i in range(n - 1)], duration_s=duration_s
        )
        reports[n] = analyze_frame_rate(frames)
    return FrameRateScalability(reports)
