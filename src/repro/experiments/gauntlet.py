"""Fleet-scale fault gauntlet: correlated domains x policies x fleets.

The resilience study (PR 1) answers "how does one session ride out its
own faults"; this campaign answers the operator's question — **what does
a correlated incident do to a fleet, and how well do the server-side
defenses contain it?**  It sweeps the fault-domain catalog
(:mod:`repro.faults.domains`) against server-selection policies and
fleet sizes, with admission control, QoE-aware load shedding, and
failover re-assignment (:mod:`repro.geo.servers`) active, and reports
recovery metrics against a fault-free twin of every cell.

Two engines, one campaign surface:

* the **fleet engine** (:func:`evaluate_fleet_cell`) scores thousands of
  geo-distributed sessions per cell on a per-tick timeline: domain
  events expand to dense impairment arrays (one vectorized fan-out per
  event), down servers trigger failover re-assignment to the
  next-feasible server, over-capacity servers shed their
  cheapest-regret sessions, and per-session QoE runs through the
  placement delay-factor objective;
* the **cohort engine** (:func:`run_cohort`) drives full
  :class:`~repro.vca.session.TelepresenceSession` objects on the batch
  simulator with :class:`~repro.faults.cohort.CohortInjector` arming a
  whole cohort's fault schedules in grouped cohort events.  A cohort of
  one with the ``standard`` scenario reproduces the scalar resilience
  path byte for byte (``tests/test_gauntlet.py`` ``cmp``'s the CSVs).

Every (scenario, policy, fleet-size) cell is one :class:`CellTask` on
the shared campaign runner — parallel, cached, resumable, and
distributable like every other sweep in the package.  All randomness
flows through :func:`~repro.faults.schedule.derive_seed`, so a cell is
bit-identical serial, pooled, or on a remote worker.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.faults.domains import (
    DomainPlan,
    build_plan,
    impairment_timeline,
    lane_schedules,
    scenario_names,
    server_down_timeline,
)
from repro.faults.resilient import ResilienceConfig
from repro.faults.schedule import derive_seed, standard_disturbance
from repro.geo.coords import latlon_arrays
from repro.geo.demand import DemandModel
from repro.geo.latency import PathModel
from repro.geo.placement import global_candidate_sites, optimize_placement
from repro.geo.policy import get_policy, policy_names, AssignmentContext
from repro.geo.servers import failover_assignment, shed_overload
from repro.obs import metrics as obs_metrics
from repro.vca.qoe import delay_factor_arrays

#: Victim / observer roles of the cohort engine's two-user sessions —
#: the same roles the scalar resilience study uses.
VICTIM = "U2"
OBSERVER = "U1"

#: The cohort engine's extra scenario: the scripted five-fault
#: disturbance of the scalar resilience study, one copy per lane.
STANDARD_SCENARIO = "standard"

#: Default fleet sizes (sessions per cell) swept by :func:`run`.
DEFAULT_FLEET_SIZES: Tuple[int, ...] = (50, 200)


def _world_seed(seed: int, scenario: str, n_sessions: int) -> int:
    """Stable per-(scenario, fleet) seed — deliberately *policy-free*.

    Every policy in a sweep faces the identical demand sample, session
    grouping, and domain-event plan; only the assignment differs.  That
    is what makes the policy columns of one gauntlet row comparable.
    (sha256; ``hash()`` is process-salted.)
    """
    digest = hashlib.sha256(
        f"gauntlet-{seed}-{scenario}-{n_sessions}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "little")


def lane_seed(seed: int, lane: int) -> int:
    """Per-lane session seed: lane 0 keeps ``seed`` verbatim (scalar
    anchoring), lane ``i > 0`` derives an independent stream."""
    return seed if lane == 0 else derive_seed(seed, "lane", lane)


# ----------------------------------------------------------------------
# The fleet engine
# ----------------------------------------------------------------------


def _fleet_timeline(
    plan: DomainPlan,
    ticks: np.ndarray,
    rtt_sessions: np.ndarray,
    baseline: np.ndarray,
    server_regions: np.ndarray,
    session_size: int,
    capacity_factor: float,
) -> Dict[str, np.ndarray]:
    """Advance one fleet through one plan, tick by tick.

    Per tick: region outages mark servers down, displaced sessions fail
    over to the next-feasible up server, over-capacity servers shed
    their cheapest-QoE-regret sessions, and every surviving session is
    scored ``delay_factor(worst one-way + brownout delay) x WiFi rate``.
    Assignment is memoryless — each tick re-derives from the baseline —
    so sessions fail *back* the tick their server returns (reconnects
    are below tick granularity).  The fault-free twin runs this same
    code with an empty plan.
    """
    n_sessions, n_servers = rtt_sessions.shape
    rows = np.arange(n_sessions)
    down = server_down_timeline(plan.events, server_regions, ticks)
    imp = impairment_timeline(plan, ticks)
    capacity = capacity_factor * n_sessions * session_size / n_servers
    qoe = np.zeros((len(ticks), n_sessions))
    interactivity = np.zeros((len(ticks), n_sessions))
    presence = np.zeros((len(ticks), n_sessions))
    shed = np.zeros((len(ticks), n_sessions), dtype=bool)
    failovers = 0
    previous = baseline
    for t in range(len(ticks)):
        up_t = ~down[t]
        load_t = session_size * imp.load[t]
        a_t, _ = failover_assignment(rtt_sessions, baseline, up_t)
        a_t, shed_t, _ = shed_overload(rtt_sessions, a_t, up_t,
                                       capacity, load_t)
        safe = np.where(a_t >= 0, a_t, 0)
        delay = rtt_sessions[rows, safe] / 2.0 + imp.delay_ms[t]
        served = a_t >= 0
        # The fleet objective factors into two QoE dimensions: delay ->
        # interactivity, access-rate collapse -> presence.  Their
        # product reproduces the scalar qoe surface bit for bit.
        interactivity[t] = np.where(served, delay_factor_arrays(delay),
                                    0.0)
        presence[t] = np.where(served, imp.wifi_rate[t], 0.0)
        qoe[t] = interactivity[t] * presence[t]
        shed[t] = shed_t | (a_t < 0)
        failovers += int((a_t != previous).sum())
        previous = a_t
    return {"qoe": qoe, "shed": shed,
            "interactivity": interactivity, "presence": presence,
            "failovers": np.int64(failovers)}


def evaluate_fleet_cell(
    scenario: str,
    policy: str,
    n_sessions: int,
    seed: int,
    duration_s: float = 120.0,
    tick_s: float = 1.0,
    k: int = 6,
    regions: Optional[int] = 12,
    session_size: int = 3,
    capacity_factor: float = 1.2,
    backbone_speedup: float = 2.0,
    site_step_deg: float = 8.0,
    t_utc_h: float = 14.0,
) -> Dict[str, object]:
    """One (scenario, policy, fleet-size) cell, scored against its twin.

    Builds the fleet the way the placement study does — seeded demand,
    optimized k-placement, policy-assigned sessions — then runs the
    domain plan and its fault-free twin through :func:`_fleet_timeline`
    and reports the recovery metrics as a JSON-safe record.

    The gauntlet tracks each session's *initiator relay* (the policy's
    assignment for member 0); per-relay refinements of multi-relay
    policies stay with the placement study.
    """
    del backbone_speedup  # sessions collapse to the initiator relay here
    if scenario not in scenario_names():
        raise KeyError(
            f"unknown scenario {scenario!r} (known: {scenario_names()})")
    if n_sessions < 1:
        raise ValueError("need at least one session")
    if tick_s <= 0 or duration_s <= 0:
        raise ValueError("duration and tick must be positive")
    world_seed = _world_seed(seed, scenario, n_sessions)
    demand = DemandModel.default(max_regions=regions)
    model = PathModel()

    # The fleet: demand-weighted placement, policy-assigned sessions.
    points, weights = demand.demand_points([t_utc_h])
    placement = optimize_placement(
        k, clients=points, model=model, weights=weights,
        sites=global_candidate_sites(site_step_deg),
    )
    s_lat, s_lon = latlon_arrays(placement.servers)
    sample = demand.sample_users(n_sessions * session_size, t_utc_h,
                                 seed=world_seed)
    rtt_us = model.base_rtt_ms_arrays(
        sample.lat[:, None], sample.lon[:, None],
        s_lat[None, :], s_lon[None, :],
    )
    backbone = model.propagation_rtt_ms_arrays(
        s_lat[:, None], s_lon[:, None], s_lat[None, :], s_lon[None, :]
    )
    rng = np.random.default_rng(world_seed)
    order = rng.permutation(len(sample))
    sessions = order[:n_sessions * session_size].reshape(
        n_sessions, session_size)
    member_assignment = get_policy(policy).assign(
        AssignmentContext(rtt_us, sessions, backbone))
    baseline = member_assignment[:, 0].astype(np.int64)
    # Session-level surfaces: worst-member RTT to each server, the
    # initiator's demand region as the session's fault-domain home.
    rtt_sessions = rtt_us[sessions].max(axis=1)
    session_regions = sample.region_index[sessions[:, 0]]
    server_regions = np.array([
        int(np.argmin([site.distance_km(region.location)
                       for region in demand.regions]))
        for site in placement.servers
    ])

    ticks = np.arange(0.0, duration_s, tick_s)
    plan = build_plan(scenario, world_seed, duration_s, session_regions,
                      n_regions=len(demand.regions))
    twin_plan = build_plan("none", world_seed, duration_s, session_regions,
                           n_regions=len(demand.regions))
    faulted = _fleet_timeline(plan, ticks, rtt_sessions, baseline,
                              server_regions, session_size,
                              capacity_factor)
    twin = _fleet_timeline(twin_plan, ticks, rtt_sessions, baseline,
                           server_regions, session_size, capacity_factor)

    degraded = faulted["qoe"] < twin["qoe"] - 1e-12
    ever = degraded.any(axis=0)
    if ever.any():
        sub = degraded[:, ever]
        first = np.argmax(sub, axis=0)
        last = len(ticks) - 1 - np.argmax(sub[::-1], axis=0)
        ttr = (last - first + 1) * tick_s
        recovered = ~sub[-1]
        recovered_fraction = float(recovered.mean())
        ttr_stats = (float(ttr.mean()), float(np.percentile(ttr, 50)),
                     float(np.percentile(ttr, 95)), float(ttr.max()))
    else:
        recovered_fraction = 1.0
        ttr_stats = (0.0, 0.0, 0.0, 0.0)

    obs_metrics.counter("gauntlet.cells").inc()
    obs_metrics.counter("gauntlet.sessions_scored").inc(n_sessions)
    obs_metrics.counter("gauntlet.domain_events").inc(len(plan.events))
    return {
        "scenario": scenario,
        "policy": policy,
        "n_sessions": int(n_sessions),
        "seed": int(seed),
        "duration_s": float(duration_s),
        "tick_s": float(tick_s),
        "k": int(k),
        "events": len(plan.events),
        "peak_degraded_fraction": float(degraded.mean(axis=1).max(
            initial=0.0)),
        "mean_degraded_fraction": float(degraded.mean()),
        "ever_degraded_fraction": float(ever.mean()),
        "peak_shed_fraction": float(faulted["shed"].mean(axis=1).max(
            initial=0.0)),
        "ever_shed_fraction": float(faulted["shed"].any(axis=0).mean()),
        "failovers": int(faulted["failovers"]),
        "ttr_mean_s": ttr_stats[0],
        "ttr_p50_s": ttr_stats[1],
        "ttr_p95_s": ttr_stats[2],
        "ttr_max_s": ttr_stats[3],
        "recovered_fraction": recovered_fraction,
        "qoe_mean": float(faulted["qoe"].mean()),
        "qoe_twin_mean": float(twin["qoe"].mean()),
        "qoe_delta": float(faulted["qoe"].mean() - twin["qoe"].mean()),
        # Multi-dimensional view (repro.vca.qoe.QoeVector semantics):
        # the fleet engine exercises interactivity (delay) and presence
        # (access collapse / shedding); fidelity and comfort have no
        # fleet-level observable and stay 1.0.  Extra key only — the CSV
        # column set (FIELDS) is unchanged.
        "qoe_vector": {
            "interactivity": float(faulted["interactivity"].mean()),
            "presence": float(faulted["presence"].mean()),
            "fidelity": 1.0,
            "comfort": 1.0,
            "aggregate": float(faulted["qoe"].mean()),
        },
    }


# ----------------------------------------------------------------------
# The cohort engine (full sessions on the batch simulator)
# ----------------------------------------------------------------------

#: CSV columns of one cohort lane's outcome — the scalar resilience
#: study's observables plus the lane identity, so a cohort-of-1 CSV is
#: byte-comparable against the scalar path.
LANE_FIELDS: Tuple[str, ...] = (
    "lane", "profile", "persona", "p2p", "mos_mean", "total_stall_s",
    "mean_ttr_s", "max_ttr_s", "failovers", "top_rung_fraction",
    "audio_only_fraction", "recovered",
)


def run_cohort(
    profile_name: str,
    n_lanes: int,
    duration_s: float = 30.0,
    seed: int = 0,
    scenario: str = STANDARD_SCENARIO,
    regions: int = 3,
    config: Optional[ResilienceConfig] = None,
) -> List[Dict[str, object]]:
    """Run ``n_lanes`` full sessions through one fault scenario, batched.

    Every lane hosts an unmodified two-user session of ``profile_name``
    on one shared :class:`~repro.netsim.batch.BatchSimulator`; the
    deferred :class:`~repro.faults.cohort.CohortInjector` arms all fault
    schedules at once, grouping identical domain events across lanes
    into single cohort apply/revert pairs.

    Scenarios: :data:`STANDARD_SCENARIO` gives every lane the scalar
    study's scripted five-fault disturbance (lane 0 with the verbatim
    base seed — the cohort-of-1 ``cmp`` anchor); any
    :mod:`~repro.faults.domains` scenario assigns lanes round-robin to
    ``regions`` demand regions and realizes the sampled domain plan as
    per-lane schedules.
    """
    from repro.core.testbed import default_two_user_testbed
    from repro.faults.cohort import CohortInjector
    from repro.vca.cohort import CohortRunner
    from repro.vca.profiles import PROFILES

    if n_lanes < 1:
        raise ValueError("need at least one lane")
    profile = PROFILES[profile_name]
    if scenario == STANDARD_SCENARIO:
        schedules = [standard_disturbance(duration_s, victim=VICTIM)
                     for _ in range(n_lanes)]
    else:
        lane_regions = np.arange(n_lanes) % max(1, regions)
        plan = build_plan(scenario, seed, duration_s, lane_regions,
                          n_regions=max(1, regions))
        schedules = lane_schedules(plan, VICTIM)

    runner = CohortRunner()
    injector = CohortInjector.of(runner.batch, deferred=True)
    for lane in range(n_lanes):
        testbed = default_two_user_testbed()
        runner.add(
            lambda sim, lane=lane: testbed.session(
                profile, seed=lane_seed(seed, lane),
                faults=schedules[lane],
                resilience=config or ResilienceConfig(),
                sim=sim,
            )
        )
    injector.seal()
    results = runner.run(duration_s)

    rows: List[Dict[str, object]] = []
    for lane, result in enumerate(results):
        resilience = result.resilience
        if resilience is not None:
            report = resilience.report(OBSERVER, VICTIM)
            occupancy = resilience.ladders[VICTIM].occupancy_fractions(
                duration_s)
            from repro.faults.ladder import LadderLevel
            row = {
                "mos_mean": report.mos_mean,
                "total_stall_s": report.total_stall_s,
                "mean_ttr_s": report.mean_ttr_s,
                "max_ttr_s": report.max_ttr_s,
                "failovers": resilience.reconnects,
                "top_rung_fraction": occupancy.get(
                    LadderLevel.TEXTURED_MESH, 0.0),
                "audio_only_fraction": occupancy.get(
                    LadderLevel.AUDIO_ONLY, 0.0),
                "recovered": report.all_recovered,
            }
        else:
            # An uncovered lane (no faults scheduled): vacuously healthy.
            row = {"mos_mean": 0.0, "total_stall_s": 0.0,
                   "mean_ttr_s": 0.0, "max_ttr_s": 0.0, "failovers": 0,
                   "top_rung_fraction": 1.0, "audio_only_fraction": 0.0,
                   "recovered": True}
        rows.append({
            "lane": lane,
            "profile": profile_name,
            "persona": result.persona_kind.value,
            "p2p": result.p2p,
            **row,
        })
    return rows


def scalar_lane_row(
    profile_name: str,
    duration_s: float = 30.0,
    seed: int = 0,
    config: Optional[ResilienceConfig] = None,
) -> Dict[str, object]:
    """Lane 0's row computed by the *scalar* resilience path.

    The ``cmp`` reference of the acceptance criterion: a cohort-of-1
    ``standard`` gauntlet CSV must equal this row's CSV byte for byte.
    """
    from repro.experiments import resilience as resilience_study

    row, _ = resilience_study.run_profile(
        profile_name, duration_s=duration_s, seed=seed, config=config)
    return {
        "lane": 0,
        "profile": profile_name,
        "persona": row.persona,
        "p2p": row.p2p,
        "mos_mean": row.mos_mean,
        "total_stall_s": row.total_stall_s,
        "mean_ttr_s": row.mean_ttr_s,
        "max_ttr_s": row.max_ttr_s,
        "failovers": row.failovers,
        "top_rung_fraction": row.top_rung_fraction,
        "audio_only_fraction": row.audio_only_fraction,
        "recovered": row.recovered,
    }


def lane_rows_to_csv(rows: Sequence[Dict[str, object]],
                     path: Union[str, Path]) -> None:
    """Write cohort lane rows with the shared column order."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(LANE_FIELDS)
        for row in rows:
            writer.writerow([row[field] for field in LANE_FIELDS])


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------


@dataclass
class GauntletResult:
    """The scenario x policy x fleet-size recovery surface."""

    records: List[Dict[str, object]]

    FIELDS = ("scenario", "policy", "n_sessions", "events",
              "peak_degraded_fraction", "mean_degraded_fraction",
              "ever_degraded_fraction", "peak_shed_fraction",
              "ever_shed_fraction", "failovers", "ttr_mean_s",
              "ttr_p50_s", "ttr_p95_s", "ttr_max_s",
              "recovered_fraction", "qoe_mean", "qoe_twin_mean",
              "qoe_delta")

    def record(self, scenario: str, policy: str,
               n_sessions: int) -> Dict[str, object]:
        """The record of one cell."""
        for record in self.records:
            if (record["scenario"] == scenario
                    and record["policy"] == policy
                    and record["n_sessions"] == n_sessions):
                return record
        raise KeyError(
            f"no record for ({scenario!r}, {policy!r}, n={n_sessions})")

    def scenarios(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record["scenario"] not in seen:
                seen.append(str(record["scenario"]))
        return seen

    def worst(self) -> Dict[str, object]:
        """The cell with the largest QoE loss against its twin."""
        return min(self.records, key=lambda r: r["qoe_delta"])

    def format_table(self) -> str:
        """Printable recovery surface."""
        lines = [
            "scenario       policy              n     ev  degr%  shed%"
            "  failov  ttr_p95  recov%  qoe_delta"
        ]
        for r in self.records:
            lines.append(
                f"{str(r['scenario']):13s}  {str(r['policy']):18s}"
                f"  {r['n_sessions']:4d}  {r['events']:3d}"
                f"  {r['peak_degraded_fraction']:5.0%}"
                f"  {r['peak_shed_fraction']:5.0%}"
                f"  {r['failovers']:6d}  {r['ttr_p95_s']:7.1f}"
                f"  {r['recovered_fraction']:6.0%}"
                f"  {r['qoe_delta']:+9.4f}"
            )
        return "\n".join(lines)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Export the flat per-cell records."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.FIELDS)
            for record in self.records:
                writer.writerow([record[f] for f in self.FIELDS])


def run(
    scenarios: Sequence[str] = ("region-outage", "mixed"),
    policies: Optional[Sequence[str]] = None,
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    seed: int = 0,
    duration_s: float = 120.0,
    tick_s: float = 1.0,
    k: int = 6,
    regions: Optional[int] = 12,
    session_size: int = 3,
    capacity_factor: float = 1.2,
    site_step_deg: float = 8.0,
    t_utc_h: float = 14.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    manifest: Optional[RunManifest] = None,
    progress=None,
) -> GauntletResult:
    """Sweep scenarios x policies x fleet sizes on the campaign runner.

    Each cell is a pure function of its arguments, so the sweep shards
    over ``jobs`` processes, replays from ``cache``, checkpoints into
    ``journal`` and resumes byte-identically — the gauntlet acceptance
    criterion.  Crash-safety knobs behave as in every other sweep.
    """
    for scenario in scenarios:
        if scenario not in scenario_names():
            raise KeyError(f"unknown scenario {scenario!r} "
                           f"(known: {scenario_names()})")
    chosen_policies = list(policies) if policies else list(policy_names())
    for name in chosen_policies:
        get_policy(name)  # fail fast on unknown names
    sizes = sorted(set(int(n) for n in fleet_sizes))
    if not sizes or sizes[0] < 1:
        raise ValueError("fleet_sizes must contain positive session counts")
    tasks = [
        CellTask(
            name=f"gauntlet/{scenario}/{policy}/n{n}",
            fn=evaluate_fleet_cell,
            kwargs={
                "scenario": scenario, "policy": policy, "n_sessions": n,
                "seed": seed, "duration_s": duration_s, "tick_s": tick_s,
                "k": k, "regions": regions, "session_size": session_size,
                "capacity_factor": capacity_factor,
                "site_step_deg": site_step_deg, "t_utc_h": t_utc_h,
            },
        )
        for scenario in scenarios
        for policy in chosen_policies
        for n in sizes
    ]
    records = run_tasks(
        tasks, jobs=jobs, cache=cache, retries=retries, timeout=timeout,
        journal=journal, resume=resume, manifest=manifest,
        progress=progress,
    )
    return GauntletResult(records)
