"""Placement study: searching server placements x selection policies.

Table 1 shows what one policy (initiator-nearest) over one placement (the
reverse-engineered US fleets) does to eight vantage cities.  This driver
turns that single observation into an explorable design space at planetary
scale — the simulate -> evaluate -> optimize loop of ROADMAP item 3:

1. **simulate** demand: the global region catalog emits millions of
   seeded users per UTC epoch (diurnal load + flash crowds,
   :mod:`repro.geo.demand`);
2. **optimize** placement: the vectorized k-median searches a global
   candidate lattice against the time-averaged demand surface
   (:mod:`repro.geo.placement`);
3. **evaluate** policies: every registered server-selection policy
   (:mod:`repro.geo.policy`) assigns the sampled sessions, and each
   (policy, k) cell scores a joint QoE + cost objective built on the
   paper's 100 ms one-way threshold (:mod:`repro.vca.qoe`).

Each (policy, k) pair is one cell on the shared campaign runner, so
sweeps are parallel, cached, resumable, and distributable like every
other experiment in the package.  Same seed -> same planet -> identical
records, byte for byte.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.geo.coords import latlon_arrays
from repro.geo.demand import DemandModel
from repro.geo.latency import PathModel
from repro.geo.placement import global_candidate_sites, optimize_placement
from repro.geo.policy import (
    AssignmentContext,
    get_policy,
    policy_names,
    session_worst_one_way_ms,
)
from repro.obs import metrics as obs_metrics
from repro.vca.qoe import ONE_WAY_DELAY_THRESHOLD_MS, delay_factor_arrays

#: Default UTC sampling epochs: a trough, two shoulders, and a peak as
#: seen from the Americas/Europe/Asia population centers.
DEFAULT_EPOCHS: Tuple[float, ...] = (2.0, 8.0, 14.0, 20.0)

#: Default server counts searched when the CLI gives no --k-range.
DEFAULT_K_RANGE: Tuple[int, ...] = (2, 4, 8)

#: Cost units per deployed server site (relative accounting — only
#: ratios between cells matter to the objective).
SERVER_COST_UNIT = 1.0
#: Extra per-server cost when sessions span relays (the private-backbone
#: interconnect of Sec. 4.1's remedy has to exist and be provisioned).
BACKBONE_COST_UNIT = 0.5
#: Objective trade-off: QoE points sacrificed per cost unit.
DEFAULT_COST_WEIGHT = 0.01


def _cell_seed(seed: int, policy: str, k: int) -> int:
    """Stable per-cell seed (sha256, not hash(): salted str hashing would
    break cross-process determinism)."""
    digest = hashlib.sha256(f"placement-{seed}-{policy}-{k}".encode()).digest()
    return int.from_bytes(digest[:4], "little")


def evaluate_cell(
    policy: str,
    k: int,
    users: int,
    seed: int,
    epochs: Sequence[float] = DEFAULT_EPOCHS,
    regions: Optional[int] = None,
    session_size: int = 3,
    backbone_speedup: float = 2.0,
    flash_count: int = 3,
    site_step_deg: float = 4.0,
    cost_weight: float = DEFAULT_COST_WEIGHT,
) -> Dict[str, object]:
    """One (policy, k) cell: optimize a placement, score the policy on it.

    Returns a JSON-safe record; the unit of work for the campaign runner.
    """
    if users < session_size:
        raise ValueError("users must cover at least one session")
    if session_size < 2:
        raise ValueError("sessions need at least two participants")
    cell_seed = _cell_seed(seed, policy, k)
    demand = DemandModel.default(max_regions=regions, flash_seed=cell_seed,
                                 flash_count=flash_count)
    model = PathModel()

    # --- optimize: search the global lattice against averaged demand.
    points, weights = demand.demand_points(list(epochs))
    placement = optimize_placement(
        k, clients=points, model=model, weights=weights,
        sites=global_candidate_sites(site_step_deg),
    )
    s_lat, s_lon = latlon_arrays(placement.servers)
    backbone = model.propagation_rtt_ms_arrays(
        s_lat[:, None], s_lon[:, None], s_lat[None, :], s_lon[None, :]
    )

    # --- simulate + evaluate, epoch by epoch.
    selection = get_policy(policy)
    per_epoch: List[Dict[str, float]] = []
    qoe_all: List[np.ndarray] = []
    delay_all: List[np.ndarray] = []
    multi_relay = 0
    sessions_total = 0
    users_per_epoch = max(session_size, users // len(epochs))
    for epoch_index, t_utc in enumerate(epochs):
        sample = demand.sample_users(users_per_epoch, float(t_utc),
                                     seed=cell_seed + 7919 * epoch_index)
        rtt_us = model.base_rtt_ms_arrays(
            sample.lat[:, None], sample.lon[:, None],
            s_lat[None, :], s_lon[None, :],
        )
        rng = np.random.default_rng(cell_seed + 104729 * epoch_index)
        order = rng.permutation(len(sample))
        n_sessions = len(sample) // session_size
        sessions = order[:n_sessions * session_size].reshape(
            n_sessions, session_size)
        ctx = AssignmentContext(rtt_us, sessions, backbone)
        assignment = selection.assign(ctx)
        worst_ms = session_worst_one_way_ms(ctx, assignment,
                                            backbone_speedup)
        qoe = delay_factor_arrays(worst_ms)
        qoe_all.append(qoe)
        delay_all.append(worst_ms)
        multi_relay += int((assignment.max(axis=1)
                            > assignment.min(axis=1)).sum())
        sessions_total += n_sessions
        per_epoch.append({
            "t_utc_h": float(t_utc),
            "sessions": n_sessions,
            "qoe_mean": float(qoe.mean()),
            "worst_one_way_p95_ms": float(np.percentile(worst_ms, 95)),
        })
        obs_metrics.counter("geo.study.sessions_scored").inc(n_sessions)
    obs_metrics.counter("geo.study.cells").inc()

    qoe_flat = np.concatenate(qoe_all)
    delay_flat = np.concatenate(delay_all)
    multi_relay_fraction = multi_relay / sessions_total
    # Cost: server sites, plus backbone interconnect if the policy
    # actually splits sessions across relays.
    cost = k * SERVER_COST_UNIT
    if multi_relay_fraction > 0:
        cost += k * BACKBONE_COST_UNIT
    qoe_mean = float(qoe_flat.mean())
    return {
        "policy": policy,
        "k": int(k),
        "users": int(users),
        "sessions": int(sessions_total),
        "qoe_mean": qoe_mean,
        "qoe_p5": float(np.percentile(qoe_flat, 5)),
        "worst_one_way_p95_ms": float(np.percentile(delay_flat, 95)),
        "meets_threshold_fraction": float(
            (delay_flat <= ONE_WAY_DELAY_THRESHOLD_MS).mean()),
        "multi_relay_fraction": float(multi_relay_fraction),
        "cost_units": float(cost),
        "objective": float(qoe_mean - cost_weight * cost),
        # Multi-dimensional view (repro.vca.qoe.QoeVector semantics):
        # placement exercises only the interactivity dimension — the
        # delay factor *is* its QoE objective; the other dimensions have
        # no placement-level observable and stay 1.0.  Extra key only —
        # the CSV column set (FIELDS) is unchanged.
        "qoe_vector": {
            "interactivity": qoe_mean,
            "presence": 1.0,
            "fidelity": 1.0,
            "comfort": 1.0,
            "aggregate": qoe_mean,
        },
        "mean_rtt_to_placement_ms": float(placement.mean_rtt_ms),
        "optimizer_rounds": int(placement.rounds),
        "optimizer_swaps": int(placement.exchange_swaps),
        "placed_sites": [s.name for s in placement.servers],
        "per_epoch": per_epoch,
    }


@dataclass
class PlacementStudyResult:
    """The policy x placement design space, scored."""

    records: List[Dict[str, object]]

    FIELDS = ("policy", "k", "users", "sessions", "qoe_mean", "qoe_p5",
              "worst_one_way_p95_ms", "meets_threshold_fraction",
              "multi_relay_fraction", "cost_units", "objective",
              "mean_rtt_to_placement_ms")

    def record(self, policy: str, k: int) -> Dict[str, object]:
        """The record of one (policy, k) cell."""
        for record in self.records:
            if record["policy"] == policy and record["k"] == k:
                return record
        raise KeyError(f"no record for ({policy!r}, k={k})")

    def policies(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record["policy"] not in seen:
                seen.append(str(record["policy"]))
        return seen

    def k_values(self) -> List[int]:
        return sorted({int(record["k"]) for record in self.records})

    def best(self) -> Dict[str, object]:
        """The record maximizing the QoE + cost objective."""
        return max(self.records, key=lambda r: r["objective"])

    def initiator_penalty(self, k: Optional[int] = None) -> float:
        """QoE lost to initiator-nearest vs client-nearest at one k.

        The planetary-scale restatement of the paper's Table 1 finding;
        positive means the observed policy is leaving QoE on the table.
        """
        k = k if k is not None else max(self.k_values())
        observed = self.record("initiator-nearest", k)
        remedy = self.record("client-nearest", k)
        return float(remedy["qoe_mean"]) - float(observed["qoe_mean"])

    def format_table(self) -> str:
        """policy x k matrix of QoE (objective) cells."""
        ks = self.k_values()
        header = "policy             | " + " | ".join(
            f"k={k}: QoE (obj)" for k in ks)
        lines = [header, "-" * len(header)]
        for policy in self.policies():
            cells = []
            for k in ks:
                try:
                    r = self.record(policy, k)
                    cells.append(f"{r['qoe_mean']:.3f} ({r['objective']:+.3f})")
                except KeyError:
                    cells.append("--")
            lines.append(f"{policy:18s} | " + " | ".join(
                f"{c:>15s}" for c in cells))
        return "\n".join(lines)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Export the flat per-cell records."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.FIELDS)
            for record in self.records:
                writer.writerow([record[f] for f in self.FIELDS])


def run(
    users: int = 100_000,
    policies: Optional[Sequence[str]] = None,
    k_range: Sequence[int] = DEFAULT_K_RANGE,
    seed: int = 0,
    epochs: Sequence[float] = DEFAULT_EPOCHS,
    regions: Optional[int] = None,
    session_size: int = 3,
    backbone_speedup: float = 2.0,
    cost_weight: float = DEFAULT_COST_WEIGHT,
    site_step_deg: float = 4.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    manifest: Optional[RunManifest] = None,
    progress=None,
) -> PlacementStudyResult:
    """Sweep the (policy x k) design space on the shared campaign runner.

    ``users`` is the total sampled population per cell (split across the
    UTC ``epochs``); every registered policy name is legal in
    ``policies`` (default: all of them).  The crash-safety knobs
    (``timeout``/``retries``/``journal``/``resume``/``manifest``) behave
    exactly as in every other sweep driver.
    """
    chosen_policies = list(policies) if policies else list(policy_names())
    for name in chosen_policies:
        get_policy(name)  # fail fast on unknown names
    ks = sorted(set(int(k) for k in k_range))
    if not ks or ks[0] < 1:
        raise ValueError("k_range must contain positive server counts")
    tasks = [
        CellTask(
            name=f"placement/{policy}/k{k}",
            fn=evaluate_cell,
            kwargs={
                "policy": policy, "k": k, "users": users, "seed": seed,
                "epochs": tuple(float(t) for t in epochs),
                "regions": regions, "session_size": session_size,
                "backbone_speedup": backbone_speedup,
                "flash_count": 3, "site_step_deg": site_step_deg,
                "cost_weight": cost_weight,
            },
        )
        for policy in chosen_policies for k in ks
    ]
    records = run_tasks(
        tasks, jobs=jobs, cache=cache, retries=retries, timeout=timeout,
        journal=journal, resume=resume, manifest=manifest,
        progress=progress,
    )
    return PlacementStudyResult(records)
