"""Sec. 4.1 findings: protocol choice, P2P policy, server selection, anycast.

Four separate checks, each derived from captures or probes rather than from
the profiles directly, so the experiment genuinely re-measures what the
session layer does:

1. FaceTime carries spatial-persona sessions over QUIC, and falls back to
   RTP — with the 2D-call payload types — when any participant is not on
   Vision Pro.  Zoom/Webex/Teams stay on RTP always.
2. FaceTime and Zoom run two-party calls P2P, except both-Vision-Pro
   FaceTime.
3. Every provider picks the server nearest the initiator, regardless of
   where the other participants sit.
4. No provider's addresses behave like anycast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.protocol import classify_capture
from repro.devices.models import Device, MacBook, VisionPro
from repro.geo.geolocate import AnycastProbe
from repro.geo.regions import all_clients, city
from repro.geo.servers import ALL_FLEETS
from repro.transport.rtp import FACETIME_VIDEO_PT
from repro.vca.profiles import PROFILES, Protocol, VcaProfile
from repro.vca.session import Participant, TelepresenceSession


@dataclass(frozen=True)
class ProtocolObservation:
    """What the capture classifier saw for one session configuration."""

    vca: str
    device_mix: str
    observed_protocol: str
    p2p: bool
    dominant_payload_type: Optional[int]


def observe_session_protocol(profile: VcaProfile, devices: List[Device],
                             duration_s: float = 5.0,
                             seed: int = 0) -> ProtocolObservation:
    """Run a short session and classify U1's captured traffic."""
    cities = ["san jose", "dallas", "washington", "chicago", "seattle"]
    participants = [
        Participant(f"U{i + 1}", device, city(cities[i]))
        for i, device in enumerate(devices)
    ]
    session = TelepresenceSession(profile, participants, seed=seed)
    result = session.run(duration_s)
    report = classify_capture(result.capture_of("U1"))
    mix = "+".join(d.device_class.value for d in devices)
    return ProtocolObservation(
        vca=profile.name,
        device_mix=mix,
        observed_protocol=report.dominant,
        p2p=result.p2p,
        dominant_payload_type=report.dominant_payload_type(),
    )


def run_protocol_matrix(seed: int = 0) -> List[ProtocolObservation]:
    """The paper's device-mix sweep for all four VCAs."""
    observations = []
    mixes = [
        [VisionPro(), VisionPro()],
        [VisionPro(), MacBook()],
    ]
    for profile in PROFILES.values():
        for devices in mixes:
            observations.append(
                observe_session_protocol(profile, devices, seed=seed)
            )
    return observations


def facetime_fallback_keeps_2d_payload_type(seed: int = 0) -> bool:
    """Sec. 4.1: the RTP fallback uses the ordinary 2D-call codecs.

    Compares the dominant PT of a Vision Pro + MacBook FaceTime call with
    a plain 2D call between two MacBooks.
    """
    mixed = observe_session_protocol(
        PROFILES["FaceTime"], [VisionPro(), MacBook()], seed=seed
    )
    plain = observe_session_protocol(
        PROFILES["FaceTime"], [MacBook(), MacBook()], seed=seed + 1
    )
    return (
        mixed.dominant_payload_type == plain.dominant_payload_type
        == FACETIME_VIDEO_PT.number
    )


@dataclass(frozen=True)
class ServerSelectionObservation:
    """Selected server per initiator, with other participants fixed."""

    vca: str
    initiator_city: str
    selected_label: str


def run_server_selection(seed: int = 0) -> List[ServerSelectionObservation]:
    """Rotate the initiator and record which server each VCA assigns.

    The paper finds the assignment follows the initiator's region only.
    """
    del seed  # selection is deterministic
    observations = []
    rotation = ["san jose", "dallas", "washington"]
    for vca, fleet in ALL_FLEETS.items():
        for initiator_city in rotation:
            others = [c for c in rotation if c != initiator_city]
            server = fleet.select_for_session(
                city(initiator_city), [city(c) for c in others]
            )
            observations.append(
                ServerSelectionObservation(vca, initiator_city, server.label)
            )
    return observations


def run_anycast_check(repeats: int = 5, seed: int = 0) -> Dict[str, bool]:
    """Probe every server from all eight vantage points (Sec. 4.1, [24]).

    Returns per-VCA anycast verdicts; the paper (and this model) finds
    every one unicast.
    """
    probe = AnycastProbe()
    vantages = all_clients()
    verdicts = {}
    for vca, fleet in ALL_FLEETS.items():
        anycast = False
        for index, server in enumerate(fleet.servers):
            rtts = probe.probe_server(
                server, vantages, repeats=repeats, seed=seed * 100 + index
            )
            anycast = anycast or probe.is_anycast(rtts)
        verdicts[vca] = anycast
    return verdicts
