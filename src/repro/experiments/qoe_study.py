"""QoE across geography and server policies (extends Sec. 4.1's analysis).

The paper argues the initiator-nearest single relay "could become more
pronounced when users are distributed across continents" against the
100 ms one-way QoE threshold.  This study makes that argument end to end:
for each scenario (US regional, US coast-to-coast, intercontinental) it
computes per-pair one-way delays under both server policies and turns
them into QoE scores via :mod:`repro.vca.qoe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.geo.coords import GeoPoint
from repro.geo.regions import city
from repro.geo.servers import ALL_FLEETS, ServerFleet
from repro.experiments.ablations import GLOBAL_CITIES, _global_fleet
from repro.vca.qoe import QoeFactors, score


@dataclass(frozen=True)
class QoeScenario:
    """One geography under study."""

    name: str
    initiator: GeoPoint
    participants: Sequence[GeoPoint]
    intercontinental: bool = False


def default_scenarios() -> List[QoeScenario]:
    """The three geographies the paper's discussion spans."""
    return [
        QoeScenario(
            "US regional (all Western)",
            city("san jose"),
            [city("san jose"), city("seattle")],
        ),
        QoeScenario(
            "US coast-to-coast",
            city("washington"),
            [city("san jose"), city("dallas"), city("washington")],
        ),
        QoeScenario(
            "Intercontinental",
            GLOBAL_CITIES["london"],
            [city("san jose"), GLOBAL_CITIES["london"],
             GLOBAL_CITIES["tokyo"]],
            intercontinental=True,
        ),
    ]


@dataclass
class QoeOutcome:
    """QoE under both policies for one scenario."""

    scenario: str
    initiator_nearest_qoe: float
    geo_distributed_qoe: float
    worst_one_way_ms: float

    @property
    def geo_distribution_helps(self) -> bool:
        """Whether the remedy improves the experience."""
        return self.geo_distributed_qoe > self.initiator_nearest_qoe


def _qoe_for_worst_pair(fleet: ServerFleet, initiator: GeoPoint,
                        participants: Sequence[GeoPoint],
                        geo_distributed: bool,
                        backbone_speedup: float) -> "tuple[float, float]":
    if geo_distributed:
        rtt = fleet.worst_pair_rtt_ms_geo_distributed(
            participants, backbone_speedup=backbone_speedup
        )
    else:
        rtt = fleet.worst_pair_rtt_ms(initiator, participants)
    one_way = rtt / 2.0
    factors = QoeFactors(
        one_way_delay_ms=one_way,
        persona_availability=1.0,
        displayed_fps=90.0,
    )
    return score(factors), one_way


def run(vca: str = "FaceTime", backbone_speedup: float = 1.6,
        scenarios: Sequence[QoeScenario] = ()) -> List[QoeOutcome]:
    """Score every scenario under both selection policies."""
    outcomes = []
    for scenario in scenarios or default_scenarios():
        fleet = ALL_FLEETS[vca]
        if scenario.intercontinental:
            fleet = _global_fleet(fleet)
        nearest_qoe, one_way = _qoe_for_worst_pair(
            fleet, scenario.initiator, scenario.participants,
            geo_distributed=False, backbone_speedup=backbone_speedup,
        )
        distributed_qoe, _ = _qoe_for_worst_pair(
            fleet, scenario.initiator, scenario.participants,
            geo_distributed=True, backbone_speedup=backbone_speedup,
        )
        outcomes.append(QoeOutcome(
            scenario=scenario.name,
            initiator_nearest_qoe=nearest_qoe,
            geo_distributed_qoe=distributed_qoe,
            worst_one_way_ms=one_way,
        ))
    return outcomes


def format_table(outcomes: List[QoeOutcome]) -> str:
    """Printable study."""
    lines = ["scenario                      one-way   QoE(nearest)  QoE(geo)"]
    for o in outcomes:
        lines.append(
            f"{o.scenario:28s}  {o.worst_one_way_ms:6.0f} ms"
            f"  {o.initiator_nearest_qoe:11.2f}  {o.geo_distributed_qoe:8.2f}"
        )
    return "\n".join(lines)
