"""Sec. 4.3: the spatial persona does not rate-adapt.

A token-bucket (``tc``) limit on U1's uplink sweeps from generous to
starved.  Because the semantic stream has a fixed ~0.67 Mbps operating
point and reconstruction fails on missing frames, persona availability
collapses once the limit crosses the stream's rate — the paper observes
the "poor connection" state below 700 Kbps, with no bitrate downscaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import calibration
from repro.core.testbed import default_two_user_testbed
from repro.netsim.shaper import TrafficShaper
from repro.vca.profiles import PROFILES


@dataclass(frozen=True)
class RatePoint:
    """Outcome at one uplink limit."""

    limit_kbps: float
    availability: float
    poor_connection: bool
    uplink_drop_rate: float
    offered_mbps: float


@dataclass
class RateAdaptationResult:
    """The full sweep."""

    points: List[RatePoint]

    def cutoff_kbps(self) -> Optional[float]:
        """Lowest limit at which the persona is still available.

        The paper's finding corresponds to a cutoff at ~700 Kbps.
        """
        working = [p.limit_kbps for p in self.points if not p.poor_connection]
        return min(working) if working else None

    def no_rate_adaptation(self, tolerance: float = 0.05) -> bool:
        """The sender never lowers its offered rate under constraint.

        A rate-adaptive encoder (what 2D VCAs do, Sec. 4.3) would reduce
        the *offered* bitrate once the shaper starts dropping; the
        semantic stream keeps pushing its fixed operating point, and the
        persona availability collapses instead.
        """
        offered = [p.offered_mbps for p in self.points]
        spread = max(offered) - min(offered)
        return spread <= tolerance * max(offered)

    def format_table(self) -> str:
        """Printable sweep."""
        lines = [
            "limit_kbps  offered_mbps  availability  poor_connection  drop_rate"
        ]
        for p in self.points:
            lines.append(
                f"{p.limit_kbps:10.0f}  {p.offered_mbps:12.3f}  "
                f"{p.availability:12.3f}  {str(p.poor_connection):15s}  "
                f"{p.uplink_drop_rate:9.3f}"
            )
        return "\n".join(lines)


def measure_at_limit(limit_kbps: float, duration_s: float = 20.0,
                     seed: int = 0) -> RatePoint:
    """Run one shaped spatial-persona session and read U2's receiver."""
    if limit_kbps <= 0:
        raise ValueError("limit must be positive")
    testbed = default_two_user_testbed()
    session = testbed.session(PROFILES["FaceTime"], seed=seed)
    shaper = TrafficShaper(rate_bps=limit_kbps * 1000.0, seed=seed)
    session.shape_uplink("U1", shaper)
    result = session.run(duration_s)
    receiver = result.receiver_of("U2")
    u1_address = result.addresses["U1"]
    stats = receiver.stats.get(u1_address)
    availability = stats.availability() if stats else 0.0
    poor = stats.poor_connection() if stats else True
    return RatePoint(
        limit_kbps=limit_kbps,
        availability=availability,
        poor_connection=poor,
        uplink_drop_rate=shaper.drop_rate,
        offered_mbps=shaper.offered_mbps(duration_s),
    )


def run(
    limits_kbps: Tuple[float, ...] = (
        2000.0, 1500.0, 1000.0, 800.0, 700.0, 650.0, 600.0, 500.0, 400.0, 300.0
    ),
    duration_s: float = 20.0,
    seed: int = 0,
) -> RateAdaptationResult:
    """Sweep the uplink limit across the cutoff region."""
    return RateAdaptationResult([
        measure_at_limit(limit, duration_s, seed) for limit in limits_kbps
    ])
