"""Resilience study: the four VCA profiles under the standard disturbance.

The paper measures the VCAs on a clean testbed; this study asks the
obvious next question — what happens when the network misbehaves mid-call?
Every profile faces the identical scripted gauntlet
(:func:`~repro.faults.schedule.standard_disturbance`: a link blackout, a
server outage, a loss burst, a bandwidth collapse, and a WiFi
degradation) with the resilience runtime enabled, and the study reports
how gracefully each one degrades and how fast it recovers:

- **time-to-recover** per fault and in aggregate (mean / max),
- **stall time** — seconds with no persona media at the observer,
- **ladder occupancy** — the fraction of the call spent on each rung of
  the graceful-degradation ladder,
- **MOS under faults** — the windowed QoE score, averaged,
- **failovers** — relay reconnects (P2P profiles skip the server outage
  by construction: there is no relay to lose).

Two runs with the same seed produce identical studies — the whole fault
path is deterministic.
"""

from __future__ import annotations

import base64
import dataclasses
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.core.testbed import default_two_user_testbed
from repro.faults.ladder import LadderLevel
from repro.faults.metrics import ResilienceReport
from repro.faults.resilient import ResilienceConfig, SessionResilience
from repro.faults.schedule import standard_disturbance
from repro.vca.profiles import PROFILES
from repro.vca.qoe import QoeVector, frame_rate_factor, quality_factor

from repro import calibration

#: Who gets disturbed and who watches them, in the default testbed.
VICTIM = "U2"
OBSERVER = "U1"


@dataclass(frozen=True)
class ResilienceRow:
    """One profile's outcome under the standard disturbance."""

    profile: str
    persona: str
    p2p: bool
    mos_mean: float
    total_stall_s: float
    mean_ttr_s: float
    max_ttr_s: float
    failovers: int
    occupancy: Dict[LadderLevel, float]
    recovered: bool

    @property
    def top_rung_fraction(self) -> float:
        """Fraction of the call spent at full fidelity."""
        return self.occupancy.get(LadderLevel.TEXTURED_MESH, 0.0)

    @property
    def audio_only_fraction(self) -> float:
        """Fraction of the call spent at the bottom rung."""
        return self.occupancy.get(LadderLevel.AUDIO_ONLY, 0.0)

    def qoe_vector(self, duration_s: float) -> QoeVector:
        """The row's observables on the multi-dimensional QoE axes.

        A method (not a field), so the row's ``asdict`` round trip and
        the CSV column set stay exactly as they were.  Mapping:

        - ``presence`` — fraction of the call the victim's persona was
          actually there (1 − stall fraction);
        - ``interactivity`` — the windowed MOS (1–5 scale) rescaled to
          [0, 1], the study's conversational-quality observable;
        - ``fidelity`` — :func:`~repro.vca.qoe.quality_factor` of the
          occupancy-weighted ladder rung quality;
        - ``comfort`` — :func:`~repro.vca.qoe.frame_rate_factor` of the
          frame rate implied by stalls (a stalled stream judders; the
          comfort curve puts its knees at 60 / 90 FPS).
        """
        from repro.faults.ladder import LEVEL_QUALITY

        if duration_s <= 0:
            raise ValueError("duration must be positive")
        stall_fraction = min(1.0, max(0.0,
                                      self.total_stall_s / duration_s))
        presence = 1.0 - stall_fraction
        interactivity = min(1.0, max(0.0, (self.mos_mean - 1.0) / 4.0))
        rung_quality = sum(
            LEVEL_QUALITY[level] * fraction
            for level, fraction in self.occupancy.items()
        )
        fidelity = quality_factor(min(1.0, max(0.0, rung_quality)))
        comfort = frame_rate_factor(
            float(calibration.TARGET_FPS) * presence)
        return QoeVector(interactivity=interactivity, presence=presence,
                         fidelity=fidelity, comfort=comfort)


@dataclass
class ResilienceStudyResult:
    """The study across profiles, plus the raw per-session detail."""

    duration_s: float
    rows: List[ResilienceRow]
    details: Dict[str, SessionResilience]

    def row(self, profile: str) -> ResilienceRow:
        """The row of one profile."""
        return next(r for r in self.rows if r.profile == profile)

    def all_recovered(self) -> bool:
        """Every profile's media recovered from every fault."""
        return all(r.recovered for r in self.rows)

    def format_table(self) -> str:
        """Printable study."""
        lines = [
            "profile     persona   p2p    MOS  stall_s  mean_ttr  max_ttr"
            "  failover  top%  audio%  recovered"
        ]
        for r in self.rows:
            lines.append(
                f"{r.profile:10s}  {r.persona:8s}  {str(r.p2p):5s}"
                f"  {r.mos_mean:4.2f}  {r.total_stall_s:7.2f}"
                f"  {r.mean_ttr_s:8.2f}  {r.max_ttr_s:7.2f}"
                f"  {r.failovers:8d}  {r.top_rung_fraction:4.0%}"
                f"  {r.audio_only_fraction:6.0%}  {str(r.recovered)}"
            )
        return "\n".join(lines)


def run_profile(
    profile_name: str,
    duration_s: float = 30.0,
    seed: int = 0,
    config: Optional[ResilienceConfig] = None,
) -> Tuple[ResilienceRow, SessionResilience]:
    """Run one profile through the standard disturbance.

    Raises:
        KeyError: For an unknown profile name.
    """
    profile = PROFILES[profile_name]
    testbed = default_two_user_testbed()
    session = testbed.session(
        profile, seed=seed,
        faults=standard_disturbance(duration_s, victim=VICTIM),
        resilience=config or ResilienceConfig(),
    )
    result = session.run(duration_s)
    resilience = result.resilience
    assert resilience is not None  # faults were given, so the runtime ran
    report: ResilienceReport = resilience.report(OBSERVER, VICTIM)
    ladder = resilience.ladders[VICTIM]
    row = ResilienceRow(
        profile=profile_name,
        persona=result.persona_kind.value,
        p2p=result.p2p,
        mos_mean=report.mos_mean,
        total_stall_s=report.total_stall_s,
        mean_ttr_s=report.mean_ttr_s,
        max_ttr_s=report.max_ttr_s,
        failovers=resilience.reconnects,
        occupancy=ladder.occupancy_fractions(duration_s),
        recovered=report.all_recovered,
    )
    return row, resilience


def _pack_outcome(
    outcome: Tuple[ResilienceRow, SessionResilience]
) -> Dict[str, object]:
    """(row, detail) -> cacheable JSON payload.

    The row is flattened to primitives (ladder occupancy keyed by rung
    name); the session detail — a deep object graph — rides along as a
    base64 pickle so a cache replay restores the full study, reconnect
    events included.
    """
    row, detail = outcome
    row_dict = dataclasses.asdict(row)
    row_dict["occupancy"] = {
        level.name: fraction for level, fraction in row.occupancy.items()
    }
    return {
        "row": row_dict,
        "detail_b64": base64.b64encode(pickle.dumps(detail)).decode("ascii"),
    }


def _unpack_outcome(
    payload: Dict[str, object]
) -> Tuple[ResilienceRow, SessionResilience]:
    """Exact round-trip of :func:`_pack_outcome`."""
    row_dict = dict(payload["row"])
    row_dict["occupancy"] = {
        LadderLevel[name]: fraction
        for name, fraction in row_dict["occupancy"].items()
    }
    detail = pickle.loads(base64.b64decode(payload["detail_b64"]))
    return ResilienceRow(**row_dict), detail


def run(
    profiles: Sequence[str] = ("FaceTime", "Zoom", "Webex", "Teams"),
    duration_s: float = 30.0,
    seed: int = 0,
    config: Optional[ResilienceConfig] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    manifest: Optional[RunManifest] = None,
) -> ResilienceStudyResult:
    """The full study: every profile, same seed, same gauntlet.

    Profiles are independent cells, so the gauntlet shards over ``jobs``
    worker processes and replays from ``cache`` — the study is identical
    either way because :func:`run_profile` is a pure function of its
    arguments.  The crash-safety knobs (``timeout`` watchdog, transient
    ``retries``, checkpoint ``journal``/``resume``, shared ``manifest``)
    pass straight through to the runner.
    """
    tasks = [
        CellTask(
            name=f"resilience/{name}",
            fn=run_profile,
            kwargs={"profile_name": name, "duration_s": duration_s,
                    "seed": seed, "config": config},
            pack=_pack_outcome,
            unpack=_unpack_outcome,
        )
        for name in profiles
    ]
    rows: List[ResilienceRow] = []
    details: Dict[str, SessionResilience] = {}
    for name, (row, detail) in zip(profiles, run_tasks(
            tasks, jobs=jobs, cache=cache, retries=retries, timeout=timeout,
            journal=journal, resume=resume, manifest=manifest)):
        rows.append(row)
        details[name] = detail
    return ResilienceStudyResult(
        duration_s=duration_s, rows=rows, details=details
    )
