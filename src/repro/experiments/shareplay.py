"""SharePlay measurement: shared content next to spatial personas.

The paper defers SharePlay use cases to future work (Sec. 5).  This
experiment runs them: a spatial FaceTime session where the host also
shares a movie, a whiteboard, or a game view, measuring (a) how the
shared stream dominates the session's bandwidth, and (b) whether the
persona survives when the host's uplink gets tight — the interaction
the fixed-rate semantic stream makes dangerous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import calibration
from repro.core.testbed import multi_user_testbed
from repro.netsim.capture import Direction
from repro.netsim.shaper import TrafficShaper
from repro.vca.profiles import PROFILES
from repro.vca.shareplay import SharedContentProfile, SharedContentSource


@dataclass(frozen=True)
class SharePlayOutcome:
    """Measured effect of one shared-content kind."""

    content: str
    host_uplink_mbps: float
    viewer_downlink_mbps: float
    persona_availability: float
    shaped_persona_availability: float

    @property
    def persona_survives_unconstrained(self) -> bool:
        """On a fast AP the persona must be unaffected."""
        return self.persona_availability > 0.97


def measure_content(
    profile: SharedContentProfile,
    n_users: int = 3,
    duration_s: float = 10.0,
    constrained_uplink_mbps: Optional[float] = None,
    seed: int = 0,
) -> SharePlayOutcome:
    """Run a spatial session with U1 sharing ``profile`` content.

    ``constrained_uplink_mbps`` reruns the session with the host's uplink
    shaped (a hotel-WiFi scenario) to measure the persona's fate when the
    shared stream competes with it.
    """
    def run(shape_mbps: Optional[float]) -> "tuple[float, float, float]":
        testbed = multi_user_testbed(n_users)
        session = testbed.session(PROFILES["FaceTime"], seed=seed)
        if shape_mbps is not None:
            session.shape_uplink(
                "U1", TrafficShaper(rate_bps=shape_mbps * 1e6, seed=seed)
            )
        source = SharedContentSource(profile, seed=seed)
        sfu_address, sfu_port = session._media_target(0)
        source.attach(session.sim, session.host_of("U1"),
                      sfu_address, sfu_port)
        result = session.run(duration_s)
        host_up = result.capture_of("U1").total_bytes(
            Direction.UPLINK
        ) * 8 / duration_s / 1e6
        viewer_down = result.capture_of("U2").total_bytes(
            Direction.DOWNLINK
        ) * 8 / duration_s / 1e6
        receiver = result.receiver_of("U2")
        stats = receiver.stats.get(result.addresses["U1"])
        availability = stats.availability() if stats else 0.0
        return host_up, viewer_down, availability

    host_up, viewer_down, availability = run(None)
    shaped_availability = availability
    if constrained_uplink_mbps is not None:
        _, _, shaped_availability = run(constrained_uplink_mbps)
    return SharePlayOutcome(
        content=profile.kind.value,
        host_uplink_mbps=host_up,
        viewer_downlink_mbps=viewer_down,
        persona_availability=availability,
        shaped_persona_availability=shaped_availability,
    )


def run(duration_s: float = 10.0, seed: int = 0,
        constrained_uplink_mbps: float = 2.0) -> Dict[str, SharePlayOutcome]:
    """Measure all three content kinds (plus the constrained what-if)."""
    outcomes = {}
    for profile in (SharedContentProfile.movie(),
                    SharedContentProfile.whiteboard(),
                    SharedContentProfile.game()):
        outcomes[profile.kind.value] = measure_content(
            profile, duration_s=duration_s,
            constrained_uplink_mbps=constrained_uplink_mbps, seed=seed,
        )
    return outcomes


def format_table(outcomes: Dict[str, SharePlayOutcome]) -> str:
    """Printable study."""
    lines = [
        "content     host_up  viewer_down  persona_avail  "
        "persona_avail@2Mbps"
    ]
    for name, o in outcomes.items():
        lines.append(
            f"{name:10s}  {o.host_uplink_mbps:6.2f}  "
            f"{o.viewer_downlink_mbps:11.2f}  {o.persona_availability:13.3f}  "
            f"{o.shaped_persona_availability:19.3f}"
        )
    return "\n".join(lines)
