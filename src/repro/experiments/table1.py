"""Table 1: RTT between VCA servers and W/M/E test users.

The paper TCP-pings every discovered US server of the four VCAs from three
test users (Western, Middle, Eastern US) and reports the mean RTTs; every
cell's standard deviation is below 7 ms.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import calibration
from repro.analysis.latency import measure_server_rtts
from repro.analysis.stats import SummaryStats
from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.geo.regions import Region, test_clients
from repro.geo.servers import ALL_FLEETS, Server


@dataclass
class Table1Result:
    """The measured RTT matrix.

    ``cells`` maps (region code, "<vca>/<label>") to the RTT summary.
    """

    cells: Dict[Tuple[str, str], SummaryStats]

    def mean_ms(self, region: str, vca: str, label: str) -> float:
        """Mean RTT of one cell, in ms."""
        return self.cells[(region, f"{vca}/{label}")].mean

    def max_std_ms(self) -> float:
        """Largest per-cell std — the paper bounds it at 7 ms."""
        return max(s.std for s in self.cells.values())

    def row(self, region: str) -> List[float]:
        """One region's means, in the paper's column order."""
        return [
            self.mean_ms(region, vca, label)
            for vca, label in calibration.TABLE1_COLUMNS
        ]

    def format_table(self) -> str:
        """Render the matrix in the paper's layout."""
        header = "Users | " + " | ".join(
            f"{vca[:4]}-{label}" for vca, label in calibration.TABLE1_COLUMNS
        )
        lines = [header, "-" * len(header)]
        for region in ("W", "M", "E"):
            values = " | ".join(f"{v:7.1f}" for v in self.row(region))
            lines.append(f"{region:5s} | {values}")
        return "\n".join(lines)

    def paper_comparison(self) -> List[Tuple[str, str, float, float]]:
        """(region, column, measured mean, paper mean) for every cell."""
        rows = []
        for region in ("W", "M", "E"):
            paper_row = calibration.TABLE1_RTT_MS[region]
            for (vca, label), paper_value in zip(
                calibration.TABLE1_COLUMNS, paper_row
            ):
                rows.append(
                    (region, f"{vca}/{label}",
                     self.mean_ms(region, vca, label), paper_value)
                )
        return rows


def _table1_servers() -> List[Server]:
    """All servers, in the paper's column order."""
    return [
        ALL_FLEETS[vca].by_label(label)
        for vca, label in calibration.TABLE1_COLUMNS
    ]


def measure_region(region_value: str, repeats: int,
                   seed: int) -> Dict[str, SummaryStats]:
    """One test user's full server row — the unit of Table 1 work."""
    client = test_clients()[Region(region_value)]
    return measure_server_rtts(
        client, _table1_servers(), repeats=repeats,
        seed=seed + ord(region_value),
    )


def _pack_row(measured: Dict[str, SummaryStats]) -> Dict[str, Dict[str, float]]:
    return {key: dataclasses.asdict(stats) for key, stats in measured.items()}


def _unpack_row(payload: Dict[str, Dict[str, float]]) -> Dict[str, SummaryStats]:
    return {key: SummaryStats(**stats) for key, stats in payload.items()}


def run(repeats: int = calibration.MIN_REPEATS, seed: int = 0,
        jobs: int = 1, cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None, retries: int = 1,
        journal: Optional[RunJournal] = None, resume: bool = False,
        manifest: Optional[RunManifest] = None) -> Table1Result:
    """Measure the full matrix.

    Each cell is the mean of ``repeats`` TCP pings through a fresh
    simulated path (Sec. 3.2 repeats every experiment at least 5 times).
    The three regional rows are independent cells for the shared sweep
    runner (``jobs``/``cache``, plus the crash-safety knobs: ``timeout``
    watchdog, transient ``retries``, ``journal``/``resume``,
    ``manifest``).
    """
    regions = [region.value for region in test_clients()]
    tasks = [
        CellTask(
            name=f"table1/{region_value}",
            fn=measure_region,
            kwargs={"region_value": region_value, "repeats": repeats,
                    "seed": seed},
            pack=_pack_row,
            unpack=_unpack_row,
        )
        for region_value in regions
    ]
    cells: Dict[Tuple[str, str], SummaryStats] = {}
    for region_value, measured in zip(regions, run_tasks(
            tasks, jobs=jobs, cache=cache, retries=retries, timeout=timeout,
            journal=journal, resume=resume, manifest=manifest)):
        for key, stats in measured.items():
            cells[(region_value, key)] = stats
    return Table1Result(cells)
