"""Table 1: RTT between VCA servers and W/M/E test users.

The paper TCP-pings every discovered US server of the four VCAs from three
test users (Western, Middle, Eastern US) and reports the mean RTTs; every
cell's standard deviation is below 7 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import calibration
from repro.analysis.latency import measure_server_rtts
from repro.analysis.stats import SummaryStats
from repro.geo.regions import Region, test_clients
from repro.geo.servers import ALL_FLEETS, Server


@dataclass
class Table1Result:
    """The measured RTT matrix.

    ``cells`` maps (region code, "<vca>/<label>") to the RTT summary.
    """

    cells: Dict[Tuple[str, str], SummaryStats]

    def mean_ms(self, region: str, vca: str, label: str) -> float:
        """Mean RTT of one cell, in ms."""
        return self.cells[(region, f"{vca}/{label}")].mean

    def max_std_ms(self) -> float:
        """Largest per-cell std — the paper bounds it at 7 ms."""
        return max(s.std for s in self.cells.values())

    def row(self, region: str) -> List[float]:
        """One region's means, in the paper's column order."""
        return [
            self.mean_ms(region, vca, label)
            for vca, label in calibration.TABLE1_COLUMNS
        ]

    def format_table(self) -> str:
        """Render the matrix in the paper's layout."""
        header = "Users | " + " | ".join(
            f"{vca[:4]}-{label}" for vca, label in calibration.TABLE1_COLUMNS
        )
        lines = [header, "-" * len(header)]
        for region in ("W", "M", "E"):
            values = " | ".join(f"{v:7.1f}" for v in self.row(region))
            lines.append(f"{region:5s} | {values}")
        return "\n".join(lines)

    def paper_comparison(self) -> List[Tuple[str, str, float, float]]:
        """(region, column, measured mean, paper mean) for every cell."""
        rows = []
        for region in ("W", "M", "E"):
            paper_row = calibration.TABLE1_RTT_MS[region]
            for (vca, label), paper_value in zip(
                calibration.TABLE1_COLUMNS, paper_row
            ):
                rows.append(
                    (region, f"{vca}/{label}",
                     self.mean_ms(region, vca, label), paper_value)
                )
        return rows


def _table1_servers() -> List[Server]:
    """All servers, in the paper's column order."""
    return [
        ALL_FLEETS[vca].by_label(label)
        for vca, label in calibration.TABLE1_COLUMNS
    ]


def run(repeats: int = calibration.MIN_REPEATS, seed: int = 0) -> Table1Result:
    """Measure the full matrix.

    Each cell is the mean of ``repeats`` TCP pings through a fresh
    simulated path (Sec. 3.2 repeats every experiment at least 5 times).
    """
    servers = _table1_servers()
    cells: Dict[Tuple[str, str], SummaryStats] = {}
    for region, client in test_clients().items():
        measured = measure_server_rtts(
            client, servers, repeats=repeats, seed=seed + ord(region.value)
        )
        for key, stats in measured.items():
            cells[(region.value, key)] = stats
    return Table1Result(cells)
