"""Fault injection and graceful degradation for the telepresence stack.

The subsystem has two halves:

- **breaking things**: :mod:`~repro.faults.schedule` describes *what*
  breaks and when; :mod:`~repro.faults.injector` realizes a schedule on
  a live simulation through the netsim fault hooks (link faults, AP
  degradation, in-flight revocation via cancellable event handles);
- **surviving them**: the graceful-degradation ladder
  (:mod:`~repro.faults.ladder`, :mod:`~repro.faults.sources`), session
  reconnect with backoff and server failover
  (:mod:`~repro.faults.reconnect`), and the resilience metrics that
  judge the outcome (:mod:`~repro.faults.metrics`).

:mod:`~repro.faults.resilient` ties both halves into
:class:`~repro.vca.session.TelepresenceSession`.  At fleet scale,
:mod:`~repro.faults.domains` samples *correlated* failures (region
outages, AP storms, backbone brownouts, flash crowds) and
:mod:`~repro.faults.cohort` arms whole batched cohorts with grouped
cohort events instead of per-lane callbacks.
"""

from repro.faults.cohort import CohortInjector
from repro.faults.domains import (
    SCENARIOS,
    DomainEvent,
    DomainImpairments,
    DomainKind,
    DomainPlan,
    build_plan,
    fan_out,
    impairment_timeline,
    impairment_timeline_scalar,
    lane_schedules,
    sample_domain_events,
    scenario_names,
    server_down_timeline,
)
from repro.faults.injector import (
    WIFI_DEGRADATION_JITTER_MS,
    WIFI_DEGRADATION_LOSS,
    FaultInjector,
    FaultLogEntry,
    combine_impairment,
)
from repro.faults.ladder import (
    DOWN_RATIO,
    LEVEL_QUALITY,
    UP_STREAK,
    DegradationLadder,
    LadderLevel,
    next_level,
    sustainable_level,
)
from repro.faults.metrics import (
    FaultRecovery,
    ResilienceReport,
    ResilienceTracker,
    Stall,
    find_stalls,
    mos_timeline,
    recovery_of,
)
from repro.faults.reconnect import (
    BackoffPolicy,
    ReconnectEvent,
    ReconnectManager,
)
from repro.faults.resilient import (
    ResilienceConfig,
    ResilienceRuntime,
    SessionResilience,
    derive_fault_seed,
)
from repro.faults.schedule import (
    SERVER_TARGET,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    derive_seed,
    standard_disturbance,
)
from repro.faults.sources import (
    VIDEO_SCALE,
    LadderedPersonaSource,
    video_scale_for_level,
)

__all__ = [
    "SCENARIOS",
    "SERVER_TARGET",
    "DOWN_RATIO",
    "LEVEL_QUALITY",
    "UP_STREAK",
    "VIDEO_SCALE",
    "WIFI_DEGRADATION_JITTER_MS",
    "WIFI_DEGRADATION_LOSS",
    "BackoffPolicy",
    "CohortInjector",
    "DegradationLadder",
    "DomainEvent",
    "DomainImpairments",
    "DomainKind",
    "DomainPlan",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLogEntry",
    "FaultRecovery",
    "FaultSchedule",
    "LadderLevel",
    "LadderedPersonaSource",
    "ReconnectEvent",
    "ReconnectManager",
    "ResilienceConfig",
    "ResilienceReport",
    "ResilienceRuntime",
    "ResilienceTracker",
    "SessionResilience",
    "Stall",
    "build_plan",
    "combine_impairment",
    "derive_fault_seed",
    "derive_seed",
    "fan_out",
    "find_stalls",
    "impairment_timeline",
    "impairment_timeline_scalar",
    "lane_schedules",
    "mos_timeline",
    "next_level",
    "recovery_of",
    "sample_domain_events",
    "scenario_names",
    "server_down_timeline",
    "standard_disturbance",
    "sustainable_level",
    "video_scale_for_level",
]
