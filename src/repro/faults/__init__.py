"""Fault injection and graceful degradation for the telepresence stack.

The subsystem has two halves:

- **breaking things**: :mod:`~repro.faults.schedule` describes *what*
  breaks and when; :mod:`~repro.faults.injector` realizes a schedule on
  a live simulation through the netsim fault hooks (link faults, AP
  degradation, in-flight revocation via cancellable event handles);
- **surviving them**: the graceful-degradation ladder
  (:mod:`~repro.faults.ladder`, :mod:`~repro.faults.sources`), session
  reconnect with backoff and server failover
  (:mod:`~repro.faults.reconnect`), and the resilience metrics that
  judge the outcome (:mod:`~repro.faults.metrics`).

:mod:`~repro.faults.resilient` ties both halves into
:class:`~repro.vca.session.TelepresenceSession`.
"""

from repro.faults.injector import (
    WIFI_DEGRADATION_JITTER_MS,
    WIFI_DEGRADATION_LOSS,
    FaultInjector,
    FaultLogEntry,
)
from repro.faults.ladder import (
    DOWN_RATIO,
    LEVEL_QUALITY,
    UP_STREAK,
    DegradationLadder,
    LadderLevel,
    next_level,
    sustainable_level,
)
from repro.faults.metrics import (
    FaultRecovery,
    ResilienceReport,
    ResilienceTracker,
    Stall,
    find_stalls,
    mos_timeline,
    recovery_of,
)
from repro.faults.reconnect import (
    BackoffPolicy,
    ReconnectEvent,
    ReconnectManager,
)
from repro.faults.resilient import (
    ResilienceConfig,
    ResilienceRuntime,
    SessionResilience,
    derive_fault_seed,
)
from repro.faults.schedule import (
    SERVER_TARGET,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    standard_disturbance,
)
from repro.faults.sources import (
    VIDEO_SCALE,
    LadderedPersonaSource,
    video_scale_for_level,
)

__all__ = [
    "SERVER_TARGET",
    "DOWN_RATIO",
    "LEVEL_QUALITY",
    "UP_STREAK",
    "VIDEO_SCALE",
    "WIFI_DEGRADATION_JITTER_MS",
    "WIFI_DEGRADATION_LOSS",
    "BackoffPolicy",
    "DegradationLadder",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLogEntry",
    "FaultRecovery",
    "FaultSchedule",
    "LadderLevel",
    "LadderedPersonaSource",
    "ReconnectEvent",
    "ReconnectManager",
    "ResilienceConfig",
    "ResilienceReport",
    "ResilienceRuntime",
    "ResilienceTracker",
    "SessionResilience",
    "Stall",
    "derive_fault_seed",
    "find_stalls",
    "mos_timeline",
    "next_level",
    "recovery_of",
    "standard_disturbance",
    "sustainable_level",
    "video_scale_for_level",
]
