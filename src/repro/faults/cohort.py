"""Fault injection for cohorts: one batch engine, many armed lanes.

A :class:`~repro.faults.injector.FaultInjector` owns one scalar session's
faults; a cohort hosts hundreds of sessions on one
:class:`~repro.netsim.batch.BatchSimulator`, and a correlated domain event
(a regional outage, an AP-degradation storm) hits many of them at the same
instant.  Arming each lane independently would schedule ``lanes x events``
apply callbacks plus as many reverts; the :class:`CohortInjector` instead
groups identical events across lanes and schedules **one cohort event per
group edge** (`schedule_cohort`), so a fault covering 200 lanes costs two
engine events, not 400.

Bit-identity is the contract, not an aspiration:

- per-lane apply/revert runs through the *same*
  :meth:`~repro.faults.injector.FaultInjector.apply_event` /
  :meth:`~repro.faults.injector.FaultInjector.revert_event` code and the
  shared :func:`~repro.faults.injector.combine_impairment` arithmetic the
  scalar path uses;
- grouped applies fire at the event's exact onset with a sequence number
  below any runtime-scheduled media event at the same timestamp (arming
  happens before ``run``), matching the scalar arming order;
- the grouped revert is scheduled *when the apply fires* — the scalar
  injector's semantics — at ``now + duration_s``, which equals ``end_s``
  bit-for-bit because the apply fired at exactly ``start_s``.

``tests/test_gauntlet.py`` proves scalar-armed and cohort-armed runs
byte-identical, and the golden differential suite keeps the cohort-of-1
anchored to the scalar engine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultEvent
from repro.netsim.batch import BatchSimulator, LaneSimulator
from repro.obs import metrics as obs_metrics


class CohortInjector:
    """Arms the fault schedules of a whole cohort on one batch engine.

    Two arming modes:

    - **eager** (default): :meth:`enroll` arms the lane immediately,
      event by event — exactly what ``FaultInjector.arm()`` used to do on
      a lane view.  This is the compatibility path
      :class:`~repro.faults.resilient.ResilienceRuntime` takes when a
      session is built on a lane outside a gauntlet.
    - **deferred**: created with ``CohortInjector.of(batch,
      deferred=True)`` *before* sessions are built; :meth:`enroll` only
      registers, and :meth:`seal` arms everything at once with identical
      events grouped across lanes into single cohort apply/revert pairs.

    One injector per batch: :meth:`of` stores the instance on the batch
    object, so every lane of a cohort enrolls into the same grouping.
    """

    _ATTR = "_repro_cohort_injector"

    def __init__(self, batch: BatchSimulator, deferred: bool = False) -> None:
        self.batch = batch
        self.deferred = deferred
        self.sealed = False
        self._injectors: Dict[int, FaultInjector] = {}
        self._pending: List[Tuple[int, FaultInjector]] = []
        #: Engine events this injector armed (applies only; reverts are
        #: scheduled at apply time).  With grouping this is the number of
        #: distinct events, not lanes x events.
        self.cohort_events_armed = 0
        #: Total (lane, event) pairs covered — the scalar-equivalent count.
        self.lane_events_covered = 0

    @classmethod
    def of(cls, batch: BatchSimulator,
           deferred: bool = False) -> "CohortInjector":
        """The batch's cohort injector, created on first use.

        ``deferred`` only matters at creation; call this before building
        sessions to put the whole cohort into grouped-arming mode.
        """
        existing = getattr(batch, cls._ATTR, None)
        if existing is not None:
            return existing
        injector = cls(batch, deferred=deferred)
        setattr(batch, cls._ATTR, injector)
        return injector

    def enroll(self, lane: LaneSimulator, injector: FaultInjector) -> None:
        """Register one lane's scalar injector (arming now or at seal)."""
        if not isinstance(lane, LaneSimulator) or lane.batch is not self.batch:
            raise ValueError("enroll takes a lane of this injector's batch")
        if self.sealed:
            raise RuntimeError("cohort injector already sealed")
        index = lane.lane_index
        self._injectors[index] = injector
        if self.deferred:
            self._pending.append((index, injector))
        else:
            self._arm_lane(index, injector)

    def _arm_lane(self, lane: int, injector: FaultInjector) -> None:
        """Per-lane arming, bit-identical to the old lane ``arm()`` path."""
        for event in injector.schedule:
            self.batch.schedule_at(
                lane, event.start_s,
                lambda e=event, i=injector: i.apply_event(e))
            self.cohort_events_armed += 1
            self.lane_events_covered += 1

    def seal(self) -> None:
        """Arm every deferred lane, grouping identical events across lanes.

        Grouping key is the (frozen, hashable) :class:`FaultEvent` itself:
        domain fan-out hands every covered lane the same event object
        values, so one regional outage over 200 lanes becomes one cohort
        apply.  Groups keep first-seen order, which preserves each lane's
        schedule order for the homogeneous schedules domain plans emit.
        """
        if not self.deferred:
            return
        if self.sealed:
            raise RuntimeError("cohort injector already sealed")
        self.sealed = True
        groups: Dict[FaultEvent, List[int]] = {}
        for lane, injector in self._pending:
            for event in injector.schedule:
                groups.setdefault(event, []).append(lane)
        for event, lanes in groups.items():
            self.batch.schedule_cohort(
                event.start_s - self.batch.now, lanes,
                lambda e=event, ls=tuple(lanes): self._apply_group(e, ls))
            self.cohort_events_armed += 1
            self.lane_events_covered += len(lanes)
        self._pending.clear()
        obs_metrics.counter("faults.cohort.sealed").inc()
        obs_metrics.counter("faults.cohort.groups").inc(len(groups))

    # ------------------------------------------------------------------
    # Grouped apply / revert
    # ------------------------------------------------------------------

    def _apply_group(self, event: FaultEvent,
                     lanes: Tuple[int, ...]) -> None:
        """Apply one event to every covered lane; one shared revert."""
        live: List[Tuple[FaultInjector, str]] = []
        live_lanes: List[int] = []
        for lane in lanes:
            injector = self._injectors[lane]
            address = injector.apply_event(event, schedule_revert=False)
            if address is not None:
                live.append((injector, address))
                live_lanes.append(lane)
        obs_metrics.counter("faults.cohort.applies").inc()
        if not live:
            return
        # now == event.start_s exactly (this callback fired at onset), so
        # now + duration_s == end_s bit-for-bit — the scalar revert time.
        self.batch.schedule_cohort(
            event.duration_s, live_lanes,
            lambda: self._revert_group(event, live))

    def _revert_group(self, event: FaultEvent,
                      live: List[Tuple[FaultInjector, str]]) -> None:
        for injector, address in live:
            injector.revert_event(event, address)
        obs_metrics.counter("faults.cohort.reverts").inc()


__all__ = ["CohortInjector"]
