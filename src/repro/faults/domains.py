"""Correlated fault domains: population-scale failures, one event each.

PR 1's fault schedules impair one session at a time — realistic for a
netem testbed, wrong for a fleet.  Real incidents are *correlated*: a
cloud region goes dark and every session relayed there fails over at
once; a metro's last mile degrades in a storm and a third of its users
drop to audio-only together; a backbone path browns out and adds tens of
milliseconds to everything crossing it; a flash crowd overloads the
servers of one geography.  This module samples such **domain events**
from seeded generators and maps each one onto every cohort lane / fleet
session it covers, so one event fans out to its whole blast radius.

The catalog (see :data:`SCENARIOS`):

- ``region-outage`` — the servers of one demand region go dark
  (server-side: forces failover / shedding, never touches client APs);
- ``ap-storm`` — a seeded fraction of one region's lanes suffer WiFi
  degradation (client-side rate collapse, magnitude = rate factor);
- ``brownout`` — a backbone path through one region adds one-way delay
  (magnitude = extra ms) to every session relayed there;
- ``flash-crowd`` — demand in one region multiplies (magnitude = load
  factor), squeezing server admission capacity;
- ``mixed`` — the union of all four (per-kind generators draw from
  independent sha256-derived streams, so ``mixed`` contains *exactly*
  the events of the four singles combined);
- ``none`` — the fault-free twin.

Two consumers:

- the **cohort engine**: :func:`lane_schedules` projects a plan onto
  per-lane scalar :class:`~repro.faults.schedule.FaultSchedule` objects
  (region outage → server outage, AP storm → WiFi degradation, brownout
  → jitter burst), armed in one cohort event per domain edge by
  :class:`~repro.faults.cohort.CohortInjector`;
- the **fleet engine**: :func:`impairment_timeline` and
  :func:`server_down_timeline` expand a plan into per-(tick, lane) /
  per-(tick, server) arrays with a handful of array ops per event — the
  vectorized fan-out the benchmark gates at >= 10x the per-lane loop
  (:func:`impairment_timeline_scalar` is the differential oracle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.schedule import (
    SERVER_TARGET,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    derive_seed,
)


class DomainKind(enum.Enum):
    """The correlated-failure classes the gauntlet understands."""

    REGION_OUTAGE = "region-outage"
    AP_STORM = "ap-storm"
    BACKBONE_BROWNOUT = "brownout"
    FLASH_CROWD = "flash-crowd"


#: Per-kind sampling parameters: Poisson arrival rate, mean duration,
#: lane-coverage fraction range, and the kind-specific magnitude range.
_KIND_PARAMS: Dict[DomainKind, Dict[str, Tuple[float, float]]] = {
    DomainKind.REGION_OUTAGE: dict(
        rate_per_min=(1.2, 0.0), mean_duration_s=(8.0, 0.0),
        coverage=(1.0, 1.0), magnitude=(0.0, 0.0)),
    DomainKind.AP_STORM: dict(
        rate_per_min=(2.0, 0.0), mean_duration_s=(5.0, 0.0),
        coverage=(0.2, 0.7), magnitude=(0.1, 0.5)),
    DomainKind.BACKBONE_BROWNOUT: dict(
        rate_per_min=(1.5, 0.0), mean_duration_s=(6.0, 0.0),
        coverage=(1.0, 1.0), magnitude=(15.0, 60.0)),
    DomainKind.FLASH_CROWD: dict(
        rate_per_min=(1.2, 0.0), mean_duration_s=(8.0, 0.0),
        coverage=(1.0, 1.0), magnitude=(2.0, 6.0)),
}

#: Scenario catalog: which domain kinds a gauntlet scenario samples.
SCENARIOS: Dict[str, Tuple[DomainKind, ...]] = {
    "region-outage": (DomainKind.REGION_OUTAGE,),
    "ap-storm": (DomainKind.AP_STORM,),
    "brownout": (DomainKind.BACKBONE_BROWNOUT,),
    "flash-crowd": (DomainKind.FLASH_CROWD,),
    "mixed": tuple(DomainKind),
    "none": (),
}


def scenario_names() -> Tuple[str, ...]:
    """Every scenario the catalog knows, catalog order."""
    return tuple(SCENARIOS)


@dataclass(frozen=True)
class DomainEvent:
    """One correlated failure: a kind, a region, an interval, a severity.

    Attributes:
        kind: What breaks.
        region_index: Index into the demand model's region tuple.
        start_s / duration_s: The outage window in campaign seconds.
        magnitude: Kind-specific severity — rate factor for AP storms,
            extra one-way ms for brownouts, load multiplier for flash
            crowds, unused for region outages.
        coverage: Fraction of the region's lanes the event hits (region
            outages / brownouts / flash crowds always cover the region).
    """

    kind: DomainKind
    region_index: int
    start_s: float
    duration_s: float
    magnitude: float
    coverage: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("domain event cannot start before t=0")
        if self.duration_s <= 0:
            raise ValueError("domain event duration must be positive")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError(f"coverage {self.coverage} outside (0, 1]")
        if self.region_index < 0:
            raise ValueError("region_index must be >= 0")

    @property
    def end_s(self) -> float:
        """Instant the event clears."""
        return self.start_s + self.duration_s


def sample_domain_events(
    scenario: str,
    seed: int,
    duration_s: float,
    n_regions: int,
) -> Tuple[DomainEvent, ...]:
    """Seeded domain events for one scenario over ``duration_s`` seconds.

    Each kind draws from its own generator seeded with
    ``derive_seed(seed, "domain", kind.value)`` — the documented
    sha256-salted rule — so a kind's event stream is identical whether it
    runs alone or inside ``mixed``, and identical across serial, pooled,
    and distributed execution.  Per-event draw order: inter-arrival gap,
    region, duration, coverage, magnitude.
    """
    if scenario not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {scenario!r} (known: {scenario_names()})")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if n_regions < 1:
        raise ValueError("need at least one region")
    events: List[DomainEvent] = []
    for kind in SCENARIOS[scenario]:
        params = _KIND_PARAMS[kind]
        rate = params["rate_per_min"][0]
        mean_s = params["mean_duration_s"][0]
        rng = np.random.default_rng(derive_seed(seed, "domain", kind.value))
        time_s = float(rng.exponential(60.0 / rate))
        # Events last >= 1 s, so none may start in the final second:
        # every sampled event fits entirely inside the horizon.
        while time_s < duration_s - 1.0:
            region = int(rng.integers(n_regions))
            length = float(np.clip(rng.exponential(mean_s), 1.0,
                                   duration_s - time_s))
            lo, hi = params["coverage"]
            coverage = float(rng.uniform(lo, hi)) if lo < hi else lo
            lo, hi = params["magnitude"]
            magnitude = float(rng.uniform(lo, hi)) if lo < hi else lo
            events.append(DomainEvent(kind, region, time_s, length,
                                      magnitude, coverage))
            time_s += float(rng.exponential(60.0 / rate))
    events.sort(key=lambda e: (e.start_s, e.kind.value, e.region_index))
    return tuple(events)


@dataclass(frozen=True)
class DomainPlan:
    """A sampled scenario mapped onto a concrete cohort/fleet.

    ``lane_events[i]`` holds the sorted, duplicate-free lane indices
    event ``events[i]`` covers.
    """

    scenario: str
    seed: int
    duration_s: float
    n_lanes: int
    events: Tuple[DomainEvent, ...]
    lane_events: Tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if len(self.events) != len(self.lane_events):
            raise ValueError("events and lane_events must align")

    def __len__(self) -> int:
        return len(self.events)


def fan_out(event: DomainEvent, index: int, seed: int,
            lane_regions: np.ndarray) -> np.ndarray:
    """The sorted lane indices one domain event covers — array ops only.

    Region membership is one vectorized comparison; partial coverage
    (AP storms) subsamples members without replacement from a generator
    seeded by ``derive_seed(seed, "fanout", index)``, so no lane is ever
    hit twice by one event and the pick is independent of lane count
    elsewhere.  A region outage covers *every* lane homed in the region:
    those sessions lose their relay (the cohort engine realizes this as
    a ``@server`` outage per covered lane; the fleet engine blacks out
    the region's servers via :func:`server_down_timeline` instead and
    ignores the lane list for this kind).
    """
    members = np.flatnonzero(
        np.asarray(lane_regions) == event.region_index).astype(np.int64)
    if len(members) == 0 or event.coverage >= 1.0:
        return members
    count = max(1, int(np.ceil(event.coverage * len(members))))
    rng = np.random.default_rng(derive_seed(seed, "fanout", index))
    picks = rng.choice(len(members), size=count, replace=False)
    return members[np.sort(picks)]


def build_plan(scenario: str, seed: int, duration_s: float,
               lane_regions: np.ndarray,
               n_regions: Optional[int] = None) -> DomainPlan:
    """Sample a scenario and fan every event out onto the given lanes.

    ``lane_regions`` maps each lane (session) to its demand-region index;
    ``n_regions`` defaults to the observed maximum + 1.
    """
    lane_regions = np.asarray(lane_regions, dtype=np.int64)
    if n_regions is None:
        n_regions = int(lane_regions.max()) + 1 if len(lane_regions) else 1
    events = sample_domain_events(scenario, seed, duration_s, n_regions)
    lanes = tuple(fan_out(event, index, seed, lane_regions)
                  for index, event in enumerate(events))
    return DomainPlan(scenario=scenario, seed=seed, duration_s=duration_s,
                      n_lanes=len(lane_regions), events=events,
                      lane_events=lanes)


# ----------------------------------------------------------------------
# Projection onto the cohort engine (scalar fault schedules per lane)
# ----------------------------------------------------------------------


def _to_fault_event(event: DomainEvent, victim: str) -> Optional[FaultEvent]:
    """One lane's scalar realization of a domain event (None = no analog)."""
    if event.kind is DomainKind.REGION_OUTAGE:
        return FaultEvent(FaultKind.SERVER_OUTAGE, SERVER_TARGET,
                          event.start_s, event.duration_s)
    if event.kind is DomainKind.AP_STORM:
        return FaultEvent(FaultKind.WIFI_DEGRADATION, victim,
                          event.start_s, event.duration_s, event.magnitude)
    if event.kind is DomainKind.BACKBONE_BROWNOUT:
        return FaultEvent(FaultKind.JITTER_BURST, victim,
                          event.start_s, event.duration_s, event.magnitude)
    return None  # flash crowds act on server load, not on a lane's links


def lane_schedules(plan: DomainPlan, victim: str) -> List[FaultSchedule]:
    """Per-lane scalar fault schedules realizing a domain plan.

    Every covered lane receives the *same* frozen event values, which is
    what lets :meth:`~repro.faults.cohort.CohortInjector.seal` group them
    into one cohort apply per domain edge.
    """
    per_lane: List[List[FaultEvent]] = [[] for _ in range(plan.n_lanes)]
    for event, lanes in zip(plan.events, plan.lane_events):
        fault = _to_fault_event(event, victim)
        if fault is None:
            continue
        for lane in lanes.tolist():
            per_lane[lane].append(fault)
    return [FaultSchedule.scripted(events) for events in per_lane]


# ----------------------------------------------------------------------
# Projection onto the fleet engine (per-tick impairment arrays)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DomainImpairments:
    """Per-(tick, lane) client-side impairment surfaces of one plan.

    Attributes:
        delay_ms: Extra one-way delay (brownouts sum).
        wifi_rate: Access rate factor in (0, 1] (AP storms take the min).
        load: Demand multiplier >= 1 (flash crowds multiply).
    """

    delay_ms: np.ndarray
    wifi_rate: np.ndarray
    load: np.ndarray


def impairment_timeline(plan: DomainPlan,
                        ticks: np.ndarray) -> DomainImpairments:
    """Expand a plan into dense impairment arrays — one fan-out per event.

    Each event costs O(1) array ops (an active-tick mask outer-indexed
    with its covered lanes) regardless of how many lanes it hits; this is
    the vectorized fan-out ``benchmarks/bench_gauntlet.py`` gates at
    >= 10x :func:`impairment_timeline_scalar`.
    """
    ticks = np.asarray(ticks, dtype=np.float64)
    shape = (len(ticks), plan.n_lanes)
    delay_ms = np.zeros(shape)
    wifi_rate = np.ones(shape)
    load = np.ones(shape)
    for event, lanes in zip(plan.events, plan.lane_events):
        if len(lanes) == 0:
            continue
        rows = np.flatnonzero((ticks >= event.start_s)
                              & (ticks < event.end_s))
        if len(rows) == 0:
            continue
        window = np.ix_(rows, lanes)
        if event.kind is DomainKind.BACKBONE_BROWNOUT:
            delay_ms[window] += event.magnitude
        elif event.kind is DomainKind.AP_STORM:
            wifi_rate[window] = np.minimum(wifi_rate[window],
                                           event.magnitude)
        elif event.kind is DomainKind.FLASH_CROWD:
            load[window] *= event.magnitude
    return DomainImpairments(delay_ms=delay_ms, wifi_rate=wifi_rate,
                             load=load)


def impairment_timeline_scalar(plan: DomainPlan,
                               ticks: np.ndarray) -> DomainImpairments:
    """The per-lane Python-loop reference — the differential oracle.

    Same outputs as :func:`impairment_timeline`, computed the way a
    naive per-lane injector would: for every tick, for every lane, scan
    the events.  Exists for the equivalence test and the benchmark's
    speedup denominator; never use it for real fleets.
    """
    ticks = np.asarray(ticks, dtype=np.float64)
    shape = (len(ticks), plan.n_lanes)
    delay_ms = np.zeros(shape)
    wifi_rate = np.ones(shape)
    load = np.ones(shape)
    covered = [set(lanes.tolist()) for lanes in plan.lane_events]
    for t_index, t in enumerate(ticks.tolist()):
        for lane in range(plan.n_lanes):
            for e_index, event in enumerate(plan.events):
                if lane not in covered[e_index]:
                    continue
                if not event.start_s <= t < event.end_s:
                    continue
                if event.kind is DomainKind.BACKBONE_BROWNOUT:
                    delay_ms[t_index, lane] += event.magnitude
                elif event.kind is DomainKind.AP_STORM:
                    wifi_rate[t_index, lane] = min(
                        wifi_rate[t_index, lane], event.magnitude)
                elif event.kind is DomainKind.FLASH_CROWD:
                    load[t_index, lane] *= event.magnitude
    return DomainImpairments(delay_ms=delay_ms, wifi_rate=wifi_rate,
                             load=load)


def server_down_timeline(events: Sequence[DomainEvent],
                         server_regions: np.ndarray,
                         ticks: np.ndarray) -> np.ndarray:
    """``(ticks, servers)`` outage mask from the plan's region outages.

    A region outage blacks out every server homed in its region for its
    whole window — the server-side fan-out of the correlated domain.
    """
    ticks = np.asarray(ticks, dtype=np.float64)
    server_regions = np.asarray(server_regions, dtype=np.int64)
    down = np.zeros((len(ticks), len(server_regions)), dtype=bool)
    for event in events:
        if event.kind is not DomainKind.REGION_OUTAGE:
            continue
        servers = np.flatnonzero(server_regions == event.region_index)
        if len(servers) == 0:
            continue
        rows = np.flatnonzero((ticks >= event.start_s)
                              & (ticks < event.end_s))
        if len(rows) == 0:
            continue
        down[np.ix_(rows, servers)] = True
    return down


__all__ = [
    "SCENARIOS",
    "DomainEvent",
    "DomainImpairments",
    "DomainKind",
    "DomainPlan",
    "build_plan",
    "fan_out",
    "impairment_timeline",
    "impairment_timeline_scalar",
    "lane_schedules",
    "sample_domain_events",
    "scenario_names",
    "server_down_timeline",
]
