"""Realizes a :class:`~repro.faults.schedule.FaultSchedule` on a live run.

The injector owns the mapping from schedule targets (participant user-ids,
the ``@server`` pseudo-target) to network attachments, schedules an
apply/revert pair per fault event, and — because faults overlap — derives
each attachment's installed :class:`~repro.netsim.network.LinkFault` and AP
rate factor from the *set* of currently active events, recomputed on every
edge.

Server outages resolve the ``@server`` pseudo-target against the session's
*current* relay at onset time (after a failover the new relay is a
different address), blackout that attachment, and revoke its in-flight
deliveries via the simulator's cancellable handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.netsim.engine import Simulator
from repro.netsim.network import LinkFault, Network
from repro.obs import metrics as obs_metrics
from repro.faults.schedule import (
    SERVER_TARGET,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)

#: Loss and jitter a WiFi degradation adds on top of its rate factor:
#: a struggling radio retransmits (jitter) and still loses frames.
WIFI_DEGRADATION_LOSS = 0.02
WIFI_DEGRADATION_JITTER_MS = 8.0


def combine_impairment(
    active: "List[FaultEvent]",
) -> "tuple[bool, float, float, float]":
    """``(blackout, loss, jitter_ms, rate_factor)`` of a set of active events.

    Module-level for the same reason ``schedule_periodic`` is: the scalar
    :class:`FaultInjector` and the batch
    :class:`~repro.faults.cohort.CohortInjector` paths must run the *same*
    combination arithmetic, so a fault applied through either engine
    installs a bit-identical impairment.
    """
    blackout = False
    pass_prob = 1.0
    jitter_ms = 0.0
    rate_factor = 1.0
    for event in active:
        if event.kind in (FaultKind.LINK_BLACKOUT, FaultKind.SERVER_OUTAGE):
            blackout = True
        elif event.kind is FaultKind.LOSS_BURST:
            pass_prob *= 1.0 - event.magnitude
        elif event.kind is FaultKind.JITTER_BURST:
            jitter_ms += event.magnitude
        elif event.kind is FaultKind.BANDWIDTH_COLLAPSE:
            rate_factor = min(rate_factor, event.magnitude)
        elif event.kind is FaultKind.WIFI_DEGRADATION:
            rate_factor = min(rate_factor, event.magnitude)
            pass_prob *= 1.0 - WIFI_DEGRADATION_LOSS
            jitter_ms += WIFI_DEGRADATION_JITTER_MS
    return blackout, 1.0 - pass_prob, jitter_ms, rate_factor


@dataclass
class FaultLogEntry:
    """One line of the injector's timeline (for traces and tests)."""

    time_s: float
    action: str          # "apply" | "revert" | "skip"
    event: FaultEvent
    address: Optional[str] = None


@dataclass
class _TargetState:
    """Active events pinned to one resolved address."""

    address: str
    active: List[FaultEvent] = field(default_factory=list)


class FaultInjector:
    """Wires a fault schedule into a running simulation.

    Args:
        sim: The session's event loop.
        network: The fabric whose attachments get impaired.
        schedule: What to inject.
        address_of: Maps a participant ``user_id`` to its address.
        server_address: Returns the *currently* selected relay address, or
            None for P2P sessions (server outages are then skipped).
        seed: Seeds the network's fault RNG (loss/jitter draws), derived
            from the session seed by the caller.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        schedule: FaultSchedule,
        address_of: Dict[str, str],
        server_address: Optional[Callable[[], Optional[str]]] = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self._address_of = dict(address_of)
        self._server_address = server_address or (lambda: None)
        self.log: List[FaultLogEntry] = []
        self._states: Dict[str, _TargetState] = {}
        self._down_addresses: Set[str] = set()
        network.seed_faults(seed)
        for user_id in schedule.targets():
            if user_id != SERVER_TARGET and user_id not in self._address_of:
                raise KeyError(
                    f"fault target {user_id!r} is not a session participant"
                )

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every event's apply/revert on the simulator.

        Raises:
            TypeError: If ``sim`` is a batch engine (``BatchSimulator`` /
                ``LaneSimulator``).  Their 3-argument / lane-scoped
                scheduling surface would fail deep inside the event loop;
                batch cohorts arm through
                :class:`repro.faults.cohort.CohortInjector` instead.
        """
        from repro.netsim.batch import BatchSimulator, LaneSimulator

        if isinstance(self.sim, (BatchSimulator, LaneSimulator)):
            raise TypeError(
                f"FaultInjector.arm() cannot arm a "
                f"{type(self.sim).__name__}: batch engines take faults "
                f"through repro.faults.cohort.CohortInjector "
                f"(enroll each lane's injector, then seal)"
            )
        for event in self.schedule:
            self.sim.schedule_at(event.start_s, lambda e=event: self._apply(e))

    # ------------------------------------------------------------------
    # Queries (used by reconnect logic and tests)
    # ------------------------------------------------------------------

    def is_down(self, address: str) -> bool:
        """Whether ``address`` is currently blacked out by any fault."""
        return address in self._down_addresses

    def active_events(self) -> List[FaultEvent]:
        """Every event currently applied."""
        return [e for s in self._states.values() for e in s.active]

    # ------------------------------------------------------------------
    # Apply / revert
    # ------------------------------------------------------------------

    def _resolve(self, event: FaultEvent) -> Optional[str]:
        if event.target == SERVER_TARGET:
            return self._server_address()
        return self._address_of[event.target]

    def apply_event(self, event: FaultEvent, *,
                    schedule_revert: bool = True) -> Optional[str]:
        """Apply one event now; returns the resolved address (None = skip).

        With ``schedule_revert`` (the scalar path) the matching revert is
        scheduled on ``sim`` at ``event.end_s``; the cohort injector passes
        ``False`` and schedules one shared revert for the whole lane group.
        """
        address = self._resolve(event)
        if address is None:
            # P2P session: there is no server to take down.
            self.log.append(FaultLogEntry(self.sim.now, "skip", event))
            obs_metrics.counter("faults.skipped").inc()
            return None
        state = self._states.setdefault(address, _TargetState(address))
        state.active.append(event)
        self._recompute(state)
        self.log.append(FaultLogEntry(self.sim.now, "apply", event, address))
        obs_metrics.counter("faults.applied").inc()
        obs_metrics.counter(
            f"faults.applied.{event.kind.name.lower()}"
        ).inc()
        if schedule_revert:
            # The revert is pinned to the address resolved at onset: a
            # server outage keeps afflicting the *old* relay even after a
            # failover.
            self.sim.schedule_at(event.end_s,
                                 lambda: self._revert(event, address))
        return address

    def revert_event(self, event: FaultEvent, address: str) -> None:
        """Revert one applied event from its onset-resolved address."""
        state = self._states.get(address)
        if state is None or event not in state.active:
            return
        state.active.remove(event)
        self._recompute(state)
        self.log.append(FaultLogEntry(self.sim.now, "revert", event, address))
        obs_metrics.counter("faults.reverted").inc()

    def _apply(self, event: FaultEvent) -> None:
        self.apply_event(event)

    def _revert(self, event: FaultEvent, address: str) -> None:
        self.revert_event(event, address)

    def _recompute(self, state: _TargetState) -> None:
        """Re-derive the combined impairment of one attachment."""
        blackout, loss, jitter_ms, rate_factor = combine_impairment(
            state.active)
        if blackout or loss > 0.0 or jitter_ms > 0.0:
            previous = self.network.fault_of(state.address)
            fault = LinkFault(blackout=blackout, loss=loss, jitter_ms=jitter_ms)
            if previous is not None:
                fault.packets_dropped = previous.packets_dropped
            self.network.set_fault(state.address, fault)
        else:
            self.network.set_fault(state.address, None)

        ap = self.network.ap_of(state.address)
        if rate_factor < 1.0:
            ap.degrade(rate_factor)
        elif ap.degradation != 1.0:
            ap.restore()

        if blackout:
            self._down_addresses.add(state.address)
            # Revoke deliveries already crossing the core toward the
            # blacked-out attachment — the handle-cancellation path.
            self.network.drop_inflight(state.address)
        else:
            self._down_addresses.discard(state.address)
