"""The graceful-degradation ladder for persona streams.

Under disturbance a resilient telepresence app does not simply stall — it
walks down a ladder of representations, each cheaper than the last:

    textured mesh  →  simplified mesh  →  keypoints only  →  audio only

(For 2D persona sessions the same four rungs map to full-rate video,
reduced video, thumbnail video, and audio-only.)

The controller drives the ladder from *observed goodput*: it steps down as
soon as the receiver's goodput falls materially below the current rung's
nominal rate — directly to the highest rung the observed goodput can
sustain — and steps up one rung at a time after a streak of clean
intervals (the usual probe-up/back-off asymmetry of rate controllers).
The decision function is pure and monotone in goodput, which the property
tests rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple


class LadderLevel(enum.IntEnum):
    """The rungs, ordered by fidelity (and bandwidth appetite)."""

    AUDIO_ONLY = 0
    KEYPOINTS = 1
    SIMPLIFIED_MESH = 2
    TEXTURED_MESH = 3


#: Fraction of a rung's nominal rate that must be observed to keep it.
DOWN_RATIO = 0.8
#: Clean control intervals required before probing one rung up.
UP_STREAK = 3
#: Relative quality each rung delivers (feeds the QoE model's
#: ``triangle_fraction`` analog; audio-only keeps a sliver for presence).
LEVEL_QUALITY: Dict[LadderLevel, float] = {
    LadderLevel.TEXTURED_MESH: 1.0,
    LadderLevel.SIMPLIFIED_MESH: 0.60,
    LadderLevel.KEYPOINTS: 0.35,
    LadderLevel.AUDIO_ONLY: 0.05,
}


def sustainable_level(
    goodput_bps: float,
    nominal_bps: Mapping[LadderLevel, float],
    down_ratio: float = DOWN_RATIO,
) -> LadderLevel:
    """Highest rung whose nominal rate fits the observed goodput.

    Monotone non-decreasing in ``goodput_bps`` by construction: a higher
    goodput can only unlock higher rungs.  ``AUDIO_ONLY`` is always
    sustainable — presence never drops to nothing.
    """
    if goodput_bps < 0:
        raise ValueError("goodput cannot be negative")
    for level in sorted(nominal_bps, reverse=True):
        if level is LadderLevel.AUDIO_ONLY:
            continue
        if goodput_bps >= down_ratio * nominal_bps[level]:
            return level
    return LadderLevel.AUDIO_ONLY


def next_level(
    current: LadderLevel,
    goodput_bps: float,
    nominal_bps: Mapping[LadderLevel, float],
    clean_streak: int,
    down_ratio: float = DOWN_RATIO,
    up_streak: int = UP_STREAK,
) -> LadderLevel:
    """One control-interval ladder decision.

    Steps *down* immediately (to the sustainable rung) when observed
    goodput cannot hold the current rung; steps *up* one rung after
    ``up_streak`` clean intervals; otherwise holds.  For a fixed
    ``current`` and ``clean_streak`` the result is monotone non-decreasing
    in ``goodput_bps``.
    """
    nominal = nominal_bps.get(current, 0.0)
    if current > LadderLevel.AUDIO_ONLY and goodput_bps < down_ratio * nominal:
        floor = sustainable_level(goodput_bps, nominal_bps, down_ratio)
        return min(current, floor)
    if current < LadderLevel.TEXTURED_MESH and clean_streak >= up_streak:
        return LadderLevel(current + 1)
    return current


@dataclass
class DegradationLadder:
    """Tracks one sender's current rung and the transition history.

    Attributes:
        nominal_bps: Per-rung nominal wire rate of this sender's stream.
        level: Current rung.
        transitions: ``(time_s, level)`` pairs, starting with the initial
            rung at t=0.
        settle_s: Hold-down after any transition (including session
            start): observations inside the hold are ignored so the
            trailing goodput window can refill at the new rung's rate.
            Without it the ladder oscillates — right after climbing, the
            window still shows the old (lower) rate and the clean test
            fails spuriously.
    """

    nominal_bps: Dict[LadderLevel, float]
    level: LadderLevel = LadderLevel.TEXTURED_MESH
    settle_s: float = 1.0
    transitions: List[Tuple[float, LadderLevel]] = field(default_factory=list)
    _clean_streak: int = 0
    _settled_at: float = 0.0

    def __post_init__(self) -> None:
        if self.settle_s < 0:
            raise ValueError("settle time cannot be negative")
        if not self.transitions:
            self.transitions.append((0.0, self.level))

    def observe(self, time_s: float, goodput_bps: float) -> LadderLevel:
        """Feed one control interval's observed goodput; maybe transition."""
        if time_s < self._settled_at + self.settle_s:
            return self.level
        nominal = self.nominal_bps.get(self.level, 0.0)
        clean = nominal <= 0.0 or goodput_bps >= DOWN_RATIO * nominal
        self._clean_streak = self._clean_streak + 1 if clean else 0
        decided = next_level(
            self.level, goodput_bps, self.nominal_bps, self._clean_streak
        )
        if decided != self.level:
            self.level = decided
            self._clean_streak = 0
            self._settled_at = time_s
            self.transitions.append((time_s, decided))
        return self.level

    def occupancy(self, duration_s: float) -> Dict[LadderLevel, float]:
        """Seconds spent on each rung over ``[0, duration_s]``.

        Raises:
            ValueError: For a non-positive duration.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        seconds = {level: 0.0 for level in LadderLevel}
        for (start, level), (end, _next) in zip(
            self.transitions, self.transitions[1:] + [(duration_s, self.level)]
        ):
            seconds[level] += max(0.0, min(end, duration_s) - min(start, duration_s))
        return seconds

    def occupancy_fractions(self, duration_s: float) -> Dict[LadderLevel, float]:
        """Occupancy normalized to fractions of the session."""
        seconds = self.occupancy(duration_s)
        return {level: s / duration_s for level, s in seconds.items()}
