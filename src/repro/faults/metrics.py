"""Resilience metrics: goodput, stalls, time-to-recover, MOS-under-faults.

The tracker taps a participant's media-port handler and records every
arriving packet's timestamp, wire size, kind, and frame id, per origin.
From that single timeline the module derives the resilience observables
the experiment reports:

- **windowed goodput** (drives the degradation ladder),
- **stalls** — intervals where persona media stopped arriving,
- **time-to-recover** per fault event — from fault onset to the end of
  the stall it caused (0 when the ladder absorbed the fault entirely),
- **MOS-under-faults** — the session's QoE timeline scored per window
  with the rung-quality, delivery, delay, and frame-rate factors, mapped
  onto the usual 1–5 mean-opinion scale.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.ladder import LEVEL_QUALITY, DegradationLadder, LadderLevel
from repro.faults.schedule import FaultEvent
from repro.netsim.packet import Packet
from repro.vca import qoe

#: Packet kinds that constitute persona media (stall detection works on
#: these; audio keeps flowing at the ladder's bottom rung).
MEDIA_KINDS = frozenset({
    "semantic", "semantic-fec", "semantic-layered", "mesh", "video",
})
#: Kinds that count toward goodput (everything the origin sends us).
GOODPUT_KINDS = MEDIA_KINDS | frozenset({"audio", "fec-parity"})


class _OriginLog:
    """Arrival bookkeeping for one remote sender."""

    __slots__ = ("times", "cum_bytes", "media_times", "media_frames")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.cum_bytes: List[int] = []       # cumulative, parallel to times
        self.media_times: List[float] = []
        self.media_frames: List[Tuple[float, str, int]] = []

    def record(self, now: float, wire_bytes: int, kind: str,
               frame: Optional[int]) -> None:
        total = (self.cum_bytes[-1] if self.cum_bytes else 0) + wire_bytes
        self.times.append(now)
        self.cum_bytes.append(total)
        if kind in MEDIA_KINDS:
            self.media_times.append(now)
            if frame is not None and frame >= 0:
                self.media_frames.append((now, kind, frame))

    def bytes_between(self, start_s: float, end_s: float) -> int:
        lo = bisect.bisect_left(self.times, start_s)
        hi = bisect.bisect_right(self.times, end_s)
        if hi == 0 or lo >= hi:
            return 0
        before = self.cum_bytes[lo - 1] if lo > 0 else 0
        return self.cum_bytes[hi - 1] - before

    def frames_between(self, start_s: float, end_s: float) -> int:
        lo = bisect.bisect_left(self.media_frames, (start_s, "", -1))
        hi = bisect.bisect_left(self.media_frames, (end_s, "", -1))
        return len({(k, f) for _t, k, f in self.media_frames[lo:hi]})


class ResilienceTracker:
    """Taps one participant's receive path and records per-origin arrivals."""

    def __init__(self, clock: Callable[[], float],
                 window_s: float = 1.0) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self._clock = clock
        self.window_s = window_s
        self._origins: Dict[str, _OriginLog] = {}

    def tap(self, handler: Callable[[Packet], None]
            ) -> Callable[[Packet], None]:
        """Wrap a media-port handler so arrivals are recorded first."""

        def tapped(packet: Packet) -> None:
            self.record(packet)
            handler(packet)

        return tapped

    def record(self, packet: Packet) -> None:
        """Record one arriving packet (only goodput-bearing kinds)."""
        kind = packet.meta.get("kind")
        if kind not in GOODPUT_KINDS:
            return
        origin = packet.meta.get("origin", packet.src)
        log = self._origins.get(origin)
        if log is None:
            log = self._origins[origin] = _OriginLog()
        log.record(self._clock(), packet.wire_bytes, kind,
                   packet.meta.get("frame"))

    def origins(self) -> List[str]:
        """Senders seen so far, sorted."""
        return sorted(self._origins)

    def goodput_bps(self, origin: str, now: Optional[float] = None) -> float:
        """Wire goodput of one origin over the trailing window."""
        log = self._origins.get(origin)
        if log is None:
            return 0.0
        now = self._clock() if now is None else now
        # Early in the session the window clips to the elapsed time, so a
        # healthy stream is not misread as slow before t = window.
        window = min(now, self.window_s)
        if window <= 0:
            return 0.0
        window_bytes = log.bytes_between(now - window, now)
        return window_bytes * 8.0 / window

    def bytes_between(self, origin: str, start_s: float, end_s: float) -> int:
        """Wire bytes from one origin over an interval."""
        log = self._origins.get(origin)
        return log.bytes_between(start_s, end_s) if log else 0

    def frames_between(self, origin: str, start_s: float, end_s: float) -> int:
        """Distinct media frames from one origin over an interval."""
        log = self._origins.get(origin)
        return log.frames_between(start_s, end_s) if log else 0

    def media_arrivals(self, origin: str) -> List[float]:
        """Timestamps of persona-media packets from one origin."""
        log = self._origins.get(origin)
        return list(log.media_times) if log else []


# ----------------------------------------------------------------------
# Stalls and recovery
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Stall:
    """An interval with no persona media."""

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def find_stalls(
    arrival_times: Sequence[float],
    duration_s: float,
    gap_threshold_s: float = 0.35,
    warmup_s: float = 0.5,
) -> List[Stall]:
    """Extract stalls from a media arrival timeline.

    A stall opens when consecutive arrivals are further apart than
    ``gap_threshold_s`` (or media never starts after ``warmup_s``), and
    closes at the next arrival — or at ``duration_s`` if media never
    resumes.

    Raises:
        ValueError: For a non-positive duration.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    stalls: List[Stall] = []
    previous = warmup_s
    for arrival in arrival_times:
        if arrival - previous > gap_threshold_s:
            stalls.append(Stall(previous, arrival))
        previous = max(previous, arrival)
    if duration_s - previous > gap_threshold_s:
        stalls.append(Stall(previous, duration_s))
    return stalls


@dataclass(frozen=True)
class FaultRecovery:
    """Recovery outcome of one fault event."""

    event: FaultEvent
    time_to_recover_s: float
    stalled: bool

    @property
    def absorbed(self) -> bool:
        """The fault caused no stall at all (the ladder soaked it up)."""
        return not self.stalled


def recovery_of(event: FaultEvent, stalls: Sequence[Stall],
                slack_s: float = 5.0) -> FaultRecovery:
    """Time from fault onset until persona media flowed again.

    A stall is attributed to the fault when it overlaps
    ``[start, end + slack]`` — recovery work (reconnect backoff, ladder
    climbing) legitimately extends past the fault's own end.
    """
    horizon = event.end_s + slack_s
    related = [
        s for s in stalls
        if s.end_s > event.start_s and s.start_s < horizon
    ]
    if not related:
        return FaultRecovery(event, 0.0, stalled=False)
    recovered_at = max(s.end_s for s in related)
    return FaultRecovery(event, recovered_at - event.start_s, stalled=True)


# ----------------------------------------------------------------------
# MOS under faults
# ----------------------------------------------------------------------


def _level_at(ladder: DegradationLadder, time_s: float) -> LadderLevel:
    level = ladder.transitions[0][1]
    for t, lvl in ladder.transitions:
        if t <= time_s:
            level = lvl
        else:
            break
    return level


def mos_timeline(
    tracker: ResilienceTracker,
    origin: str,
    ladder: DegradationLadder,
    duration_s: float,
    one_way_delay_ms: float,
    target_fps: float = 90.0,
    window_s: float = 1.0,
) -> List[Tuple[float, float]]:
    """Per-window MOS (1–5) of one persona stream under faults.

    Each window is scored with the QoE model's multiplicative factors —
    delivery vs. the current rung's nominal rate, the rung's quality, the
    delay factor, and the delivered frame rate — then mapped onto 1–5.
    Audio-only windows score the rung's floor quality (presence without a
    persona) scaled by audio delivery.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    points: List[Tuple[float, float]] = []
    n_windows = max(1, int(round(duration_s / window_s)))
    for i in range(n_windows):
        start, end = i * window_s, min((i + 1) * window_s, duration_s)
        level = _level_at(ladder, start)
        nominal = ladder.nominal_bps.get(level, 0.0)
        delivered_bps = tracker.bytes_between(origin, start, end) * 8.0 / (
            end - start
        )
        if level is LadderLevel.AUDIO_ONLY:
            availability = min(1.0, delivered_bps / nominal) if nominal else 0.0
            score = LEVEL_QUALITY[level] * availability * qoe.delay_factor(
                one_way_delay_ms
            )
        else:
            availability = min(1.0, delivered_bps / nominal) if nominal else 0.0
            fps = tracker.frames_between(origin, start, end) / (end - start)
            score = (
                availability
                * LEVEL_QUALITY[level]
                * qoe.delay_factor(one_way_delay_ms)
                * qoe.frame_rate_factor(fps, target_fps)
            )
        points.append((start, 1.0 + 4.0 * score))
    return points


# ----------------------------------------------------------------------
# The per-session report
# ----------------------------------------------------------------------


@dataclass
class ResilienceReport:
    """Everything the resilience experiment reports for one session."""

    observer: str
    duration_s: float
    stalls: List[Stall] = field(default_factory=list)
    recoveries: List[FaultRecovery] = field(default_factory=list)
    ladder_occupancy_s: Dict[LadderLevel, float] = field(default_factory=dict)
    ladder_transitions: int = 0
    mos_mean: float = 5.0
    reconnects: int = 0

    @property
    def total_stall_s(self) -> float:
        """Seconds with no persona media at the observer."""
        return sum(s.duration_s for s in self.stalls)

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    @property
    def mean_ttr_s(self) -> float:
        """Mean time-to-recover over the faults that caused a stall."""
        stalled = [r.time_to_recover_s for r in self.recoveries if r.stalled]
        return sum(stalled) / len(stalled) if stalled else 0.0

    @property
    def max_ttr_s(self) -> float:
        return max((r.time_to_recover_s for r in self.recoveries), default=0.0)

    @property
    def all_recovered(self) -> bool:
        """Every fault's recovery time is finite (no stall reaches the end)."""
        return all(s.end_s < self.duration_s for s in self.stalls)

    def occupancy_fraction(self, level: LadderLevel) -> float:
        """Fraction of the session spent on one rung."""
        if self.duration_s <= 0:
            return 0.0
        return self.ladder_occupancy_s.get(level, 0.0) / self.duration_s
