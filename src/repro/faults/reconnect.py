"""Session reconnect: outage detection, backoff, server failover.

A relayed session notices its SFU went dark the only way a client can —
the media it expects stops arriving.  The manager here polls the current
relay's forwarding counters on a heartbeat; when they freeze for longer
than the outage timeout it enters the reconnect loop:

1. rank the fleet's servers by mean participant RTT
   (:func:`repro.geo.placement.rank_failover_servers`), skipping servers
   currently known to be down,
2. pay a connect delay proportional to the initiator→server RTT,
3. verify the chosen server is still healthy at connect completion and
   switch over (the runtime retargets every live source by mutating the
   shared :class:`~repro.vca.media.MediaTarget`), or
4. back off exponentially and try again — indefinitely, because with a
   one-server fleet (Teams) the only path to recovery is the original
   relay coming back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.geo.coords import GeoPoint
from repro.geo.placement import rank_failover_servers
from repro.geo.servers import Server, ServerFleet
from repro.netsim.engine import Simulator


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff between reconnect attempts."""

    base_s: float = 0.25
    factor: float = 2.0
    cap_s: float = 4.0

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError("need 0 < base <= cap")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def delay_s(self, attempt: int) -> float:
        """Wait before attempt number ``attempt`` (0-based).

        Raises:
            ValueError: For a negative attempt number.
        """
        if attempt < 0:
            raise ValueError("attempt cannot be negative")
        return min(self.cap_s, self.base_s * self.factor ** attempt)


@dataclass
class ReconnectEvent:
    """One detected outage and its resolution."""

    detected_s: float
    from_server: str
    recovered_s: Optional[float] = None
    to_server: Optional[str] = None
    attempts: int = 0

    @property
    def recovered(self) -> bool:
        return self.recovered_s is not None

    @property
    def downtime_s(self) -> Optional[float]:
        """Detection-to-recovery span (None while unresolved)."""
        if self.recovered_s is None:
            return None
        return self.recovered_s - self.detected_s

    @property
    def failed_over(self) -> bool:
        """Whether recovery landed on a different server."""
        return self.recovered and self.to_server != self.from_server


class ReconnectManager:
    """Detects relay outages and drives failover for one session.

    Args:
        sim: The session's event loop.
        fleet: The provider's server fleet.
        participant_locations: Where the users are (ranks candidates).
        initiator_location: Whose RTT prices the connect delay.
        current_server: The relay selected at session start.
        relay_packets: Returns the *current* relay's received-packet
            counter; frozen counters are the outage signal.
        activate: Switch the session onto a server.  Returns the new
            relay's received-packet counter getter.  The runtime
            implements this (attach/reuse SFU, re-register participants,
            retarget the shared media targets).
        is_down: Whether an address is currently blacked out (the
            injector's view); used to skip known-dead candidates.
        backoff: Retry pacing.
        heartbeat_s: Counter polling period.
        outage_timeout_s: Frozen-counter span that declares an outage.
        connect_rtt_multiplier: Connect delay as a multiple of the
            initiator→server one-way RTT (handshake round trips).
    """

    def __init__(
        self,
        sim: Simulator,
        fleet: ServerFleet,
        participant_locations: Sequence[GeoPoint],
        initiator_location: GeoPoint,
        current_server: Server,
        relay_packets: Callable[[], int],
        activate: Callable[[Server], Callable[[], int]],
        is_down: Callable[[str], bool] = lambda _address: False,
        backoff: Optional[BackoffPolicy] = None,
        heartbeat_s: float = 0.25,
        outage_timeout_s: float = 0.75,
        connect_rtt_multiplier: float = 1.5,
    ) -> None:
        if heartbeat_s <= 0 or outage_timeout_s <= 0:
            raise ValueError("heartbeat and timeout must be positive")
        self.sim = sim
        self.fleet = fleet
        self.participant_locations = list(participant_locations)
        self.initiator_location = initiator_location
        self.current_server = current_server
        self._relay_packets = relay_packets
        self._activate = activate
        self._is_down = is_down
        self.backoff = backoff or BackoffPolicy()
        self.heartbeat_s = heartbeat_s
        self.outage_timeout_s = outage_timeout_s
        self.connect_rtt_multiplier = connect_rtt_multiplier
        self.events: List[ReconnectEvent] = []
        self._reconnecting = False
        self._last_count = 0
        self._last_progress_s = 0.0

    @property
    def reconnects(self) -> int:
        """Outages detected so far."""
        return len(self.events)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def arm(self, until: Optional[float] = None) -> None:
        """Start the heartbeat monitor."""
        self._last_count = self._relay_packets()
        self._last_progress_s = self.sim.now
        self.sim.schedule_every(self.heartbeat_s, self._heartbeat, until=until)

    def _heartbeat(self) -> None:
        if self._reconnecting:
            return
        count = self._relay_packets()
        if count != self._last_count:
            self._last_count = count
            self._last_progress_s = self.sim.now
            return
        if self.sim.now - self._last_progress_s >= self.outage_timeout_s:
            self._on_outage()

    def _on_outage(self) -> None:
        self._reconnecting = True
        self.events.append(ReconnectEvent(
            detected_s=self.sim.now,
            from_server=self.current_server.label,
        ))
        self._attempt(0)

    # ------------------------------------------------------------------
    # The reconnect loop
    # ------------------------------------------------------------------

    def _connect_delay_s(self, server: Server) -> float:
        rtt_ms = self.fleet.path_model.base_rtt_ms(
            self.initiator_location, server.location
        )
        return self.connect_rtt_multiplier * rtt_ms / 1000.0

    def _candidates(self) -> List[Server]:
        healthy = rank_failover_servers(
            self.fleet, self.participant_locations,
            exclude=[
                s.address for s in self.fleet.servers
                if self._is_down(s.address)
            ],
        )
        return healthy

    def _attempt(self, attempt: int) -> None:
        event = self.events[-1]
        event.attempts = attempt + 1
        candidates = self._candidates()
        if not candidates:
            # Every server is dark; keep retrying until one returns.
            self.sim.schedule(self.backoff.delay_s(attempt),
                              lambda: self._attempt(attempt + 1))
            return
        chosen = candidates[0]
        self.sim.schedule(
            self._connect_delay_s(chosen),
            lambda: self._finish_connect(chosen, attempt),
        )

    def _finish_connect(self, chosen: Server, attempt: int) -> None:
        if self._is_down(chosen.address):
            # Died while we were connecting; back off and re-rank.
            self.sim.schedule(self.backoff.delay_s(attempt),
                              lambda: self._attempt(attempt + 1))
            return
        self._relay_packets = self._activate(chosen)
        self.current_server = chosen
        event = self.events[-1]
        event.recovered_s = self.sim.now
        event.to_server = chosen.label
        self._reconnecting = False
        self._last_count = self._relay_packets()
        self._last_progress_s = self.sim.now
