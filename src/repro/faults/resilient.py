"""Ties the fault subsystem into :class:`~repro.vca.session.TelepresenceSession`.

The runtime is the glue layer the session constructs when it is given a
fault schedule or a resilience config.  It owns, per session:

- one :class:`~repro.faults.metrics.ResilienceTracker` per participant
  (tapping the media-port handler),
- one :class:`~repro.faults.ladder.DegradationLadder` per *sender*,
  driven every control interval by the worst receiver-observed goodput
  of that sender's stream (the RTCP-feedback analog),
- the shared :class:`~repro.vca.media.MediaTarget` of every source, so a
  server failover retargets all live streams by mutating one object,
- the :class:`~repro.faults.injector.FaultInjector` realizing the
  schedule, and
- the :class:`~repro.faults.reconnect.ReconnectManager` (relayed
  sessions only) that detects relay outages and fails over to the best
  healthy server of the fleet.

Sessions built without faults or resilience never construct a runtime —
the default path stays byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.faults.cohort import CohortInjector
from repro.faults.injector import FaultInjector, FaultLogEntry
from repro.faults.ladder import DegradationLadder, LadderLevel
from repro.faults.metrics import (
    ResilienceReport,
    ResilienceTracker,
    find_stalls,
    mos_timeline,
    recovery_of,
)
from repro.faults.reconnect import BackoffPolicy, ReconnectEvent, ReconnectManager
from repro.faults.schedule import FaultSchedule
from repro.faults.sources import LadderedPersonaSource, video_scale_for_level
from repro.geo.servers import Server, build_fleet
from repro.netsim.packet import Packet
from repro.netsim.sfu import SelectiveForwardingUnit
from repro.vca.jitterbuffer import AdaptiveJitterBuffer
from repro.vca.media import MEDIA_PORT, MediaTarget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vca.session import TelepresenceSession

#: Approximate per-packet transport overhead for nominal audio wire rate.
_AUDIO_OVERHEAD_BYTES = 41


def _audio_wire_bps(bitrate_kbps: float) -> float:
    """Nominal wire rate of the 50 pps audio stream."""
    payload = max(16, int(bitrate_kbps * 1000 / 8 / 50))
    return (payload + _AUDIO_OVERHEAD_BYTES) * 8.0 * 50


def derive_fault_seed(session_seed: int) -> int:
    """Deterministic fault-RNG seed from the session seed (hash-stable)."""
    digest = hashlib.sha256(f"faults-{session_seed}".encode()).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass
class ResilienceConfig:
    """Tunables of the resilience mechanisms."""

    control_interval_s: float = 0.25
    goodput_window_s: float = 1.0
    gap_threshold_s: float = 0.35
    warmup_s: float = 0.5
    enable_ladder: bool = True
    enable_reconnect: bool = True
    enable_fec: bool = True
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    heartbeat_s: float = 0.25
    outage_timeout_s: float = 0.75
    textured_triangles: int = 2000
    simplified_triangles: int = 500
    texture_resolution: int = 128

    def __post_init__(self) -> None:
        if self.control_interval_s <= 0:
            raise ValueError("control interval must be positive")
        if self.goodput_window_s <= 0:
            raise ValueError("goodput window must be positive")


@dataclass
class SessionResilience:
    """What a resilient session exposes after running."""

    duration_s: float
    reports: Dict[str, Dict[str, ResilienceReport]]
    ladders: Dict[str, DegradationLadder]
    fault_log: List[FaultLogEntry]
    reconnect_events: List[ReconnectEvent]
    jitter_buffers: Dict[str, AdaptiveJitterBuffer]

    def report(self, observer: str, sender: str) -> ResilienceReport:
        """The report of ``observer`` watching ``sender``'s stream."""
        return self.reports[observer][sender]

    @property
    def reconnects(self) -> int:
        return len(self.reconnect_events)


class ResilienceRuntime:
    """Per-session fault-injection and resilience machinery.

    Constructed by :class:`~repro.vca.session.TelepresenceSession` when
    ``faults`` or ``resilience`` is given; the session calls the wiring
    hooks while building participants, then :meth:`finalize` once the
    topology stands, and :meth:`collect` after the run.
    """

    def __init__(
        self,
        session: "TelepresenceSession",
        schedule: Optional[FaultSchedule],
        config: Optional[ResilienceConfig],
    ) -> None:
        self.session = session
        self.schedule = schedule or FaultSchedule()
        self.config = config or ResilienceConfig()
        self.trackers: Dict[str, ResilienceTracker] = {}
        self.ladders: Dict[str, DegradationLadder] = {}
        self.targets: Dict[str, MediaTarget] = {}
        self.jitter_buffers: Dict[str, AdaptiveJitterBuffer] = {}
        self.injector: Optional[FaultInjector] = None
        self.reconnect: Optional[ReconnectManager] = None
        self._loss: Dict[str, float] = {}
        self._sfu_cache: Dict[str, SelectiveForwardingUnit] = {}

    # ------------------------------------------------------------------
    # Wiring hooks (called from TelepresenceSession._wire_participant)
    # ------------------------------------------------------------------

    def media_target(self, user_id: str, address: str, port: int
                     ) -> MediaTarget:
        """The shared, retargetable media target of one participant."""
        if user_id not in self.targets:
            self.targets[user_id] = MediaTarget(address, port)
        return self.targets[user_id]

    def tap(self, user_id: str,
            handler: Callable[[Packet], None]) -> Callable[[Packet], None]:
        """Wrap a media-port handler with arrival tracking + jitter buffer."""
        tracker = ResilienceTracker(
            lambda: self.session.sim.now, window_s=self.config.goodput_window_s
        )
        self.trackers[user_id] = tracker
        buffer = AdaptiveJitterBuffer()
        self.jitter_buffers[user_id] = buffer
        inner = tracker.tap(handler)

        def tapped(packet: Packet) -> None:
            if packet.meta.get("kind") in ("semantic", "semantic-fec",
                                           "mesh", "video"):
                buffer.observe(packet.created_at, self.session.sim.now)
            inner(packet)

        return tapped

    def loss_estimate(self, user_id: str) -> float:
        """Last control interval's loss estimate for one sender's stream."""
        return self._loss.get(user_id, 0.0)

    def spatial_source(self, user_id: str, seed: int
                       ) -> LadderedPersonaSource:
        """Build the laddered spatial source (and its ladder) for a sender."""
        config = self.config
        source = LadderedPersonaSource(
            self.session.session_secret,
            level_provider=lambda uid=user_id: self.ladders[uid].level,
            loss_estimate=(
                (lambda uid=user_id: self.loss_estimate(uid))
                if config.enable_fec else None
            ),
            seed=seed,
            textured_triangles=config.textured_triangles,
            simplified_triangles=config.simplified_triangles,
            texture_resolution=config.texture_resolution,
        )
        audio_bps = _audio_wire_bps(self.session.profile.audio_bitrate_kbps)
        self.ladders[user_id] = DegradationLadder(
            nominal_bps=source.nominal_rates(audio_bps),
            settle_s=self.config.goodput_window_s,
        )
        return source

    def video_rate_scale(self, user_id: str,
                         video_mbps: float) -> Callable[[], float]:
        """2D analog: build the sender's ladder and its encoder-scale hook."""
        audio_bps = _audio_wire_bps(self.session.profile.audio_bitrate_kbps)
        self.ladders[user_id] = DegradationLadder(nominal_bps={
            level: video_mbps * 1e6 * video_scale_for_level(level) + audio_bps
            for level in LadderLevel
        }, settle_s=self.config.goodput_window_s)
        return lambda: video_scale_for_level(self.ladders[user_id].level)

    # ------------------------------------------------------------------
    # Finalize (called once the session topology stands)
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Arm the injector, the ladder control loop, and the reconnector."""
        session = self.session
        self.injector = FaultInjector(
            session.sim,
            session.network,
            self.schedule,
            address_of=dict(session._addresses),
            server_address=lambda: (
                session.server.address if session.server is not None else None
            ),
            seed=derive_fault_seed(session.seed),
        )
        from repro.netsim.batch import LaneSimulator

        if isinstance(session.sim, LaneSimulator):
            # Lane-hosted sessions arm through the batch's cohort
            # injector: eagerly (bit-identical to scalar arming) unless a
            # gauntlet created the injector in deferred mode first, in
            # which case identical events group into single cohort
            # apply/revert pairs at seal time.
            CohortInjector.of(session.sim.batch).enroll(
                session.sim, self.injector)
        else:
            self.injector.arm()

        if self.config.enable_ladder and self.ladders:
            # The first tick waits one interval: at t=0 no packet has
            # arrived yet and a zero goodput reading would drop every
            # ladder straight to audio-only.
            session.sim.schedule_every(self.config.control_interval_s,
                                       self._control_tick,
                                       start=self.config.control_interval_s)

        if (
            self.config.enable_reconnect
            and session._sfu is not None
            and session.server is not None
        ):
            self._sfu_cache[session.server.address] = session._sfu
            fleet = build_fleet(session.profile.name,
                                session.network.path_model)
            initiator = session.participants[session.initiator_index]
            sfu = session._sfu
            self.reconnect = ReconnectManager(
                session.sim,
                fleet,
                [p.location for p in session.participants],
                initiator.location,
                session.server,
                relay_packets=lambda: sfu.sfu_stats.packets_received,
                activate=self._activate_server,
                is_down=lambda address: (
                    self.injector.is_down(address)
                    if self.injector is not None else False
                ),
                backoff=self.config.backoff,
                heartbeat_s=self.config.heartbeat_s,
                outage_timeout_s=self.config.outage_timeout_s,
            )
            self.reconnect.arm()

    def _control_tick(self) -> None:
        """One ladder control interval: feed worst receiver goodput."""
        now = self.session.sim.now
        addresses = self.session._addresses
        for user_id, ladder in self.ladders.items():
            address = addresses[user_id]
            receivers = [uid for uid in self.trackers if uid != user_id]
            goodputs = [
                self.trackers[uid].goodput_bps(address, now)
                for uid in receivers
            ]
            goodput = min(goodputs) if goodputs else 0.0
            nominal = ladder.nominal_bps.get(ladder.level, 0.0)
            self._loss[user_id] = (
                min(1.0, max(0.0, 1.0 - goodput / nominal))
                if nominal > 0 else 0.0
            )
            ladder.observe(now, goodput)

    def _activate_server(self, server: Server) -> Callable[[], int]:
        """Switch the session onto ``server`` (reconnect callback)."""
        session = self.session
        old_sfu = session._sfu
        sfu = self._sfu_cache.get(server.address)
        if sfu is None:
            sfu = SelectiveForwardingUnit(
                server.address, server.location,
                name=f"{session.profile.name}-sfu-{server.label}",
            )
            session.network.attach(sfu)
            self._sfu_cache[server.address] = sfu
        for address in session._addresses.values():
            if old_sfu is not None:
                old_sfu.unregister(address)
            sfu.register(address, MEDIA_PORT)
        session.server = server
        session._sfu = sfu
        for target in self.targets.values():
            target.address = sfu.address
            target.port = SelectiveForwardingUnit.MEDIA_PORT
        return lambda: sfu.sfu_stats.packets_received

    # ------------------------------------------------------------------
    # Collection (called from TelepresenceSession.run)
    # ------------------------------------------------------------------

    def _one_way_delay_ms(self, sender_addr: str, observer_addr: str) -> float:
        network = self.session.network
        server = self.session.server
        if server is None:
            return network.one_way_delay_s(sender_addr, observer_addr) * 1000.0
        return (
            network.one_way_delay_s(sender_addr, server.address)
            + network.one_way_delay_s(server.address, observer_addr)
        ) * 1000.0

    def collect(self, duration_s: float) -> SessionResilience:
        """Assemble every participant-pair report after the run."""
        addresses = self.session._addresses
        config = self.config
        reports: Dict[str, Dict[str, ResilienceReport]] = {}
        for observer, tracker in self.trackers.items():
            reports[observer] = {}
            for sender, sender_addr in addresses.items():
                if sender == observer:
                    continue
                stalls = find_stalls(
                    tracker.media_arrivals(sender_addr), duration_s,
                    gap_threshold_s=config.gap_threshold_s,
                    warmup_s=config.warmup_s,
                )
                recoveries = [
                    recovery_of(event, stalls) for event in self.schedule
                ]
                ladder = self.ladders.get(sender)
                if ladder is not None:
                    occupancy = ladder.occupancy(duration_s)
                    transitions = len(ladder.transitions) - 1
                    mos_points = mos_timeline(
                        tracker, sender_addr, ladder, duration_s,
                        self._one_way_delay_ms(sender_addr,
                                               addresses[observer]),
                    )
                    mos = sum(m for _t, m in mos_points) / len(mos_points)
                else:
                    occupancy, transitions, mos = {}, 0, 5.0
                reports[observer][sender] = ResilienceReport(
                    observer=observer,
                    duration_s=duration_s,
                    stalls=stalls,
                    recoveries=recoveries,
                    ladder_occupancy_s=occupancy,
                    ladder_transitions=transitions,
                    mos_mean=mos,
                    reconnects=(
                        self.reconnect.reconnects
                        if self.reconnect is not None else 0
                    ),
                )
        return SessionResilience(
            duration_s=duration_s,
            reports=reports,
            ladders=dict(self.ladders),
            fault_log=list(self.injector.log) if self.injector else [],
            reconnect_events=(
                list(self.reconnect.events)
                if self.reconnect is not None else []
            ),
            jitter_buffers=dict(self.jitter_buffers),
        )
