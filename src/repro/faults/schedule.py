"""Fault schedules: what breaks, when, for how long.

The paper's interesting behaviour happens under disturbance — FaceTime's
throughput collapse under shaping (Sec. 4.3), server reselection, persona
degradation at scale.  A :class:`FaultSchedule` is the scripted (or
seeded-random) description of such disturbances; the
:class:`~repro.faults.injector.FaultInjector` realizes it on a running
session.

All randomness derives from an explicit seed, so a fault run is exactly
reproducible: the same schedule, seed, and session seed give bit-identical
traces.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Pseudo-target addressing the session's currently selected relay server.
SERVER_TARGET = "@server"


def derive_seed(base_seed: int, *salts: object) -> int:
    """Derive an independent RNG seed from ``base_seed`` and salts.

    The seed-derivation rule of the whole fault subsystem (the
    ``RetryPolicy`` idiom): the salted string
    ``"faults:{base_seed}:{salt}:{salt}..."`` is sha256-hashed and the
    first four digest bytes read little-endian.  ``hash()`` would not do —
    string hashing is salted per process, and gauntlet cells must produce
    bit-identical schedules whether they run serially, under ``--jobs 8``,
    or on a distributed worker.

    Conventions used across the gauntlet:

    - **lanes**: lane 0 of a cohort keeps ``base_seed`` verbatim (so a
      cohort of one is seed-compatible with the scalar path); lane ``i > 0``
      uses ``derive_seed(base_seed, "lane", i)``.
    - **domains**: each domain-event generator draws from
      ``derive_seed(base_seed, "domain", kind)``; per-event lane fan-out
      subsampling uses ``derive_seed(base_seed, "fanout", index)``.
    """
    text = ":".join(["faults", str(base_seed), *(str(s) for s in salts)])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:4], "little")


class FaultKind(enum.Enum):
    """The disturbance classes the injector understands."""

    #: Total connectivity loss at a participant's attachment.
    LINK_BLACKOUT = "link-blackout"
    #: AP rate collapses to ``magnitude`` × the base rate (0 < m < 1).
    BANDWIDTH_COLLAPSE = "bandwidth-collapse"
    #: Extra independent packet loss of probability ``magnitude``.
    LOSS_BURST = "loss-burst"
    #: Extra uniform one-way delay with amplitude ``magnitude`` ms.
    JITTER_BURST = "jitter-burst"
    #: Radio degradation: rate × ``magnitude`` plus mild loss and jitter.
    WIFI_DEGRADATION = "wifi-degradation"
    #: The selected relay server goes dark (blackout at its attachment).
    SERVER_OUTAGE = "server-outage"


#: Magnitude ranges :meth:`FaultSchedule.random` draws from, per kind.
#: Kinds without an entry (blackouts, server outages) take magnitude 0.0
#: and consume no draw.
_MAGNITUDE_RANGES = {
    FaultKind.BANDWIDTH_COLLAPSE: (0.02, 0.3),
    FaultKind.LOSS_BURST: (0.02, 0.25),
    FaultKind.JITTER_BURST: (5.0, 80.0),
    FaultKind.WIFI_DEGRADATION: (0.1, 0.6),
}


def _draw_magnitude(rng: np.random.Generator, kind: "FaultKind") -> float:
    """Exactly one uniform draw for magnitude kinds, zero otherwise."""
    bounds = _MAGNITUDE_RANGES.get(kind)
    if bounds is None:
        return 0.0
    return float(rng.uniform(*bounds))


#: Validation bounds for each kind's magnitude (inclusive).
_MAGNITUDE_BOUNDS = {
    FaultKind.LINK_BLACKOUT: (0.0, 1.0),        # magnitude unused
    FaultKind.BANDWIDTH_COLLAPSE: (1e-6, 1.0),  # rate factor
    FaultKind.LOSS_BURST: (0.0, 1.0),           # drop probability
    FaultKind.JITTER_BURST: (0.0, 10_000.0),    # amplitude in ms
    FaultKind.WIFI_DEGRADATION: (1e-6, 1.0),    # rate factor
    FaultKind.SERVER_OUTAGE: (0.0, 1.0),        # magnitude unused
}


@dataclass(frozen=True)
class FaultEvent:
    """One disturbance: a kind, a target, an interval, a magnitude.

    Attributes:
        kind: What breaks.
        target: A participant ``user_id``, or :data:`SERVER_TARGET` for
            the session's currently selected relay.
        start_s: Onset time in session seconds.
        duration_s: How long the fault persists.
        magnitude: Kind-specific severity (see :class:`FaultKind`).
    """

    kind: FaultKind
    target: str
    start_s: float
    duration_s: float
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError(f"fault cannot start before t=0 ({self.start_s})")
        if self.duration_s <= 0:
            raise ValueError(f"fault duration must be positive ({self.duration_s})")
        low, high = _MAGNITUDE_BOUNDS[self.kind]
        if not low <= self.magnitude <= high:
            raise ValueError(
                f"{self.kind.value} magnitude {self.magnitude} outside "
                f"[{low}, {high}]"
            )
        if self.kind is FaultKind.SERVER_OUTAGE and self.target != SERVER_TARGET:
            raise ValueError(
                f"server outages target {SERVER_TARGET!r}, got {self.target!r}"
            )

    @property
    def end_s(self) -> float:
        """Instant the fault clears."""
        return self.start_s + self.duration_s

    def active_at(self, time_s: float) -> bool:
        """Whether the fault covers ``time_s`` (half-open interval)."""
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.start_s, e.end_s)))
        object.__setattr__(self, "events", ordered)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def horizon_s(self) -> float:
        """Time the last fault clears (0.0 for an empty schedule)."""
        return max((e.end_s for e in self.events), default=0.0)

    def active_at(self, time_s: float) -> List[FaultEvent]:
        """Every fault covering ``time_s``."""
        return [e for e in self.events if e.active_at(time_s)]

    def for_target(self, target: str) -> List[FaultEvent]:
        """Every fault aimed at one target."""
        return [e for e in self.events if e.target == target]

    def targets(self) -> List[str]:
        """Distinct targets, sorted (``@server`` sorts first)."""
        return sorted({e.target for e in self.events})

    @classmethod
    def scripted(cls, events: Iterable[FaultEvent]) -> "FaultSchedule":
        """Build from an explicit event list."""
        return cls(tuple(events))

    @classmethod
    def random(
        cls,
        seed: int,
        duration_s: float,
        targets: Sequence[str],
        events_per_minute: float = 4.0,
        kinds: Optional[Sequence[FaultKind]] = None,
        mean_fault_s: float = 1.5,
        include_server: bool = True,
    ) -> "FaultSchedule":
        """A seeded-random schedule: Poisson onsets, exponential durations.

        Every draw comes from one ``numpy`` generator seeded with ``seed``,
        so the schedule — and therefore the whole fault run — is exactly
        reproducible.  The per-event draw order is part of the contract
        (``tests/test_fault_domains.py`` replays it against a reference):
        inter-arrival gap, kind, duration, target (skipped for server
        outages), then exactly one magnitude draw for kinds with a range
        in ``_MAGNITUDE_RANGES`` and none otherwise.  An earlier version
        eagerly evaluated a dict of all four magnitude draws per event,
        which burned generator state on kinds that were never selected.

        Args:
            seed: Master seed for the schedule.
            duration_s: Session length the faults must fit into.
            targets: Participant user-ids eligible as targets.
            events_per_minute: Mean fault arrival rate.
            kinds: Allowed kinds (default: all).
            mean_fault_s: Mean fault duration.
            include_server: Whether server outages may be drawn.

        Raises:
            ValueError: For an empty target list or non-positive duration.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not targets:
            raise ValueError("need at least one target")
        rng = np.random.default_rng(seed)
        allowed = list(kinds) if kinds is not None else [
            k for k in FaultKind
            if include_server or k is not FaultKind.SERVER_OUTAGE
        ]
        if not include_server:
            allowed = [k for k in allowed if k is not FaultKind.SERVER_OUTAGE]
        events: List[FaultEvent] = []
        time_s = float(rng.exponential(60.0 / events_per_minute))
        while time_s < duration_s:
            kind = allowed[int(rng.integers(len(allowed)))]
            duration = float(
                np.clip(rng.exponential(mean_fault_s), 0.25,
                        max(0.5, duration_s - time_s))
            )
            if kind is FaultKind.SERVER_OUTAGE:
                target = SERVER_TARGET
            else:
                target = targets[int(rng.integers(len(targets)))]
            magnitude = _draw_magnitude(rng, kind)
            events.append(FaultEvent(kind, target, time_s, duration, magnitude))
            time_s += float(rng.exponential(60.0 / events_per_minute))
        return cls(tuple(events))


def standard_disturbance(duration_s: float,
                         victim: str = "U2") -> FaultSchedule:
    """The canonical scripted disturbance used by the resilience experiment.

    Five faults — one of each recoverable class — placed at fixed fractions
    of the session, so every profile faces the identical gauntlet: a link
    blackout, a server outage (ignored by P2P sessions), a loss burst, a
    bandwidth collapse, and a WiFi degradation.
    """
    if duration_s < 10.0:
        raise ValueError("the standard disturbance needs >= 10 s of session")
    f = duration_s  # event placement scales with the session length
    return FaultSchedule.scripted([
        FaultEvent(FaultKind.LINK_BLACKOUT, victim, 0.10 * f, 0.06 * f),
        FaultEvent(FaultKind.SERVER_OUTAGE, SERVER_TARGET, 0.28 * f, 0.10 * f),
        FaultEvent(FaultKind.LOSS_BURST, victim, 0.50 * f, 0.08 * f, 0.10),
        FaultEvent(FaultKind.BANDWIDTH_COLLAPSE, victim, 0.68 * f, 0.08 * f,
                   0.004),
        FaultEvent(FaultKind.WIFI_DEGRADATION, victim, 0.86 * f, 0.06 * f,
                   0.30),
    ])
