"""The ladder-driven persona sources.

:class:`LadderedPersonaSource` is the spatial persona stream a resilient
app would run: every display tick it asks the degradation ladder which
rung it is on and emits that rung's representation —

- **textured mesh**: Draco-style geometry plus a compressed skin atlas,
  fragmented to the media MTU (kind ``"mesh"``),
- **simplified mesh**: the same heads decimated hard (kind ``"mesh"``),
- **keypoints**: LZMA semantic frames over QUIC (kind ``"semantic"``),
  optionally wrapped in XOR FEC when the feedback loop reports loss
  (kind ``"semantic-fec"``),
- **audio only**: nothing — the separate audio stream carries presence.

For 2D sessions the same rungs map onto
:func:`video_scale_for_level`, consumed by
:class:`~repro.vca.media.VideoSource` through its ``rate_scale`` hook.

All pools are pre-encoded from seeded generators, so a fault run stays
exactly reproducible.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import calibration
from repro.faults.ladder import LadderLevel
from repro.keypoints.codec import SemanticCodec
from repro.keypoints.motion import MotionSynthesizer
from repro.mesh.codec import DracoLikeCodec
from repro.mesh.generate import head_mesh
from repro.mesh.simplify import decimate_to_target
from repro.mesh.texture import TextureCodec, skin_texture
from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_UDP, MEDIA_MTU_BYTES, Packet
from repro.transport.fec import AdaptiveFecPolicy, FecEncoder
from repro.vca.media import MEDIA_PORT, MediaTarget, quic_connection_for

#: Approximate per-packet overhead (IP + UDP) used for nominal wire rates.
_PACKET_OVERHEAD_BYTES = 28

#: 2D analog of the ladder: encoder scale factor per rung (0 = skip).
VIDEO_SCALE = {
    LadderLevel.TEXTURED_MESH: 1.0,
    LadderLevel.SIMPLIFIED_MESH: 0.45,
    LadderLevel.KEYPOINTS: 0.12,
    LadderLevel.AUDIO_ONLY: 0.0,
}


def video_scale_for_level(level: LadderLevel) -> float:
    """Video payload scale a 2D sender uses on one ladder rung."""
    return VIDEO_SCALE[level]


def _wire_bps(frame_bytes: float, fps: float,
              mtu: int = MEDIA_MTU_BYTES) -> float:
    """Nominal wire rate of an MTU-fragmented frame stream (0 if silent)."""
    if frame_bytes <= 0:
        return 0.0
    packets = max(1.0, math.ceil(frame_bytes / mtu))
    return (frame_bytes + packets * _PACKET_OVERHEAD_BYTES) * 8.0 * fps


class LadderedPersonaSource:
    """A spatial persona stream that follows the degradation ladder.

    Args:
        session_secret: Shared secret for the QUIC keypoint stream.
        level_provider: Called once per frame tick; returns the rung to
            emit (typically ``lambda: ladder.level``).
        loss_estimate: Called once per frame tick at the keypoint rung;
            an observed loss fraction in [0, 1] (the RTCP-style feedback
            that drives FEC adaptation).  None disables FEC entirely.
        seed: Seeds every generator pool.
        fps: Display tick rate (the 90 FPS render loop).
        textured_triangles: Geometry budget at the top rung.
        simplified_triangles: Geometry budget one rung down.
        texture_resolution: Skin-atlas resolution at the top rung.
        pool_size: Distinct pre-encoded meshes/textures to cycle.
    """

    def __init__(
        self,
        session_secret: bytes,
        level_provider: Callable[[], LadderLevel],
        loss_estimate: Optional[Callable[[], float]] = None,
        seed: int = 0,
        fps: float = float(calibration.TARGET_FPS),
        textured_triangles: int = 2000,
        simplified_triangles: int = 500,
        texture_resolution: int = 128,
        pool_size: int = 4,
        keypoint_pool: int = 128,
        fec_policy: Optional[AdaptiveFecPolicy] = None,
    ) -> None:
        if pool_size < 1 or keypoint_pool < 1:
            raise ValueError("pools must hold at least one frame")
        self.fps = fps
        self._secret = session_secret
        self._level = level_provider
        self._loss = loss_estimate
        self._fec_policy = fec_policy or AdaptiveFecPolicy()
        self._fec_encoder: Optional[FecEncoder] = None

        geometry = DracoLikeCodec()
        texture_codec = TextureCodec(quality=70)
        self._textured: List[bytes] = []
        self._simplified: List[bytes] = []
        for i in range(pool_size):
            mesh = head_mesh(textured_triangles, seed=seed + i)
            atlas = texture_codec.encode(
                skin_texture(texture_resolution, seed=seed + i)
            )
            self._textured.append(geometry.encode(mesh).payload + atlas)
            # Coarse decimation grids quantize the achievable triangle
            # counts; a generous tolerance keeps every seed buildable.
            simplified = decimate_to_target(mesh, simplified_triangles,
                                            tolerance=0.35)
            self._simplified.append(geometry.encode(simplified).payload)

        codec = SemanticCodec(seed=seed)
        synth = MotionSynthesizer(fps=fps, seed=seed)
        self._keypoints = [
            codec.encode(frame, include_confidence=False).payload
            for frame in synth.frames(keypoint_pool)
        ]
        self._frame_index = 0
        self.frames_per_level: Dict[LadderLevel, int] = {
            level: 0 for level in LadderLevel
        }

    # ------------------------------------------------------------------
    # Rates (feed the ladder's nominal map)
    # ------------------------------------------------------------------

    def mean_frame_bytes(self, level: LadderLevel) -> float:
        """Mean pre-transport frame size on one rung (0 for audio-only)."""
        pool = {
            LadderLevel.TEXTURED_MESH: self._textured,
            LadderLevel.SIMPLIFIED_MESH: self._simplified,
            LadderLevel.KEYPOINTS: self._keypoints,
            LadderLevel.AUDIO_ONLY: None,
        }[level]
        if pool is None:
            return 0.0
        return float(np.mean([len(p) for p in pool]))

    def nominal_rates(self, audio_bps: float = 0.0
                      ) -> Dict[LadderLevel, float]:
        """Per-rung nominal wire rates for the ladder controller.

        Every rung includes the always-on audio stream's rate, so the
        controller's clean/dirty test sees the same aggregate the
        receiver-side goodput monitor measures.
        """
        return {
            level: _wire_bps(self.mean_frame_bytes(level), self.fps)
            + audio_bps
            for level in LadderLevel
        }

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def _fec_wrap(self, datagrams: List[bytes], k: int) -> List[bytes]:
        """Wrap QUIC datagrams in XOR-FEC framing (re-keying k safely)."""
        encoder = self._fec_encoder
        if encoder is None or encoder.k != k:
            first_group = encoder.next_group if encoder is not None else 0
            encoder = self._fec_encoder = FecEncoder(k, first_group=first_group)
        framed: List[bytes] = []
        for datagram in datagrams:
            framed.extend(p.pack() for p in encoder.protect(datagram))
        return framed

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = MEDIA_PORT, until: Optional[float] = None,
               target: Optional[MediaTarget] = None) -> None:
        """Handshake, then emit the current rung's frame per tick."""
        conn = quic_connection_for(host.address, self._secret)
        target = target or MediaTarget(target_address, target_port)

        def send(payload: bytes, kind: str, frame: int) -> None:
            host.send(Packet(
                src=host.address, dst=target.address,
                src_port=MEDIA_PORT, dst_port=target.port,
                protocol=IPPROTO_UDP, payload=payload,
                meta={"kind": kind, "frame": frame,
                      "origin": host.address},
            ))

        def handshake() -> None:
            send(conn.initial_packet(), "quic-initial", -1)
            send(conn.handshake_packet(), "quic-handshake", -1)

        def send_frame() -> None:
            level = self._level()
            index = self._frame_index
            self._frame_index += 1
            self.frames_per_level[level] += 1
            if level is LadderLevel.AUDIO_ONLY:
                return
            if level is LadderLevel.KEYPOINTS:
                encoded = self._keypoints[index % len(self._keypoints)]
                datagrams = conn.protect_frame(encoded)
                k = (
                    self._fec_policy.k_for_loss(
                        min(1.0, max(0.0, float(self._loss())))
                    )
                    if self._loss is not None else None
                )
                if k is not None:
                    for payload in self._fec_wrap(datagrams, k):
                        send(payload, "semantic-fec", index)
                else:
                    for payload in datagrams:
                        send(payload, "semantic", index)
                return
            pool = (
                self._textured
                if level is LadderLevel.TEXTURED_MESH else self._simplified
            )
            blob = pool[index % len(pool)]
            for offset in range(0, len(blob), MEDIA_MTU_BYTES):
                send(blob[offset:offset + MEDIA_MTU_BYTES], "mesh", index)

        sim.schedule(0.0, handshake)
        sim.schedule_every(1.0 / self.fps, send_frame,
                           start=2.0 / self.fps, until=until)
