"""Geography substrate: coordinates, US regions, server fleets, RTT model.

This package replaces the paper's physical vantage points (eight client
locations across the Western, Middle, and Eastern US) and the VCA providers'
production server infrastructure with a calibrated model:

- :mod:`repro.geo.coords` — latitude/longitude points and great-circle math.
- :mod:`repro.geo.regions` — the W/M/E region catalog of test cities.
- :mod:`repro.geo.latency` — the propagation + inflation + access RTT model
  fit to Table 1 of the paper.
- :mod:`repro.geo.servers` — per-VCA server fleets and the initiator-nearest
  selection policy the paper reverse-engineers in Sec. 4.1.
- :mod:`repro.geo.geolocate` — MaxMind/ipinfo-style geolocation with
  city-level error, and the anycast-detection probe.
"""

from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.regions import Region, CITY_CATALOG, city, test_clients
from repro.geo.latency import PathModel, rtt_ms
from repro.geo.servers import Server, ServerFleet, build_fleet, ALL_FLEETS
from repro.geo.geolocate import GeoDatabase, AnycastProbe
from repro.geo.traceroute import TcpTraceroute, synthesize_path
from repro.geo.placement import assess_fleet, optimize_placement

__all__ = [
    "GeoPoint",
    "haversine_km",
    "Region",
    "CITY_CATALOG",
    "city",
    "test_clients",
    "PathModel",
    "rtt_ms",
    "Server",
    "ServerFleet",
    "build_fleet",
    "ALL_FLEETS",
    "GeoDatabase",
    "AnycastProbe",
    "TcpTraceroute",
    "synthesize_path",
    "assess_fleet",
    "optimize_placement",
]
