"""Geography substrate: coordinates, regions, fleets, demand, RTT model.

This package replaces the paper's physical vantage points (eight client
locations across the Western, Middle, and Eastern US) and the VCA providers'
production server infrastructure with a calibrated model:

- :mod:`repro.geo.coords` — latitude/longitude points and great-circle math
  (scalar and bit-identical vectorized kernels).
- :mod:`repro.geo.regions` — the W/M/E region catalog of test cities.
- :mod:`repro.geo.latency` — the propagation + inflation + access RTT model
  fit to Table 1 of the paper, with RTT-matrix kernels.
- :mod:`repro.geo.servers` — per-VCA server fleets and the initiator-nearest
  selection policy the paper reverse-engineers in Sec. 4.1.
- :mod:`repro.geo.geolocate` — MaxMind/ipinfo-style geolocation with
  city-level error, and the anycast-detection probe.
- :mod:`repro.geo.demand` — planet-scale synthetic demand: a global region
  catalog with population-weighted diurnal load and seeded flash crowds.
- :mod:`repro.geo.policy` — the pluggable server-selection policy registry
  (initiator-nearest as observed, client-nearest/A2, latency-budget,
  load-aware).
- :mod:`repro.geo.placement` — vectorized k-median placement optimization
  over US or global candidate grids.
"""

from repro.geo.coords import GeoPoint, haversine_km, haversine_km_arrays
from repro.geo.regions import Region, CITY_CATALOG, city, test_clients
from repro.geo.latency import PathModel, rtt_ms, rtt_matrix_ms
from repro.geo.servers import Server, ServerFleet, build_fleet, ALL_FLEETS
from repro.geo.geolocate import GeoDatabase, AnycastProbe
from repro.geo.traceroute import TcpTraceroute, synthesize_path
from repro.geo.placement import (
    assess_fleet,
    global_candidate_sites,
    optimize_placement,
)
from repro.geo.demand import DemandModel, FlashCrowd, WorldRegion, WORLD_REGIONS
from repro.geo.policy import (
    ServerSelectionPolicy,
    get_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "GeoPoint",
    "haversine_km",
    "haversine_km_arrays",
    "Region",
    "CITY_CATALOG",
    "city",
    "test_clients",
    "PathModel",
    "rtt_ms",
    "rtt_matrix_ms",
    "Server",
    "ServerFleet",
    "build_fleet",
    "ALL_FLEETS",
    "GeoDatabase",
    "AnycastProbe",
    "TcpTraceroute",
    "synthesize_path",
    "assess_fleet",
    "optimize_placement",
    "global_candidate_sites",
    "DemandModel",
    "FlashCrowd",
    "WorldRegion",
    "WORLD_REGIONS",
    "ServerSelectionPolicy",
    "get_policy",
    "policy_names",
    "register_policy",
]
