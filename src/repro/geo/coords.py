"""Geographic coordinates and great-circle distance.

The RTT model in :mod:`repro.geo.latency` is driven entirely by great-circle
distances between named points, so this module is the geometric foundation of
the Table 1 reproduction — and, since the planet-scale placement studies, of
RTT *matrices* between millions of sampled users and thousands of candidate
server sites.

The scalar and vectorized paths share one numpy ufunc core
(:func:`haversine_km_arrays`), so a matrix entry is bit-identical to the
scalar distance between the same two points.  That equivalence is what lets
the placement optimizer swap the O(sites x clients) Python loops for array
kernels without changing a single measured value; the property suite pins it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: Mean Earth radius in kilometers (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A named point on the Earth's surface.

    Attributes:
        name: Human-readable label (usually a city).
        lat: Latitude in degrees, positive north.
        lon: Longitude in degrees, positive east.
    """

    name: str
    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometers."""
        return haversine_km(self, other)


def haversine_km_arrays(lat_a: np.ndarray, lon_a: np.ndarray,
                        lat_b: np.ndarray, lon_b: np.ndarray) -> np.ndarray:
    """Great-circle distance between coordinate arrays, in kilometers.

    Broadcasts like any numpy ufunc expression: feed ``(n, 1)`` against
    ``(1, m)`` shaped arrays to get the full n x m distance matrix.

    Every operation is a numpy ufunc and squares are spelled as explicit
    multiplications: numpy lowers *array* ``** 2`` to a multiply but sends
    *scalar* ``** 2`` through ``pow``, whose last bit can differ — explicit
    multiplication is what keeps 0-d (scalar) calls bit-identical to matrix
    entries, which the placement property suite asserts.
    """
    lat1, lon1 = np.radians(lat_a), np.radians(lon_a)
    lat2, lon2 = np.radians(lat_b), np.radians(lon_b)
    sin_dlat = np.sin((lat2 - lat1) / 2.0)
    sin_dlon = np.sin((lon2 - lon1) / 2.0)
    h = sin_dlat * sin_dlat + np.cos(lat1) * np.cos(lat2) * sin_dlon * sin_dlon
    h = np.minimum(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(h))


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometers.

    Uses the haversine formula, which is numerically stable for the
    distances this package cares about; delegates to the shared ufunc
    core so scalar distances match matrix entries bit-for-bit.
    """
    return float(haversine_km_arrays(
        np.float64(a.lat), np.float64(a.lon),
        np.float64(b.lat), np.float64(b.lon),
    ))


def latlon_arrays(points: Sequence[GeoPoint]) -> Tuple[np.ndarray, np.ndarray]:
    """Split a point sequence into float64 ``(lat, lon)`` arrays."""
    lat = np.array([p.lat for p in points], dtype=np.float64)
    lon = np.array([p.lon for p in points], dtype=np.float64)
    return lat, lon
