"""Geographic coordinates and great-circle distance.

The RTT model in :mod:`repro.geo.latency` is driven entirely by great-circle
distances between named points, so this module is the geometric foundation of
the Table 1 reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean Earth radius in kilometers (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A named point on the Earth's surface.

    Attributes:
        name: Human-readable label (usually a city).
        lat: Latitude in degrees, positive north.
        lon: Longitude in degrees, positive east.
    """

    name: str
    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometers."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometers.

    Uses the haversine formula, which is numerically stable for the
    continental-US distances this package cares about.
    """
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))
