"""Planet-scale synthetic demand: who wants a telepresence call, where, when.

The paper measures a fixed US deployment from eight vantage cities; the
ROADMAP asks the obvious scaling question — what would these systems look
like serving the planet?  This module supplies the demand side of that
question:

- a **global region catalog** (:data:`WORLD_REGIONS`): ~40 metro areas
  across six continents with rough metro populations and UTC offsets,
  extending the paper's US-only vantage set;
- a **diurnal load curve** per region (evening peak, pre-dawn trough,
  phased by the region's local time); and
- seeded **flash crowds** — short demand bursts pinned to one region,
  the "event traffic" that stresses any placement.

Everything is vectorized and deterministic: :meth:`DemandModel.sample_users`
turns a seed + UTC hour into millions of jittered (lat, lon) user
coordinates in a few hundred milliseconds, and the same seed always yields
the same planet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.coords import GeoPoint, latlon_arrays

#: Hour of local time at which demand peaks (evening calls).
PEAK_LOCAL_HOUR = 20.0
#: Fraction of peak demand that survives the pre-dawn trough.
TROUGH_FLOOR = 0.08


@dataclass(frozen=True)
class WorldRegion:
    """One metro-area demand center.

    Attributes:
        name: Metro label.
        location: Region centroid.
        population_m: Metro population in millions (coarse, order-of-
            magnitude fidelity is all the demand model needs).
        utc_offset_h: Offset used to phase the diurnal curve (standard
            time; DST is noise at this fidelity).
        spread_deg: Scatter of sampled users around the centroid, in
            degrees (~1 deg latitude is 111 km of suburb).
    """

    name: str
    location: GeoPoint
    population_m: float
    utc_offset_h: float
    spread_deg: float = 1.0

    def __post_init__(self) -> None:
        if self.population_m <= 0:
            raise ValueError("population must be positive")
        if not -12.0 <= self.utc_offset_h <= 14.0:
            raise ValueError("utc offset out of range")


def _region(name: str, lat: float, lon: float, pop_m: float,
            utc: float) -> WorldRegion:
    return WorldRegion(name, GeoPoint(name, lat, lon), pop_m, utc)


#: The global catalog: the paper's US regions plus the other inhabited
#: continents' major metros.  Populations are metro-area, in millions.
WORLD_REGIONS: Tuple[WorldRegion, ...] = (
    # North America (superset of the paper's W/M/E vantage areas)
    _region("San Jose, CA", 37.3387, -121.8853, 7.7, -8),
    _region("Seattle, WA", 47.6062, -122.3321, 4.0, -8),
    _region("Los Angeles, CA", 34.0522, -118.2437, 13.2, -8),
    _region("Dallas, TX", 32.7767, -96.7970, 7.6, -6),
    _region("Chicago, IL", 41.8781, -87.6298, 9.5, -6),
    _region("Kansas City, MO", 39.0997, -94.5786, 2.2, -6),
    _region("New York, NY", 40.7128, -74.0060, 19.8, -5),
    _region("Washington, DC", 38.9072, -77.0369, 6.3, -5),
    _region("Miami, FL", 25.7617, -80.1918, 6.1, -5),
    _region("Toronto", 43.6532, -79.3832, 6.2, -5),
    _region("Mexico City", 19.4326, -99.1332, 21.8, -6),
    # South America
    _region("Sao Paulo", -23.5505, -46.6333, 22.4, -3),
    _region("Buenos Aires", -34.6037, -58.3816, 15.4, -3),
    _region("Bogota", 4.7110, -74.0721, 11.0, -5),
    _region("Lima", -12.0464, -77.0428, 10.7, -5),
    # Europe
    _region("London", 51.5074, -0.1278, 14.3, 0),
    _region("Paris", 48.8566, 2.3522, 11.2, 1),
    _region("Berlin", 52.5200, 13.4050, 3.6, 1),
    _region("Madrid", 40.4168, -3.7038, 6.7, 1),
    _region("Milan", 45.4642, 9.1900, 4.3, 1),
    _region("Warsaw", 52.2297, 21.0122, 3.1, 1),
    _region("Istanbul", 41.0082, 28.9784, 15.6, 3),
    _region("Moscow", 55.7558, 37.6173, 12.6, 3),
    # Africa & Middle East
    _region("Cairo", 30.0444, 31.2357, 21.3, 2),
    _region("Lagos", 6.5244, 3.3792, 15.9, 1),
    _region("Nairobi", -1.2921, 36.8219, 5.1, 3),
    _region("Johannesburg", -26.2041, 28.0473, 10.1, 2),
    _region("Dubai", 25.2048, 55.2708, 3.6, 4),
    _region("Riyadh", 24.7136, 46.6753, 7.5, 3),
    # South & Southeast Asia
    _region("Mumbai", 19.0760, 72.8777, 21.3, 5.5),
    _region("Delhi", 28.7041, 77.1025, 32.9, 5.5),
    _region("Bangalore", 12.9716, 77.5946, 13.6, 5.5),
    _region("Dhaka", 23.8103, 90.4125, 22.5, 6),
    _region("Jakarta", -6.2088, 106.8456, 33.4, 7),
    _region("Bangkok", 13.7563, 100.5018, 17.1, 7),
    _region("Manila", 14.5995, 120.9842, 14.4, 8),
    _region("Singapore", 1.3521, 103.8198, 6.0, 8),
    # East Asia & Oceania
    _region("Shanghai", 31.2304, 121.4737, 29.2, 8),
    _region("Beijing", 39.9042, 116.4074, 21.5, 8),
    _region("Seoul", 37.5665, 126.9780, 25.5, 9),
    _region("Tokyo", 35.6762, 139.6503, 37.3, 9),
    _region("Sydney", -33.8688, 151.2093, 5.3, 10),
)


def region_points(regions: Sequence[WorldRegion]) -> List[GeoPoint]:
    """The region centroids as plain geo points."""
    return [r.location for r in regions]


def diurnal_load(t_utc_h: np.ndarray, utc_offset_h: np.ndarray) -> np.ndarray:
    """Relative demand multiplier in (0, 1] for local time of day.

    A raised cosine peaking at :data:`PEAK_LOCAL_HOUR` local, floored at
    :data:`TROUGH_FLOOR` of peak in the pre-dawn trough.  Vectorized over
    any broadcastable combination of UTC hour and offset.
    """
    local = np.mod(np.asarray(t_utc_h, dtype=np.float64)
                   + np.asarray(utc_offset_h, dtype=np.float64), 24.0)
    phase = 2.0 * np.pi * (local - PEAK_LOCAL_HOUR) / 24.0
    shaped = 0.5 + 0.5 * np.cos(phase)
    # Sharpen the evening peak: square keeps the curve in [0, 1].
    shaped = shaped * shaped
    return TROUGH_FLOOR + (1.0 - TROUGH_FLOOR) * shaped


@dataclass(frozen=True)
class FlashCrowd:
    """A transient demand burst pinned to one region.

    Attributes:
        region: Catalog region name.
        start_utc_h: Burst onset, hours UTC (wraps mod 24).
        duration_h: Burst length in hours.
        multiplier: Demand multiplier while active (>= 1).
    """

    region: str
    start_utc_h: float
    duration_h: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.duration_h <= 0:
            raise ValueError("duration must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def active(self, t_utc_h: float) -> bool:
        """Whether the burst covers UTC hour ``t_utc_h`` (mod 24)."""
        offset = (t_utc_h - self.start_utc_h) % 24.0
        return offset < self.duration_h


def seeded_flash_crowds(seed: int,
                        regions: Sequence[WorldRegion] = WORLD_REGIONS,
                        count: int = 3,
                        multiplier_range: Tuple[float, float] = (3.0, 8.0),
                        ) -> Tuple[FlashCrowd, ...]:
    """Draw ``count`` deterministic flash crowds for a scenario seed."""
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(regions), size=min(count, len(regions)),
                       replace=False)
    lo, hi = multiplier_range
    return tuple(
        FlashCrowd(
            region=regions[int(i)].name,
            start_utc_h=float(rng.uniform(0.0, 24.0)),
            duration_h=float(rng.uniform(0.5, 3.0)),
            multiplier=float(rng.uniform(lo, hi)),
        )
        for i in picks
    )


@dataclass(frozen=True)
class UserSample:
    """A vectorized population snapshot at one UTC hour.

    Attributes:
        lat / lon: Per-user coordinates (degrees, float64).
        region_index: Per-user index into the model's region tuple.
        t_utc_h: The UTC hour the snapshot was drawn for.
    """

    lat: np.ndarray
    lon: np.ndarray
    region_index: np.ndarray
    t_utc_h: float

    def __len__(self) -> int:
        return len(self.lat)

    def region_counts(self, n_regions: int) -> np.ndarray:
        """Users per region (length ``n_regions``)."""
        return np.bincount(self.region_index, minlength=n_regions)


@dataclass(frozen=True)
class DemandModel:
    """Population-weighted global demand with diurnal + flash dynamics.

    The model is a pure function of (UTC hour, seed): region weights
    come from population x diurnal load x any active flash crowds, and
    users scatter around their region centroid with a seeded normal
    jitter.  Identical inputs always produce identical populations.
    """

    regions: Tuple[WorldRegion, ...] = WORLD_REGIONS
    flash_crowds: Tuple[FlashCrowd, ...] = ()

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("need at least one region")
        names = {r.name for r in self.regions}
        for crowd in self.flash_crowds:
            if crowd.region not in names:
                raise ValueError(
                    f"flash crowd targets unknown region {crowd.region!r}")

    @classmethod
    def default(cls, max_regions: Optional[int] = None,
                flash_seed: Optional[int] = None,
                flash_count: int = 3) -> "DemandModel":
        """The world catalog (optionally truncated by population rank)."""
        regions = tuple(sorted(WORLD_REGIONS, key=lambda r: -r.population_m))
        if max_regions is not None:
            if max_regions < 1:
                raise ValueError("max_regions must be >= 1")
            regions = regions[:max_regions]
        crowds: Tuple[FlashCrowd, ...] = ()
        if flash_seed is not None:
            crowds = seeded_flash_crowds(flash_seed, regions,
                                         count=flash_count)
        return cls(regions=regions, flash_crowds=crowds)

    def region_weights(self, t_utc_h: float) -> np.ndarray:
        """Normalized per-region demand shares at one UTC hour."""
        pop = np.array([r.population_m for r in self.regions])
        offsets = np.array([r.utc_offset_h for r in self.regions])
        raw = pop * diurnal_load(np.float64(t_utc_h), offsets)
        for crowd in self.flash_crowds:
            if crowd.active(t_utc_h):
                index = next(i for i, r in enumerate(self.regions)
                             if r.name == crowd.region)
                raw[index] *= crowd.multiplier
        return raw / raw.sum()

    def mean_region_weights(self, epochs: Sequence[float]) -> np.ndarray:
        """Average demand shares over several UTC hours (for placement)."""
        if len(epochs) == 0:
            raise ValueError("need at least one epoch")
        stacked = np.stack([self.region_weights(t) for t in epochs])
        mean = stacked.mean(axis=0)
        return mean / mean.sum()

    def sample_users(self, n: int, t_utc_h: float, seed: int) -> UserSample:
        """Draw ``n`` users at UTC hour ``t_utc_h``, deterministically.

        Region membership is multinomial in the demand shares; positions
        jitter around the region centroid with the region's spread
        (clipped to valid latitudes, wrapped in longitude).
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        rng = np.random.default_rng(seed)
        weights = self.region_weights(t_utc_h)
        counts = rng.multinomial(n, weights)
        region_index = np.repeat(np.arange(len(self.regions)), counts)
        lat0, lon0 = latlon_arrays(region_points(self.regions))
        spread = np.array([r.spread_deg for r in self.regions])
        jitter_lat = rng.normal(0.0, 1.0, size=n) * spread[region_index]
        jitter_lon = rng.normal(0.0, 1.0, size=n) * spread[region_index]
        lat = np.clip(lat0[region_index] + jitter_lat, -89.9, 89.9)
        lon = np.mod(lon0[region_index] + jitter_lon + 180.0, 360.0) - 180.0
        return UserSample(lat=lat, lon=lon, region_index=region_index,
                          t_utc_h=t_utc_h)

    def demand_points(self, epochs: Sequence[float]
                      ) -> Tuple[List[GeoPoint], np.ndarray]:
        """(centroids, mean weights) — the optimizer-facing aggregation.

        Millions of sampled users aggregate to their region centroids
        with time-averaged demand weights; the placement search runs on
        this compact form, evaluation runs on the full samples.
        """
        return region_points(self.regions), self.mean_region_weights(epochs)


def regions_by_name(regions: Sequence[WorldRegion] = WORLD_REGIONS
                    ) -> Dict[str, WorldRegion]:
    """Name -> region lookup for the catalog."""
    return {r.name: r for r in regions}
