"""Geolocation database and anycast-detection probe.

The paper geolocates discovered server addresses with MaxMind and ipinfo.io
(Sec. 4.1) and verifies none of the providers uses anycast by probing one
address from several vantage points (the approach of prior work [24]): with
unicast, the RTT from each vantage point is consistent with a *single*
physical location; with anycast, geographically distant vantage points both
see implausibly low RTTs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.latency import PathModel
from repro.geo.servers import Server, ALL_FLEETS


@dataclass
class GeoDatabase:
    """A MaxMind/ipinfo-style IP-to-location database with city-level error.

    Real geolocation databases resolve datacenter addresses to within tens of
    kilometers of the true city.  ``error_km`` displaces the reported
    coordinates by a deterministic per-address offset of that magnitude.
    """

    error_km: float = 25.0
    _records: Dict[str, GeoPoint] = field(default_factory=dict)

    def register(self, address: str, location: GeoPoint) -> None:
        """Add (or overwrite) a record for ``address``."""
        self._records[address] = location

    def register_servers(self, servers: Iterable[Server]) -> None:
        """Register every server of one or more fleets."""
        for server in servers:
            self.register(server.address, server.location)

    def lookup(self, address: str) -> GeoPoint:
        """Resolve an address to an (error-displaced) location.

        Raises:
            KeyError: If the address has no record, like a miss in MaxMind.
        """
        true = self._records[address]
        # sha256, not hash(): str hashing is salted per process, which
        # would move the displacement between runs (PYTHONHASHSEED).
        digest = hashlib.sha256(address.encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:4], "little"))
        bearing = rng.uniform(0.0, 2.0 * np.pi)
        dlat = (self.error_km / 111.0) * np.sin(bearing)
        dlon = (self.error_km / (111.0 * max(np.cos(np.radians(true.lat)), 0.1))) * np.cos(bearing)
        return GeoPoint(f"{true.name} (geolocated)", true.lat + dlat, true.lon + dlon)


def default_database() -> GeoDatabase:
    """A database pre-populated with every server of the four VCA fleets."""
    db = GeoDatabase()
    for fleet in ALL_FLEETS.values():
        db.register_servers(fleet.servers)
    return db


@dataclass
class AnycastProbe:
    """Detect anycast by comparing multi-vantage RTTs against geometry.

    For a unicast address there exists *some* location on Earth whose
    speed-of-light constraints are consistent with every measured RTT.  For
    an anycast address, two distant vantage points can both measure small
    RTTs, which is geometrically impossible for any single location: light
    cannot cover ``distance(v1, v2)`` within ``(rtt1 + rtt2) / 2``.
    """

    path_model: PathModel = field(default_factory=PathModel)

    def min_feasible_rtt_sum_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """Lower bound on rtt(a, X) + rtt(b, X) over all locations X.

        The bound is the direct propagation RTT between the vantage points
        themselves (triangle inequality), *without* inflation — the most
        conservative possible path.
        """
        distance_m = haversine_km(a, b) * 1000.0
        return 2.0 * distance_m / self.path_model.fiber_speed_mps * 1000.0

    def is_anycast(
        self,
        rtts_ms: Sequence[Tuple[GeoPoint, float]],
        slack_ms: float = 2.0,
    ) -> bool:
        """Classify a set of (vantage, measured RTT) pairs.

        Returns True when any pair of vantage points violates the
        speed-of-light feasibility bound by more than ``slack_ms``.
        """
        for i, (va, ra) in enumerate(rtts_ms):
            for vb, rb in rtts_ms[i + 1:]:
                if ra + rb + slack_ms < self.min_feasible_rtt_sum_ms(va, vb):
                    return True
        return False

    def probe_server(
        self,
        server: Server,
        vantages: Sequence[GeoPoint],
        repeats: int = 5,
        seed: Optional[int] = None,
    ) -> List[Tuple[GeoPoint, float]]:
        """Measure mean RTT to ``server`` from each vantage point."""
        model = self.path_model
        if seed is not None:
            model = model.spawn(seed)
        return [
            (v, float(np.mean(model.sample_rtt_ms(v, server.location, repeats))))
            for v in vantages
        ]
