"""Wide-area RTT model fit to Table 1 of the paper.

The model decomposes a round-trip time into:

- fiber propagation along the great circle, at ~2/3 c;
- a multiplicative path-inflation factor capturing routed paths being longer
  than the great circle (fit to the off-diagonal entries of Table 1); and
- a fixed access component for the WiFi AP / last mile / server ingress
  (fit to the diagonal entries, where propagation is negligible).

Table 1's caption bounds the standard deviation of every cell at < 7 ms, so
the jitter model draws per-measurement noise well inside that bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import calibration
from repro.geo.coords import GeoPoint


@dataclass
class PathModel:
    """Deterministic RTT model plus a jitter distribution.

    Attributes:
        fiber_speed_mps: Propagation speed in fiber (m/s).
        inflation: Great-circle to routed-path inflation factor.
        access_rtt_ms: Fixed access contribution to the RTT (both ends).
        jitter_std_ms: Standard deviation of per-measurement Gaussian jitter.
    """

    fiber_speed_mps: float = calibration.FIBER_SPEED_MPS
    inflation: float = calibration.PATH_INFLATION
    access_rtt_ms: float = calibration.ACCESS_RTT_MS
    jitter_std_ms: float = 1.8
    _rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0), repr=False
    )

    def seed(self, seed: int) -> None:
        """Reseed the jitter source (used by experiment repeats)."""
        self._rng = np.random.default_rng(seed)

    def propagation_rtt_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """Round-trip propagation delay along the inflated path, in ms."""
        path_m = a.distance_km(b) * 1000.0 * self.inflation
        return 2.0 * path_m / self.fiber_speed_mps * 1000.0

    def base_rtt_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """Noise-free RTT between two endpoints, in ms."""
        return self.access_rtt_ms + self.propagation_rtt_ms(a, b)

    def one_way_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """Noise-free one-way delay, in ms (half the base RTT)."""
        return self.base_rtt_ms(a, b) / 2.0

    def sample_rtt_ms(self, a: GeoPoint, b: GeoPoint, n: int = 1) -> np.ndarray:
        """Draw ``n`` jittered RTT measurements between two endpoints.

        Jitter is truncated at zero so a measurement can never be faster
        than 40% of the noise-free path.
        """
        base = self.base_rtt_ms(a, b)
        samples = base + self._rng.normal(0.0, self.jitter_std_ms, size=n)
        return np.maximum(samples, 0.4 * base)


#: Module-level default model, shared by code that does not need custom fit.
DEFAULT_PATH_MODEL = PathModel()


def rtt_ms(a: GeoPoint, b: GeoPoint, model: Optional[PathModel] = None) -> float:
    """Noise-free RTT between ``a`` and ``b`` using ``model`` (or the default)."""
    return (model or DEFAULT_PATH_MODEL).base_rtt_ms(a, b)
