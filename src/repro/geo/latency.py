"""Wide-area RTT model fit to Table 1 of the paper.

The model decomposes a round-trip time into:

- fiber propagation along the great circle, at ~2/3 c;
- a multiplicative path-inflation factor capturing routed paths being longer
  than the great circle (fit to the off-diagonal entries of Table 1); and
- a fixed access component for the WiFi AP / last mile / server ingress
  (fit to the diagonal entries, where propagation is negligible).

Table 1's caption bounds the standard deviation of every cell at < 7 ms, so
the jitter model draws per-measurement noise well inside that bound.

The scalar entry points (:meth:`PathModel.base_rtt_ms` and friends) and the
vectorized matrix kernels (:meth:`PathModel.base_rtt_ms_arrays`,
:func:`rtt_matrix_ms`) share one numpy core, so a matrix cell is
bit-identical to the scalar RTT between the same endpoints — the contract
the planet-scale placement optimizer relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import calibration
from repro.geo.coords import GeoPoint, haversine_km_arrays, latlon_arrays


@dataclass
class PathModel:
    """Deterministic RTT model plus a jitter distribution.

    Equality and hashing consider only the fitted parameters, never the
    private jitter RNG: two models built from the same calibration are
    interchangeable (and key caches identically) regardless of how far
    either one's noise stream has advanced.

    Attributes:
        fiber_speed_mps: Propagation speed in fiber (m/s).
        inflation: Great-circle to routed-path inflation factor.
        access_rtt_ms: Fixed access contribution to the RTT (both ends).
        jitter_std_ms: Standard deviation of per-measurement Gaussian jitter.
        jitter_floor_fraction: Lower clamp on jittered samples, as a
            fraction of the noise-free RTT — a measurement can never be
            faster than this share of the modeled path (0.0 restores a
            plain truncation at zero).
    """

    fiber_speed_mps: float = calibration.FIBER_SPEED_MPS
    inflation: float = calibration.PATH_INFLATION
    access_rtt_ms: float = calibration.ACCESS_RTT_MS
    jitter_std_ms: float = 1.8
    jitter_floor_fraction: float = 0.4
    _rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0),
        repr=False, compare=False,
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter_floor_fraction <= 1.0:
            raise ValueError("jitter_floor_fraction must be in [0, 1]")

    def __hash__(self) -> int:
        return hash((self.fiber_speed_mps, self.inflation,
                     self.access_rtt_ms, self.jitter_std_ms,
                     self.jitter_floor_fraction))

    def seed(self, seed: int) -> None:
        """Reseed the jitter source (used by experiment repeats)."""
        self._rng = np.random.default_rng(seed)

    def spawn(self, seed: Optional[int] = None) -> "PathModel":
        """An independent same-parameter model with its own RNG.

        Experiments that perturb the jitter stream should spawn their own
        model instead of reseeding a shared one — reseeding a model other
        code also holds silently couples their noise streams.
        """
        clone = PathModel(
            fiber_speed_mps=self.fiber_speed_mps,
            inflation=self.inflation,
            access_rtt_ms=self.access_rtt_ms,
            jitter_std_ms=self.jitter_std_ms,
            jitter_floor_fraction=self.jitter_floor_fraction,
        )
        if seed is not None:
            clone.seed(seed)
        return clone

    def propagation_rtt_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """Round-trip propagation delay along the inflated path, in ms."""
        return float(self.propagation_rtt_ms_arrays(
            np.float64(a.lat), np.float64(a.lon),
            np.float64(b.lat), np.float64(b.lon),
        ))

    def base_rtt_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """Noise-free RTT between two endpoints, in ms."""
        return self.access_rtt_ms + self.propagation_rtt_ms(a, b)

    def one_way_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """Noise-free one-way delay, in ms (half the base RTT)."""
        return self.base_rtt_ms(a, b) / 2.0

    # ------------------------------------------------------------------
    # vectorized kernels (bit-identical to the scalar entry points)
    # ------------------------------------------------------------------

    def propagation_rtt_ms_arrays(self, lat_a: np.ndarray, lon_a: np.ndarray,
                                  lat_b: np.ndarray, lon_b: np.ndarray
                                  ) -> np.ndarray:
        """Vectorized :meth:`propagation_rtt_ms` over coordinate arrays.

        Broadcasts like a ufunc: ``(n, 1)`` vs ``(1, m)`` inputs yield the
        full n x m propagation matrix.
        """
        path_m = (haversine_km_arrays(lat_a, lon_a, lat_b, lon_b)
                  * 1000.0 * self.inflation)
        return 2.0 * path_m / self.fiber_speed_mps * 1000.0

    def base_rtt_ms_arrays(self, lat_a: np.ndarray, lon_a: np.ndarray,
                           lat_b: np.ndarray, lon_b: np.ndarray
                           ) -> np.ndarray:
        """Vectorized :meth:`base_rtt_ms` over coordinate arrays."""
        return self.access_rtt_ms + self.propagation_rtt_ms_arrays(
            lat_a, lon_a, lat_b, lon_b
        )

    def one_way_ms_arrays(self, lat_a: np.ndarray, lon_a: np.ndarray,
                          lat_b: np.ndarray, lon_b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`one_way_ms` over coordinate arrays."""
        return self.base_rtt_ms_arrays(lat_a, lon_a, lat_b, lon_b) / 2.0

    def sample_rtt_ms(self, a: GeoPoint, b: GeoPoint, n: int = 1) -> np.ndarray:
        """Draw ``n`` jittered RTT measurements between two endpoints.

        Gaussian jitter rides on the noise-free RTT; every sample is
        clamped from below at ``jitter_floor_fraction * base_rtt_ms`` (by
        default 40% of the noise-free path — routed networks jitter
        upward far more readily than down).  Set ``jitter_floor_fraction``
        to 0.0 for a plain truncation at zero.
        """
        base = self.base_rtt_ms(a, b)
        samples = base + self._rng.normal(0.0, self.jitter_std_ms, size=n)
        return np.maximum(samples, self.jitter_floor_fraction * base)


#: Module-level default model for code that needs only the *noise-free*
#: RTT surface.  Stateful users (anything calling ``seed()`` /
#: ``sample_rtt_ms``) must own a private instance — ``PathModel()`` or
#: ``DEFAULT_PATH_MODEL.spawn()`` — so their jitter streams stay
#: independent; the fleet/geolocator builders do exactly that.
DEFAULT_PATH_MODEL = PathModel()


def rtt_ms(a: GeoPoint, b: GeoPoint, model: Optional[PathModel] = None) -> float:
    """Noise-free RTT between ``a`` and ``b`` using ``model`` (or the default)."""
    return (model or DEFAULT_PATH_MODEL).base_rtt_ms(a, b)


def rtt_matrix_ms(points_a: Sequence[GeoPoint], points_b: Sequence[GeoPoint],
                  model: Optional[PathModel] = None) -> np.ndarray:
    """Noise-free RTT matrix between two point sequences.

    Entry ``[i, j]`` equals ``rtt_ms(points_a[i], points_b[j], model)``
    bit-for-bit; the matrix is just computed thousands of times faster.
    """
    model = model or DEFAULT_PATH_MODEL
    lat_a, lon_a = latlon_arrays(points_a)
    lat_b, lon_b = latlon_arrays(points_b)
    return model.base_rtt_ms_arrays(
        lat_a[:, None], lon_a[:, None], lat_b[None, :], lon_b[None, :]
    )
