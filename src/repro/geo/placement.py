"""Server placement optimization: how good are the observed fleets?

Sec. 4.1 measures where the four providers put their US relays and what
RTTs result.  A natural follow-up the paper leaves open: are those
placements any good for the user population, and how much would more (or
better-placed) servers help?  This module answers with the classic
k-median machinery: greedy placement plus local-exchange refinement over
a candidate grid, scored by (demand-weighted) mean client-to-nearest-
server RTT.

Since the planet-scale placement studies the machinery is fully
vectorized: scores come from the RTT-matrix kernel in
:mod:`repro.geo.latency` (bit-identical to the scalar path model),
clients carry optional demand weights, candidate grids span the globe,
and site scoring is chunked so the optimizer handles thousands of
candidate sites against millions of sampled users in bounded memory.
Per-round telemetry lands in the :mod:`repro.obs.metrics` registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.coords import GeoPoint, latlon_arrays
from repro.geo.latency import PathModel, DEFAULT_PATH_MODEL
from repro.geo.regions import all_clients
from repro.geo.servers import Server, ServerFleet
from repro.obs import metrics as obs_metrics

#: Candidate placement sites: a coarse grid over the continental US.
_US_LAT = np.arange(26.0, 49.0, 2.0)
_US_LON = np.arange(-124.0, -68.0, 2.5)

#: Maximum float64 entries a site-scoring chunk may hold (~64 MB); the
#: optimizer never materializes more than one chunk of the site x client
#: RTT matrix at a time.
_CHUNK_BUDGET = 8_000_000


def candidate_sites() -> List[GeoPoint]:
    """The candidate grid (continental-US lattice points)."""
    return [
        GeoPoint(f"site-{lat:.0f}-{lon:.0f}", float(lat), float(lon))
        for lat in _US_LAT for lon in _US_LON
    ]


def global_candidate_sites(step_deg: float = 4.0) -> List[GeoPoint]:
    """A planet-spanning candidate lattice (inhabited latitudes).

    Covers 60S..70N at ``step_deg`` resolution — ~3k sites at the 4
    degree default, the "thousands of candidate sites" regime the
    vectorized optimizer is built for.  Ocean points are legal candidate
    sites (the optimizer simply never picks one when land demand exists
    nearby is cheaper); filtering real submarine-cable feasibility is out
    of scope.
    """
    if step_deg <= 0:
        raise ValueError("step_deg must be positive")
    lats = np.arange(-60.0, 70.0 + 1e-9, step_deg)
    lons = np.arange(-180.0, 180.0 - 1e-9, step_deg)
    return [
        GeoPoint(f"gsite-{lat:.0f}-{lon:.0f}", float(lat), float(lon))
        for lat in lats for lon in lons
    ]


def _client_weights(n: int, weights: Optional[Sequence[float]]) -> np.ndarray:
    """Normalized demand weights (uniform when omitted)."""
    if weights is None:
        return np.full(n, 1.0 / n)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"weights shape {w.shape} != ({n},)")
    if np.any(w < 0) or not np.any(w > 0):
        raise ValueError("weights must be non-negative with positive sum")
    return w / w.sum()


def mean_rtt_ms(servers: Sequence[GeoPoint],
                clients: Sequence[GeoPoint],
                model: Optional[PathModel] = None,
                weights: Optional[Sequence[float]] = None) -> float:
    """(Weighted) mean client-to-nearest-server RTT for a placement.

    Raises:
        ValueError: With no servers or no clients, or malformed weights.
    """
    if len(servers) == 0 or len(clients) == 0:
        raise ValueError("need at least one server and one client")
    model = model or DEFAULT_PATH_MODEL
    w = _client_weights(len(clients), weights)
    c_lat, c_lon = latlon_arrays(clients)
    s_lat, s_lon = latlon_arrays(servers)
    nearest = _nearest_rtt(model, c_lat, c_lon, s_lat, s_lon)
    return float(nearest @ w)


def _nearest_rtt(model: PathModel, c_lat: np.ndarray, c_lon: np.ndarray,
                 s_lat: np.ndarray, s_lon: np.ndarray) -> np.ndarray:
    """Per-client RTT to its nearest server, chunked over clients."""
    n = len(c_lat)
    step = max(1, _CHUNK_BUDGET // max(1, len(s_lat)))
    nearest = np.empty(n)
    for lo in range(0, n, step):
        hi = min(n, lo + step)
        block = model.base_rtt_ms_arrays(
            c_lat[lo:hi, None], c_lon[lo:hi, None],
            s_lat[None, :], s_lon[None, :],
        )
        nearest[lo:hi] = block.min(axis=1)
    return nearest


def rank_failover_servers(
    fleet: ServerFleet,
    participants: Sequence[GeoPoint],
    exclude: Sequence[str] = (),
) -> List[Server]:
    """Failover preference order for a session's relay.

    Healthy fleet servers (addresses not in ``exclude``) sorted by mean
    RTT to the session's participants — the placement-aware analog of the
    initiator-nearest policy, used when the selected relay goes dark.
    Ties break by server label for determinism.

    Raises:
        ValueError: With no participants.
    """
    if not participants:
        raise ValueError("need at least one participant")
    excluded = set(exclude)
    candidates = [s for s in fleet.servers if s.address not in excluded]

    def mean_rtt(server: Server) -> float:
        return sum(
            fleet.path_model.base_rtt_ms(p, server.location)
            for p in participants
        ) / len(participants)

    return sorted(candidates, key=lambda s: (mean_rtt(s), s.label))


@dataclass(frozen=True)
class PlacementResult:
    """An optimized placement and its score."""

    servers: List[GeoPoint]
    mean_rtt_ms: float
    #: Greedy rounds + exchange passes actually executed.
    rounds: int = 0
    #: Accepted local-exchange swaps (0 means greedy was locally optimal).
    exchange_swaps: int = 0


class _SiteScorer:
    """Chunked scorer: best achievable weighted-mean RTT per candidate.

    Holds the site x client RTT matrix when it fits the chunk budget,
    otherwise recomputes chunks on every pass — constant memory either
    way, identical results.
    """

    def __init__(self, model: PathModel, sites: Sequence[GeoPoint],
                 c_lat: np.ndarray, c_lon: np.ndarray, w: np.ndarray) -> None:
        self.model = model
        self.s_lat, self.s_lon = latlon_arrays(sites)
        self.c_lat, self.c_lon = c_lat, c_lon
        self.w = w
        self.n_sites = len(sites)
        self.n_clients = len(c_lat)
        self.step = max(1, _CHUNK_BUDGET // max(1, self.n_clients))
        self._cache: Optional[np.ndarray] = None
        if self.n_sites * self.n_clients <= _CHUNK_BUDGET:
            self._cache = self._compute(0, self.n_sites)

    def _compute(self, lo: int, hi: int) -> np.ndarray:
        return self.model.base_rtt_ms_arrays(
            self.s_lat[lo:hi, None], self.s_lon[lo:hi, None],
            self.c_lat[None, :], self.c_lon[None, :],
        )

    def rows(self, lo: int, hi: int) -> np.ndarray:
        """RTT rows for sites ``lo:hi`` (clients along axis 1)."""
        if self._cache is not None:
            return self._cache[lo:hi]
        return self._compute(lo, hi)

    def row(self, index: int) -> np.ndarray:
        return self.rows(index, index + 1)[0]

    def best_site(self, baseline: np.ndarray,
                  banned: np.ndarray) -> Tuple[int, float]:
        """The candidate whose addition most lowers the weighted mean.

        ``baseline`` is each client's current best RTT; ``banned`` masks
        sites already chosen.  Ties resolve to the lowest site index, so
        the search is deterministic.
        """
        best_index, best_score = -1, np.inf
        for lo in range(0, self.n_sites, self.step):
            hi = min(self.n_sites, lo + self.step)
            scores = np.minimum(self.rows(lo, hi), baseline[None, :]) @ self.w
            scores[banned[lo:hi]] = np.inf
            local = int(np.argmin(scores))
            if scores[local] < best_score:
                best_index, best_score = lo + local, float(scores[local])
        return best_index, best_score


def optimize_placement(
    k: int,
    clients: Optional[Sequence[GeoPoint]] = None,
    model: Optional[PathModel] = None,
    exchange_rounds: int = 2,
    *,
    weights: Optional[Sequence[float]] = None,
    sites: Optional[Sequence[GeoPoint]] = None,
) -> PlacementResult:
    """Greedy + local-exchange k-median over a candidate grid.

    Fully vectorized: greedy rounds and exchange passes score every
    candidate site with the RTT-matrix kernel (chunked to bounded
    memory), so thousands of sites against millions of weighted demand
    points stay tractable.  Results are deterministic — ties always
    resolve to the lowest candidate index.

    Args:
        k: Number of servers to place.
        clients: Demand points (default: the paper's eight vantage cities).
        model: RTT model.
        exchange_rounds: Passes of single-site exchange refinement.
        weights: Optional per-client demand weights (normalized
            internally; uniform when omitted).
        sites: Candidate sites (default: the continental-US lattice; pass
            :func:`global_candidate_sites` for planetary searches).

    Raises:
        ValueError: For non-positive ``k``, an empty candidate/client set,
            or malformed weights.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    clients = list(clients) if clients is not None else all_clients()
    if not clients:
        raise ValueError("need at least one client")
    model = model or DEFAULT_PATH_MODEL
    site_list = list(sites) if sites is not None else candidate_sites()
    if len(site_list) < k:
        raise ValueError(f"need at least k={k} candidate sites, "
                         f"got {len(site_list)}")

    w = _client_weights(len(clients), weights)
    c_lat, c_lon = latlon_arrays(clients)
    scorer = _SiteScorer(model, site_list, c_lat, c_lon, w)

    rounds = obs_metrics.counter("geo.placement.rounds")
    swaps_counter = obs_metrics.counter("geo.placement.exchange_swaps")
    round_rtt = obs_metrics.histogram("geo.placement.round_mean_rtt_ms")

    chosen: List[int] = []
    banned = np.zeros(len(site_list), dtype=bool)
    baseline = np.full(len(clients), np.inf)
    total_rounds = 0
    for _ in range(k):  # greedy additions
        index, score = scorer.best_site(baseline, banned)
        assert index >= 0
        chosen.append(index)
        banned[index] = True
        baseline = np.minimum(baseline, scorer.row(index))
        total_rounds += 1
        rounds.inc()
        round_rtt.observe(score)

    current = float(baseline @ w)
    swaps = 0
    for _ in range(exchange_rounds):  # local exchange
        improved = False
        # Assignment structure: per client, best and second-best RTT
        # among the chosen sites, and which chosen slot is best.
        chosen_rows = np.stack([scorer.row(i) for i in chosen])
        order = np.argsort(chosen_rows, axis=0, kind="stable")
        best_slot = order[0]
        best_val = np.take_along_axis(chosen_rows, order[:1], axis=0)[0]
        second_val = (
            np.take_along_axis(chosen_rows, order[1:2], axis=0)[0]
            if len(chosen) > 1 else np.full(len(clients), np.inf)
        )
        for slot in range(len(chosen)):
            # Clients served by `slot` fall back to their second choice
            # when it is removed; everyone else keeps their best.
            without = np.where(best_slot == slot, second_val, best_val)
            index, score = scorer.best_site(without, banned)
            if index >= 0 and score < current - 1e-9:
                banned[chosen[slot]] = False
                banned[index] = True
                chosen[slot] = index
                current = score
                improved = True
                swaps += 1
                swaps_counter.inc()
                round_rtt.observe(score)
                # Refresh the assignment structure for subsequent slots.
                chosen_rows = np.stack([scorer.row(i) for i in chosen])
                order = np.argsort(chosen_rows, axis=0, kind="stable")
                best_slot = order[0]
                best_val = np.take_along_axis(chosen_rows, order[:1],
                                              axis=0)[0]
                second_val = (
                    np.take_along_axis(chosen_rows, order[1:2], axis=0)[0]
                    if len(chosen) > 1
                    else np.full(len(clients), np.inf)
                )
        total_rounds += 1
        rounds.inc()
        if not improved:
            break

    placed = [site_list[i] for i in chosen]
    final = mean_rtt_ms(placed, clients, model, weights=weights)
    obs_metrics.gauge("geo.placement.final_mean_rtt_ms").set(final)
    return PlacementResult(placed, final, rounds=total_rounds,
                           exchange_swaps=swaps)


@dataclass(frozen=True)
class FleetAssessment:
    """Observed fleet vs the optimizer's placement at the same k."""

    vca: str
    observed_mean_rtt_ms: float
    optimal_mean_rtt_ms: float
    #: True when the observed fleet beat every candidate-grid placement —
    #: the optimizer's "optimum" was limited by its coarse grid, so the
    #: efficiency below is clamped rather than reported above 1.0.
    grid_limited: bool = False

    @property
    def efficiency(self) -> float:
        """optimal / observed, clamped to 1.0 — 1.0 means the fleet is as
        good as (or better than) the best candidate-grid placement."""
        if self.observed_mean_rtt_ms <= 0:
            return 1.0
        return min(1.0, self.optimal_mean_rtt_ms / self.observed_mean_rtt_ms)


def assess_fleet(fleet: ServerFleet,
                 clients: Optional[Sequence[GeoPoint]] = None
                 ) -> FleetAssessment:
    """Score one provider's observed placement against the optimum."""
    clients = list(clients) if clients is not None else all_clients()
    observed = mean_rtt_ms(
        [s.location for s in fleet.servers], clients, fleet.path_model
    )
    optimal = optimize_placement(
        len(fleet.servers), clients, fleet.path_model
    ).mean_rtt_ms
    return FleetAssessment(fleet.vca, observed, optimal,
                           grid_limited=optimal > observed)
