"""Server placement optimization: how good are the observed fleets?

Sec. 4.1 measures where the four providers put their US relays and what
RTTs result.  A natural follow-up the paper leaves open: are those
placements any good for the user population, and how much would more (or
better-placed) servers help?  This module answers with the classic
k-median machinery: greedy placement plus local-exchange refinement over
a candidate grid, scored by mean client-to-nearest-server RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel, DEFAULT_PATH_MODEL
from repro.geo.regions import all_clients
from repro.geo.servers import Server, ServerFleet

#: Candidate placement sites: a coarse grid over the continental US.
_US_LAT = np.arange(26.0, 49.0, 2.0)
_US_LON = np.arange(-124.0, -68.0, 2.5)


def candidate_sites() -> List[GeoPoint]:
    """The candidate grid (continental-US lattice points)."""
    return [
        GeoPoint(f"site-{lat:.0f}-{lon:.0f}", float(lat), float(lon))
        for lat in _US_LAT for lon in _US_LON
    ]


def mean_rtt_ms(servers: Sequence[GeoPoint],
                clients: Sequence[GeoPoint],
                model: Optional[PathModel] = None) -> float:
    """Mean client-to-nearest-server RTT for a placement.

    Raises:
        ValueError: With no servers or no clients.
    """
    if not servers or not clients:
        raise ValueError("need at least one server and one client")
    model = model or DEFAULT_PATH_MODEL
    total = 0.0
    for client in clients:
        total += min(model.base_rtt_ms(client, s) for s in servers)
    return total / len(clients)


def rank_failover_servers(
    fleet: ServerFleet,
    participants: Sequence[GeoPoint],
    exclude: Sequence[str] = (),
) -> List[Server]:
    """Failover preference order for a session's relay.

    Healthy fleet servers (addresses not in ``exclude``) sorted by mean
    RTT to the session's participants — the placement-aware analog of the
    initiator-nearest policy, used when the selected relay goes dark.
    Ties break by server label for determinism.

    Raises:
        ValueError: With no participants.
    """
    if not participants:
        raise ValueError("need at least one participant")
    excluded = set(exclude)
    candidates = [s for s in fleet.servers if s.address not in excluded]

    def mean_rtt(server: Server) -> float:
        return sum(
            fleet.path_model.base_rtt_ms(p, server.location)
            for p in participants
        ) / len(participants)

    return sorted(candidates, key=lambda s: (mean_rtt(s), s.label))


@dataclass(frozen=True)
class PlacementResult:
    """An optimized placement and its score."""

    servers: List[GeoPoint]
    mean_rtt_ms: float


def optimize_placement(
    k: int,
    clients: Optional[Sequence[GeoPoint]] = None,
    model: Optional[PathModel] = None,
    exchange_rounds: int = 2,
) -> PlacementResult:
    """Greedy + local-exchange k-median over the candidate grid.

    Args:
        k: Number of servers to place.
        clients: Demand points (default: the paper's eight vantage cities).
        model: RTT model.
        exchange_rounds: Passes of single-site exchange refinement.

    Raises:
        ValueError: For non-positive ``k``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    clients = list(clients) if clients is not None else all_clients()
    model = model or DEFAULT_PATH_MODEL
    sites = candidate_sites()

    chosen: List[GeoPoint] = []
    for _ in range(k):  # greedy additions
        best_site, best_score = None, float("inf")
        for site in sites:
            if site in chosen:
                continue
            score = mean_rtt_ms(chosen + [site], clients, model)
            if score < best_score:
                best_site, best_score = site, score
        assert best_site is not None
        chosen.append(best_site)

    for _ in range(exchange_rounds):  # local exchange
        improved = False
        current = mean_rtt_ms(chosen, clients, model)
        for index in range(len(chosen)):
            for site in sites:
                if site in chosen:
                    continue
                trial = chosen[:index] + [site] + chosen[index + 1:]
                score = mean_rtt_ms(trial, clients, model)
                if score < current - 1e-9:
                    chosen, current = trial, score
                    improved = True
        if not improved:
            break

    return PlacementResult(chosen, mean_rtt_ms(chosen, clients, model))


@dataclass(frozen=True)
class FleetAssessment:
    """Observed fleet vs the optimizer's placement at the same k."""

    vca: str
    observed_mean_rtt_ms: float
    optimal_mean_rtt_ms: float

    @property
    def efficiency(self) -> float:
        """optimal / observed — 1.0 means the fleet is as good as optimal."""
        if self.observed_mean_rtt_ms <= 0:
            return 1.0
        return self.optimal_mean_rtt_ms / self.observed_mean_rtt_ms


def assess_fleet(fleet: ServerFleet,
                 clients: Optional[Sequence[GeoPoint]] = None
                 ) -> FleetAssessment:
    """Score one provider's observed placement against the optimum."""
    clients = list(clients) if clients is not None else all_clients()
    observed = mean_rtt_ms(
        [s.location for s in fleet.servers], clients, fleet.path_model
    )
    optimal = optimize_placement(
        len(fleet.servers), clients, fleet.path_model
    ).mean_rtt_ms
    return FleetAssessment(fleet.vca, observed, optimal)
