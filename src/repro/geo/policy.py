"""Pluggable server-selection policies over vectorized session batches.

Sec. 4.1 reverse-engineers one policy — every provider picks the server
nearest the session *initiator*, penalizing far participants (Table 1).
The placement studies turn that observation into a design space: a policy
maps a batch of sessions onto per-participant server attachments, and the
registry below lets campaigns sweep policies by name.

Four policies ship:

- ``initiator-nearest`` — the observed behavior (the paper's blind spot:
  non-initiating participants never influence the choice);
- ``client-nearest`` — every participant attaches to its own nearest
  server, servers interconnected by a private backbone (the paper's
  proposed remedy, ablation A2);
- ``latency-budget`` — initiator-nearest until some participant would
  exceed a worst-RTT budget, then the single relay minimizing the worst
  participant RTT;
- ``load-aware`` — client-nearest with per-server admission capacity;
  overflow spills to each user's next-nearest server.

All policies are pure array transforms: a million sessions assign in
tens of milliseconds, and identical inputs yield identical attachments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class AssignmentContext:
    """Everything a policy may look at, in struct-of-arrays form.

    Attributes:
        rtt_user_server: ``(n_users, n_servers)`` base RTT matrix, ms.
        sessions: ``(n_sessions, party_size)`` user indices; column 0 is
            the session initiator.
        server_backbone_ms: ``(n_servers, n_servers)`` one-way-capable
            server interconnect RTT (propagation only), ms.
    """

    rtt_user_server: np.ndarray
    sessions: np.ndarray
    server_backbone_ms: np.ndarray

    def __post_init__(self) -> None:
        if self.rtt_user_server.ndim != 2:
            raise ValueError("rtt_user_server must be 2-D")
        if self.sessions.ndim != 2:
            raise ValueError("sessions must be 2-D (sessions x party)")
        k = self.rtt_user_server.shape[1]
        if self.server_backbone_ms.shape != (k, k):
            raise ValueError("server_backbone_ms must be (k, k)")

    @property
    def n_servers(self) -> int:
        return self.rtt_user_server.shape[1]

    def participant_rtts(self) -> np.ndarray:
        """``(n_sessions, party, n_servers)`` RTT per participant."""
        return self.rtt_user_server[self.sessions]


class ServerSelectionPolicy(abc.ABC):
    """A named rule mapping session batches to server attachments."""

    #: Registry key; subclasses must override.
    name: str = ""

    @abc.abstractmethod
    def assign(self, ctx: AssignmentContext) -> np.ndarray:
        """Per-participant server indices, shape ``sessions.shape``."""

    def describe(self) -> str:
        """One-line human summary (docstring head by default)."""
        doc = (self.__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name


class InitiatorNearest(ServerSelectionPolicy):
    """The observed policy: everyone rides the initiator's nearest server."""

    name = "initiator-nearest"

    def assign(self, ctx: AssignmentContext) -> np.ndarray:
        initiator = ctx.sessions[:, 0]
        server = np.argmin(ctx.rtt_user_server[initiator], axis=1)
        return np.broadcast_to(server[:, None], ctx.sessions.shape).copy()


class ClientNearest(ServerSelectionPolicy):
    """The paper's remedy (A2): each client attaches to its nearest server."""

    name = "client-nearest"

    def assign(self, ctx: AssignmentContext) -> np.ndarray:
        return np.argmin(ctx.participant_rtts(), axis=2)


class LatencyBudget(ServerSelectionPolicy):
    """Initiator-nearest unless someone busts the budget, then min-worst.

    Keeps the observed policy's simplicity for local sessions and switches
    to the single relay minimizing the worst participant RTT only when the
    initiator's choice would push some participant past ``budget_ms``.
    """

    name = "latency-budget"

    def __init__(self, budget_ms: float = 120.0) -> None:
        if budget_ms <= 0:
            raise ValueError("budget_ms must be positive")
        self.budget_ms = budget_ms

    def assign(self, ctx: AssignmentContext) -> np.ndarray:
        per_participant = ctx.participant_rtts()       # (s, m, k)
        worst_by_server = per_participant.max(axis=1)  # (s, k)
        initiator_pick = np.argmin(
            ctx.rtt_user_server[ctx.sessions[:, 0]], axis=1)
        rows = np.arange(len(initiator_pick))
        over_budget = worst_by_server[rows, initiator_pick] > self.budget_ms
        min_worst_pick = np.argmin(worst_by_server, axis=1)
        server = np.where(over_budget, min_worst_pick, initiator_pick)
        return np.broadcast_to(server[:, None], ctx.sessions.shape).copy()


class LoadAware(ServerSelectionPolicy):
    """Client-nearest with admission caps; overflow spills to 2nd-nearest.

    Every server admits at most ``capacity_factor`` times its fair share
    of the batch's participants.  Overloaded servers shed the attachments
    that are cheapest to move (smallest RTT regret to the participant's
    next-nearest server).  One shedding pass: a spilled participant may
    land on a server that is itself full — real admission control behaves
    the same way under correlated overload, and the single pass keeps the
    transform deterministic and O(n log n).
    """

    name = "load-aware"

    def __init__(self, capacity_factor: float = 1.5) -> None:
        if capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        self.capacity_factor = capacity_factor

    def assign(self, ctx: AssignmentContext) -> np.ndarray:
        per_participant = ctx.participant_rtts()       # (s, m, k)
        flat = per_participant.reshape(-1, ctx.n_servers)
        order = np.argsort(flat, axis=1, kind="stable")
        best = order[:, 0]
        second = order[:, 1] if ctx.n_servers > 1 else order[:, 0]
        rows = np.arange(len(flat))
        regret = flat[rows, second] - flat[rows, best]

        total = len(flat)
        cap = int(np.ceil(self.capacity_factor * total / ctx.n_servers))
        assigned = best.copy()
        for server in range(ctx.n_servers):
            members = np.flatnonzero(assigned == server)
            if len(members) <= cap:
                continue
            # Shed the cheapest-to-move attachments beyond capacity.
            shed_order = members[np.argsort(regret[members], kind="stable")]
            to_move = shed_order[:len(members) - cap]
            assigned[to_move] = second[to_move]
        return assigned.reshape(ctx.sessions.shape)


#: The policy registry, keyed by policy name.
POLICY_REGISTRY: Dict[str, ServerSelectionPolicy] = {}


def register_policy(policy: ServerSelectionPolicy,
                    replace: bool = False) -> ServerSelectionPolicy:
    """Add a policy to the registry (``replace=True`` to override)."""
    if not policy.name:
        raise ValueError("policy needs a non-empty name")
    if policy.name in POLICY_REGISTRY and not replace:
        raise ValueError(f"policy {policy.name!r} already registered")
    POLICY_REGISTRY[policy.name] = policy
    return policy


def get_policy(name: str) -> ServerSelectionPolicy:
    """Look up a registered policy by name."""
    try:
        return POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r} (registered: {policy_names()})"
        ) from None


def policy_names() -> Tuple[str, ...]:
    """All registered policy names, registration order."""
    return tuple(POLICY_REGISTRY)


for _policy in (InitiatorNearest(), ClientNearest(), LatencyBudget(),
                LoadAware()):
    register_policy(_policy)


def session_worst_one_way_ms(
    ctx: AssignmentContext,
    assignment: np.ndarray,
    backbone_speedup: float = 1.0,
) -> np.ndarray:
    """Worst pairwise one-way media delay per session, in ms.

    Media from participant ``a`` to ``b`` travels
    ``a -> S_a -> S_b -> b``: half the access RTT on each client leg and
    half the (propagation-only) backbone RTT between the two relays,
    divided by ``backbone_speedup`` — the "high-speed private network"
    remedy of Sec. 4.1.  With a shared relay the backbone leg is zero and
    this reduces to the initiator-nearest geometry of Table 1.
    """
    if backbone_speedup < 1.0:
        raise ValueError("backbone_speedup must be >= 1")
    if assignment.shape != ctx.sessions.shape:
        raise ValueError("assignment shape must match sessions")
    n_sessions, party = ctx.sessions.shape
    rtts = ctx.rtt_user_server
    # Client legs: participant i to its own relay (one way).
    leg = rtts[ctx.sessions, assignment] / 2.0      # (s, m)
    worst = np.zeros(n_sessions)
    for i in range(party):
        for j in range(party):
            if i == j:
                continue
            backbone = (ctx.server_backbone_ms[assignment[:, i],
                                               assignment[:, j]]
                        / backbone_speedup / 2.0)
            one_way = leg[:, i] + backbone + leg[:, j]
            np.maximum(worst, one_way, out=worst)
    return worst
