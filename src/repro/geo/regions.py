"""US region catalog mirroring the paper's vantage points.

The paper (Sec. 4.1) deploys clients in eight locations: two in the Western
US, three in the Middle US, and three in the Eastern US, and reports Table 1
for one representative test user per region.  The exact cities are not named
in the paper; DESIGN.md records the representative choices made here.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.geo.coords import GeoPoint


class Region(enum.Enum):
    """The three US regions used throughout the paper (Table 1 rows)."""

    WEST = "W"
    MIDDLE = "M"
    EAST = "E"

    @classmethod
    def from_code(cls, code: str) -> "Region":
        """Resolve a one-letter code (``"W"``/``"M"``/``"E"``) to a region."""
        for region in cls:
            if region.value == code:
                return region
        raise ValueError(f"unknown region code: {code!r}")


#: The eight client vantage points: 2 West, 3 Middle, 3 East (Sec. 4.1).
CITY_CATALOG: Dict[Region, List[GeoPoint]] = {
    Region.WEST: [
        GeoPoint("San Jose, CA", 37.3387, -121.8853),
        GeoPoint("Seattle, WA", 47.6062, -122.3321),
    ],
    Region.MIDDLE: [
        GeoPoint("Dallas, TX", 32.7767, -96.7970),
        GeoPoint("Chicago, IL", 41.8781, -87.6298),
        GeoPoint("Kansas City, MO", 39.0997, -94.5786),
    ],
    Region.EAST: [
        GeoPoint("Washington, DC", 38.9072, -77.0369),
        GeoPoint("New York, NY", 40.7128, -74.0060),
        GeoPoint("Miami, FL", 25.7617, -80.1918),
    ],
}


def city(name_prefix: str) -> GeoPoint:
    """Look up a catalog city by name prefix (case-insensitive).

    >>> city("dallas").name
    'Dallas, TX'
    """
    prefix = name_prefix.lower()
    for points in CITY_CATALOG.values():
        for point in points:
            if point.name.lower().startswith(prefix):
                return point
    raise KeyError(f"no catalog city matches {name_prefix!r}")


def region_of(point: GeoPoint) -> Region:
    """Return the region a catalog city belongs to."""
    for region, points in CITY_CATALOG.items():
        if point in points:
            return region
    raise KeyError(f"{point.name} is not in the catalog")


def test_clients() -> Dict[Region, GeoPoint]:
    """The representative per-region test user of Table 1.

    The paper reports RTTs for three test users located in the Western,
    Middle, and Eastern US.  We use the first catalog city of each region.
    """
    return {region: points[0] for region, points in CITY_CATALOG.items()}


def all_clients() -> List[GeoPoint]:
    """All eight vantage points, W then M then E."""
    result: List[GeoPoint] = []
    for region in Region:
        result.extend(CITY_CATALOG[region])
    return result
