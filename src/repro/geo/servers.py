"""Per-VCA server fleets and the initiator-nearest selection policy.

Sec. 4.1 of the paper finds that FaceTime, Zoom, Webex, and Teams operate
four, two, three, and one server(s) in the US respectively, that none of them
uses anycast, and that every platform assigns the server closest to the user
who *initiates* the session, regardless of where the other participants are.

The server locations below are representative of the regions the paper
geolocates the servers to (W / M / E columns of Table 1); see DESIGN.md for
the residuals this induces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import calibration
from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel
from repro.geo.regions import Region


@dataclass(frozen=True)
class Server:
    """A relay (SFU) server operated by a VCA provider.

    Attributes:
        vca: Provider name ("FaceTime", "Zoom", "Webex", "Teams").
        label: Column label used by Table 1 (e.g. "M1").
        location: Geographic placement of the server.
        address: Synthetic IPv4 address, unique per server, used by the
            network simulator and by the geolocation database.
    """

    vca: str
    label: str
    location: GeoPoint
    address: str

    @property
    def region(self) -> Region:
        """Region code derived from the Table 1 column label."""
        return Region.from_code(self.label.rstrip("0123456789"))


@dataclass
class ServerFleet:
    """All US servers of one provider plus the selection policy.

    The default policy is the one the paper reverse-engineers: pick the
    server nearest to the session initiator.  The ``geo_distributed``
    alternative (each client attaches to its nearest server, servers are
    interconnected by a private backbone) implements the remedy the paper
    proposes, and is exercised by the A2 ablation.
    """

    vca: str
    servers: List[Server]
    #: Every fleet owns an independent model: ``seed()``-ing one fleet's
    #: jitter stream must never reseed another's (the old shared
    #: ``DEFAULT_PATH_MODEL`` default did exactly that).
    path_model: PathModel = field(default_factory=PathModel)

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError("a fleet needs at least one server")
        labels = [s.label for s in self.servers]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate server labels in {self.vca} fleet: {labels}")

    def by_label(self, label: str) -> Server:
        """Look up a server by its Table 1 column label."""
        for server in self.servers:
            if server.label == label:
                return server
        raise KeyError(f"{self.vca} has no server labeled {label!r}")

    def nearest(self, point: GeoPoint) -> Server:
        """The server geographically nearest to ``point``."""
        return min(self.servers, key=lambda s: s.location.distance_km(point))

    def select_for_session(self, initiator: GeoPoint,
                           participants: Sequence[GeoPoint]) -> Server:
        """Initiator-nearest policy observed by the paper (Sec. 4.1).

        ``participants`` is accepted (and ignored) to make the policy's
        blind spot explicit: the locations of the other users never
        influence the choice.
        """
        del participants
        return self.nearest(initiator)

    def geo_distributed_attachments(
        self, participants: Sequence[GeoPoint]
    ) -> Dict[GeoPoint, Server]:
        """Each client attaches to its own nearest server (ablation A2)."""
        return {p: self.nearest(p) for p in participants}

    def worst_client_rtt_ms(self, initiator: GeoPoint,
                            participants: Sequence[GeoPoint]) -> float:
        """Worst client-to-selected-server RTT under the observed policy."""
        server = self.select_for_session(initiator, participants)
        return max(
            self.path_model.base_rtt_ms(p, server.location) for p in participants
        )

    def worst_pair_rtt_ms(self, initiator: GeoPoint,
                          participants: Sequence[GeoPoint]) -> float:
        """Worst client-to-client RTT via the initiator-nearest server.

        Media from ``a`` reaches ``b`` as ``a -> S -> b`` where ``S`` is
        the single selected relay.
        """
        server = self.select_for_session(initiator, participants)
        worst = 0.0
        for i, a in enumerate(participants):
            for b in participants[i + 1:]:
                rtt = (
                    self.path_model.base_rtt_ms(a, server.location)
                    + self.path_model.base_rtt_ms(server.location, b)
                )
                worst = max(worst, rtt)
        return worst

    def worst_pair_rtt_ms_geo_distributed(
        self,
        participants: Sequence[GeoPoint],
        backbone_speedup: float = 1.0,
    ) -> float:
        """Worst client-to-client RTT with per-client server attachment.

        Media from ``a`` reaches ``b`` as ``a -> S_a -> S_b -> b``; the
        inter-server leg runs on a private backbone whose path inflation
        is divided by ``backbone_speedup`` (>= 1), modeling the
        "high-speed private network" remedy of Sec. 4.1.
        """
        if backbone_speedup < 1.0:
            raise ValueError("backbone_speedup must be >= 1")
        attach = self.geo_distributed_attachments(participants)
        worst = 0.0
        for i, a in enumerate(participants):
            for b in participants[i + 1:]:
                rtt = (
                    self.path_model.base_rtt_ms(a, attach[a].location)
                    + self.path_model.propagation_rtt_ms(
                        attach[a].location, attach[b].location
                    ) / backbone_speedup
                    + self.path_model.base_rtt_ms(attach[b].location, b)
                )
                worst = max(worst, rtt)
        return worst


def _srv(vca: str, label: str, name: str, lat: float, lon: float,
         address: str) -> Server:
    return Server(vca, label, GeoPoint(name, lat, lon), address)


#: Representative placements for the servers the paper geolocates (Sec. 4.1).
_FLEET_SPECS: Dict[str, List[Server]] = {
    "FaceTime": [
        _srv("FaceTime", "W", "San Francisco, CA", 37.7749, -122.4194, "17.100.0.1"),
        _srv("FaceTime", "M1", "Dallas, TX (DFW)", 32.8998, -97.0403, "17.100.0.2"),
        _srv("FaceTime", "M2", "Chicago, IL", 41.8781, -87.6298, "17.100.0.3"),
        _srv("FaceTime", "E", "Ashburn, VA", 39.0438, -77.4874, "17.100.0.4"),
    ],
    "Zoom": [
        _srv("Zoom", "W", "Los Angeles, CA", 34.0522, -118.2437, "170.114.0.1"),
        _srv("Zoom", "E", "Ashburn, VA", 39.0438, -77.4874, "170.114.0.2"),
    ],
    "Webex": [
        _srv("Webex", "W", "San Jose, CA", 37.3387, -121.8853, "66.114.160.1"),
        _srv("Webex", "M", "Richardson, TX", 32.9483, -96.7299, "66.114.160.2"),
        _srv("Webex", "E", "Ashburn, VA", 39.0438, -77.4874, "66.114.160.3"),
    ],
    "Teams": [
        _srv("Teams", "W", "Quincy, WA", 47.2343, -119.8526, "52.112.0.1"),
    ],
}

VCA_NAMES: Tuple[str, ...] = ("FaceTime", "Zoom", "Webex", "Teams")


def build_fleet(vca: str, path_model: Optional[PathModel] = None) -> ServerFleet:
    """Build the US server fleet of one provider.

    The server counts match Sec. 4.1 (FaceTime 4, Zoom 2, Webex 3, Teams 1).
    """
    if vca not in _FLEET_SPECS:
        raise KeyError(f"unknown VCA: {vca!r} (expected one of {VCA_NAMES})")
    servers = list(_FLEET_SPECS[vca])
    expected = calibration.SERVER_COUNTS[vca]
    if len(servers) != expected:
        raise AssertionError(
            f"{vca} fleet has {len(servers)} servers, paper reports {expected}"
        )
    return ServerFleet(vca, servers, path_model or PathModel())


#: Pre-built fleets for all four providers.
ALL_FLEETS: Dict[str, ServerFleet] = {name: build_fleet(name) for name in VCA_NAMES}


# ----------------------------------------------------------------------
# Fleet-scale robustness kernels (failover + QoE-aware load shedding)
# ----------------------------------------------------------------------


def failover_assignment(
    rtt_user_server: np.ndarray,
    assignment: np.ndarray,
    up: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-home every session whose server is down onto its nearest up server.

    One vectorized pass: down-server columns are masked to ``inf`` and the
    displaced rows take an ``argmin`` over what remains — the next-feasible
    server with the smallest RTT penalty, which the gauntlet then scores
    through the placement QoE objective.  Sessions already shed
    (``assignment == -1``) stay shed; if *no* server is up, displaced
    sessions are shed too.

    Args:
        rtt_user_server: ``(sessions, servers)`` RTT matrix (ms).
        assignment: Current server index per session (``-1`` = shed).
        up: ``(servers,)`` bool mask of servers currently alive.

    Returns:
        ``(new_assignment, moved)`` — the updated assignment and the bool
        mask of sessions that failed over (shedding counts as moved).
    """
    rtt = np.asarray(rtt_user_server, dtype=np.float64)
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    up = np.asarray(up, dtype=bool)
    assigned = assignment >= 0
    displaced = assigned & ~up[np.where(assigned, assignment, 0)]
    moved = np.flatnonzero(displaced)
    if len(moved) == 0:
        return assignment, displaced
    if not up.any():
        assignment[moved] = -1
        return assignment, displaced
    masked = np.where(up[None, :], rtt[moved], np.inf)
    assignment[moved] = np.argmin(masked, axis=1)
    return assignment, displaced


def shed_overload(
    rtt_user_server: np.ndarray,
    assignment: np.ndarray,
    up: np.ndarray,
    capacity: np.ndarray,
    load: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Admission control: drain over-capacity servers, cheapest regret first.

    The QoE-aware twin of the load-aware placement policy's kernel: each
    over-capacity server ranks its sessions by the *QoE regret* of moving
    them — the drop in the placement delay factor between their current
    server and their best up alternative — and evicts the cheapest ones
    until it fits.  An evicted session moves to its alternative if that
    server has headroom (tracked greedily as moves land), and is **shed**
    (``assignment = -1``, QoE 0) when no feasible server can take it.

    Servers are drained in index order and ties broken by a stable sort,
    so the outcome is bit-reproducible across serial, pooled, and
    distributed gauntlet workers.

    Args:
        rtt_user_server: ``(sessions, servers)`` RTT matrix (ms).
        assignment: Server index per session (``-1`` = already shed).
        up: ``(servers,)`` bool mask of live servers.
        capacity: Per-server capacity in load units (scalar broadcasts).
        load: Per-session load (defaults to 1.0 each).

    Returns:
        ``(new_assignment, shed, moves)`` — updated assignment, the bool
        mask of sessions shed *by this call*, and the number of sessions
        relocated to an alternative server instead.
    """
    rtt = np.asarray(rtt_user_server, dtype=np.float64)
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    up = np.asarray(up, dtype=bool)
    n_sessions, n_servers = rtt.shape
    capacity = np.broadcast_to(
        np.asarray(capacity, dtype=np.float64), (n_servers,)).copy()
    if load is None:
        load = np.ones(n_sessions)
    load = np.asarray(load, dtype=np.float64)

    # Lazy: geo.servers sits below vca.session in the import graph
    # (vca.session -> faults.resilient -> geo.servers); a module-level
    # import of vca.qoe would close the cycle through vca.__init__.
    from repro.vca.qoe import delay_factor_arrays

    occupancy = np.bincount(
        assignment[assignment >= 0],
        weights=load[assignment >= 0],
        minlength=n_servers,
    )
    shed = np.zeros(n_sessions, dtype=bool)
    moves = 0
    for server in range(n_servers):
        # A down server admits nothing: it drains completely.
        cap_here = capacity[server] if up[server] else 0.0
        if occupancy[server] <= cap_here:
            continue
        members = np.flatnonzero(assignment == server)
        if len(members) == 0:
            continue
        # Best up alternative per member, current server excluded.
        alt_mask = up.copy()
        alt_mask[server] = False
        if alt_mask.any():
            masked = np.where(alt_mask[None, :], rtt[members], np.inf)
            alt = np.argmin(masked, axis=1)
            alt_rtt = masked[np.arange(len(members)), alt]
        else:
            alt = np.full(len(members), -1)
            alt_rtt = np.full(len(members), np.inf)
        here = delay_factor_arrays(rtt[members, server] / 2.0)
        there = np.where(np.isfinite(alt_rtt),
                         delay_factor_arrays(alt_rtt / 2.0), 0.0)
        regret = here - there
        order = np.argsort(regret, kind="stable")
        for position in order:
            if occupancy[server] <= cap_here:
                break
            session = int(members[position])
            target = int(alt[position])
            occupancy[server] -= load[session]
            if (target >= 0 and np.isfinite(alt_rtt[position])
                    and occupancy[target] + load[session]
                    <= capacity[target]):
                assignment[session] = target
                occupancy[target] += load[session]
                moves += 1
            else:
                assignment[session] = -1
                shed[session] = True
    return assignment, shed, moves
