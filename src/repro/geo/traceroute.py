"""Hop-level path synthesis and TCP traceroute.

The paper's latency tooling is built on ``tcptraceroute`` [66] — TTL-limited
TCP SYNs that elicit ICMP Time-Exceeded from each router on the path.  The
wide-area core in :mod:`repro.netsim` is a single edge, so this module
synthesizes the hop structure that edge abstracts: IXP/backbone routers
placed along the inflated great-circle path (one every few hundred km, plus
access hops at both ends), each with its cumulative RTT.  A traceroute then
"probes" those hops the way the real tool walks TTLs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel, DEFAULT_PATH_MODEL

#: Mean spacing between backbone routers, km of great-circle distance.
BACKBONE_HOP_KM = 400.0

#: Fixed hops at each end: client gateway, access aggregation.
ACCESS_HOPS_PER_SIDE = 2


@dataclass(frozen=True)
class Hop:
    """One router on a synthesized path."""

    index: int
    name: str
    location: GeoPoint
    cumulative_rtt_ms: float


def synthesize_path(src: GeoPoint, dst: GeoPoint,
                    model: Optional[PathModel] = None) -> List[Hop]:
    """The hop list a traceroute between ``src`` and ``dst`` would reveal.

    Hops interpolate the great circle; cumulative RTTs follow the path
    model so the final hop's RTT equals the end-to-end base RTT.
    """
    model = model or DEFAULT_PATH_MODEL
    total_km = src.distance_km(dst)
    n_backbone = max(1, int(round(total_km / BACKBONE_HOP_KM)))
    total_rtt = model.base_rtt_ms(src, dst)
    access_each = model.access_rtt_ms / 2.0
    propagation = total_rtt - model.access_rtt_ms

    hops: List[Hop] = []
    index = 1
    # Source-side access hops: negligible distance, split access delay.
    for i in range(ACCESS_HOPS_PER_SIDE):
        rtt = access_each * (i + 1) / ACCESS_HOPS_PER_SIDE
        hops.append(Hop(index, f"src-access-{i + 1}", src, rtt))
        index += 1
    # Backbone hops along the great circle.
    for i in range(1, n_backbone + 1):
        fraction = i / n_backbone
        lat = src.lat + (dst.lat - src.lat) * fraction
        lon = src.lon + (dst.lon - src.lon) * fraction
        point = GeoPoint(f"backbone-{i}", lat, lon)
        rtt = access_each + propagation * fraction
        hops.append(Hop(index, point.name, point, rtt))
        index += 1
    # Destination-side access hops.
    for i in range(ACCESS_HOPS_PER_SIDE):
        rtt = (
            access_each + propagation
            + access_each * (i + 1) / ACCESS_HOPS_PER_SIDE
        )
        hops.append(Hop(index, f"dst-access-{i + 1}", dst, rtt))
        index += 1
    return hops


@dataclass(frozen=True)
class TracerouteHop:
    """One measured traceroute line: TTL, responder, RTT samples."""

    ttl: int
    name: str
    rtts_ms: List[float]

    @property
    def mean_rtt_ms(self) -> float:
        """Mean of the per-TTL probes."""
        return float(np.mean(self.rtts_ms))


@dataclass
class TcpTraceroute:
    """TTL-walking probe over a synthesized path.

    Args:
        model: RTT/jitter model shared with the rest of the geo layer.
        probes_per_ttl: Probes sent at each TTL (the tool default is 3).
        drop_prob: Probability a hop silently drops probes (the ``* * *``
            lines real traceroutes show), applied per hop deterministically
            from the seed.
    """

    model: PathModel = field(default_factory=PathModel)
    probes_per_ttl: int = 3
    drop_prob: float = 0.1

    def run(self, src: GeoPoint, dst: GeoPoint,
            seed: int = 0) -> List[TracerouteHop]:
        """Walk the path; silent hops yield empty RTT lists."""
        if self.probes_per_ttl < 1:
            raise ValueError("need at least one probe per TTL")
        rng = np.random.default_rng(seed)
        result = []
        for hop in synthesize_path(src, dst, self.model):
            is_last = hop.index == len(synthesize_path(src, dst, self.model))
            if not is_last and rng.random() < self.drop_prob:
                result.append(TracerouteHop(hop.index, "*", []))
                continue
            jitter = rng.normal(0.0, self.model.jitter_std_ms,
                                self.probes_per_ttl)
            rtts = np.maximum(hop.cumulative_rtt_ms + jitter, 0.1)
            result.append(TracerouteHop(hop.index, hop.name, list(rtts)))
        return result

    @staticmethod
    def destination_rtt_ms(hops: List[TracerouteHop]) -> float:
        """Mean RTT of the final (destination) hop.

        Raises:
            ValueError: When the destination did not answer.
        """
        if not hops or not hops[-1].rtts_ms:
            raise ValueError("destination hop did not respond")
        return hops[-1].mean_rtt_ms

    @staticmethod
    def format_output(hops: List[TracerouteHop]) -> str:
        """Render like the command-line tool."""
        lines = []
        for hop in hops:
            if not hop.rtts_ms:
                lines.append(f"{hop.ttl:2d}  * * *")
            else:
                samples = "  ".join(f"{r:.1f} ms" for r in hop.rtts_ms)
                lines.append(f"{hop.ttl:2d}  {hop.name:16s} {samples}")
        return "\n".join(lines)
