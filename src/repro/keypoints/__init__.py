"""Semantic-communication substrate: keypoints, motion, codec, reconstruction.

Sec. 4.3 of the paper concludes that FaceTime delivers the spatial persona
as *semantic information*: Vision Pro's sensors track mouth and eyes, the 74
keypoints (32 mouth+eye facial points from the dlib-68 layout plus two
OpenPose 21-point hands) compress under LZMA to 0.64 +/- 0.02 Mbps at
90 FPS, and the receiver reconstructs the persona mesh from them.

- :mod:`repro.keypoints.schema` — the dlib-68 and OpenPose-21 layouts and
  the mouth+eyes semantic subset.
- :mod:`repro.keypoints.motion` — synthetic head/face/hand motion, the
  stand-in for the ZED 2i RGB-D capture.
- :mod:`repro.keypoints.codec` — per-frame LZMA keypoint codec.
- :mod:`repro.keypoints.reconstruct` — template-mesh deformation from
  received keypoints, failing explicitly when semantics are missing (the
  mechanism behind the 700 Kbps "poor connection" cutoff).
"""

from repro.keypoints.schema import (
    FacialLandmarks,
    HandLandmarks,
    SEMANTIC_FACIAL_INDICES,
    semantic_subset,
)
from repro.keypoints.motion import MotionSynthesizer, KeypointFrame
from repro.keypoints.codec import SemanticCodec, EncodedKeypointFrame
from repro.keypoints.reconstruct import (
    PersonaReconstructor,
    ReconstructionError,
    check_semantic_frame,
    frame_is_reconstructible,
)
from repro.keypoints.layered import (
    Layer,
    LayeredSemanticCodec,
    LayeredFrame,
    AdaptiveLayerSelector,
)

__all__ = [
    "FacialLandmarks",
    "HandLandmarks",
    "SEMANTIC_FACIAL_INDICES",
    "semantic_subset",
    "MotionSynthesizer",
    "KeypointFrame",
    "SemanticCodec",
    "EncodedKeypointFrame",
    "PersonaReconstructor",
    "ReconstructionError",
    "check_semantic_frame",
    "frame_is_reconstructible",
    "Layer",
    "LayeredSemanticCodec",
    "LayeredFrame",
    "AdaptiveLayerSelector",
]
