"""Per-frame LZMA keypoint codec — the semantic-communication payload.

The paper compresses the 74 extracted keypoints with LZMA and streams them
at 90 FPS, measuring 0.64 +/- 0.02 Mbps (Sec. 4.3).  Each frame is encoded
independently (a lost frame must not corrupt later ones — there is no rate
adaptation or retransmission in the spatial persona pipeline), so the
payload is: a small header, 74 float32 triples, and a per-point visibility
mask, passed through raw-LZMA.
"""

from __future__ import annotations

import lzma
import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import calibration
from repro.keypoints.motion import KeypointFrame

_LZMA_FILTERS = [{"id": lzma.FILTER_LZMA2, "preset": 0}]
_HEADER = struct.Struct("<IdB")  # frame index, timestamp, keypoint count

#: Keypoint extractors report a confidence per point; the stream carries it
#: as a uint8 in [CONFIDENCE_FLOOR, 255].
CONFIDENCE_FLOOR = 200


@dataclass(frozen=True)
class EncodedKeypointFrame:
    """One compressed semantic frame."""

    payload: bytes

    @property
    def byte_size(self) -> int:
        """Compressed size in bytes."""
        return len(self.payload)

    def bitrate_mbps(self, fps: float) -> float:
        """Bandwidth to stream one such frame per tick at ``fps``."""
        return self.byte_size * 8.0 * fps / 1e6


@dataclass(frozen=True)
class DecodedKeypointFrame:
    """The receiver's view of a semantic frame."""

    index: int
    timestamp: float
    points: np.ndarray        # (74, 3) float32
    visibility: np.ndarray    # (74,) bool
    confidence: np.ndarray    # (74,) uint8


class SemanticCodec:
    """Encode/decode 74-keypoint semantic frames with LZMA."""

    KEYPOINTS = calibration.SEMANTIC_KEYPOINTS_TOTAL

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def encode(self, frame: KeypointFrame,
               visibility: Optional[np.ndarray] = None,
               confidence: Optional[np.ndarray] = None,
               include_confidence: bool = True) -> EncodedKeypointFrame:
        """Compress the semantic keypoints of one captured frame.

        ``include_confidence`` carries the extractor's per-point confidence
        channel.  The standalone Sec. 4.3 experiment (dlib/OpenPose output)
        includes it; the production FaceTime stream profile omits it (see
        :class:`repro.vca.media.SemanticSource`).
        """
        points = frame.semantic_points().astype(np.float32)
        if points.shape != (self.KEYPOINTS, 3):
            raise ValueError(f"expected ({self.KEYPOINTS}, 3), got {points.shape}")
        if visibility is None:
            visibility = np.ones(self.KEYPOINTS, dtype=bool)
        visibility = np.asarray(visibility, dtype=bool)
        if visibility.shape != (self.KEYPOINTS,):
            raise ValueError("visibility must have one flag per keypoint")
        body = points.tobytes() + np.packbits(visibility).tobytes()
        if include_confidence:
            if confidence is None:
                confidence = self._rng.integers(
                    CONFIDENCE_FLOOR, 256, self.KEYPOINTS, dtype=np.uint8
                )
            confidence = np.asarray(confidence, dtype=np.uint8)
            if confidence.shape != (self.KEYPOINTS,):
                raise ValueError("confidence must have one value per keypoint")
            body += confidence.tobytes()
        header = _HEADER.pack(frame.index, frame.timestamp, self.KEYPOINTS)
        compressed = lzma.compress(
            header + body, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS
        )
        return EncodedKeypointFrame(compressed)

    def decode(self, encoded: EncodedKeypointFrame) -> DecodedKeypointFrame:
        """Reconstruct the semantic frame.

        Raises:
            ValueError: If the payload is truncated or corrupt — the
                situation a receiver faces when the shaper starved the
                stream, triggering reconstruction failure upstream.
        """
        try:
            raw = lzma.decompress(
                encoded.payload, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS
            )
        except lzma.LZMAError as exc:
            raise ValueError("corrupt semantic frame") from exc
        if len(raw) < _HEADER.size:
            raise ValueError("truncated semantic frame header")
        index, timestamp, count = _HEADER.unpack_from(raw)
        if count != self.KEYPOINTS:
            raise ValueError(f"unexpected keypoint count {count}")
        mask_bytes = (count + 7) // 8
        base = _HEADER.size + count * 12 + mask_bytes
        if len(raw) < base:
            raise ValueError("truncated semantic frame body")
        points = np.frombuffer(
            raw, dtype=np.float32, count=count * 3, offset=_HEADER.size
        ).reshape(count, 3)
        bits = np.frombuffer(
            raw, dtype=np.uint8, count=mask_bytes, offset=_HEADER.size + count * 12
        )
        visibility = np.unpackbits(bits)[:count].astype(bool)
        if len(raw) >= base + count:  # confidence channel present
            confidence = np.frombuffer(
                raw, dtype=np.uint8, count=count, offset=base
            ).copy()
        else:
            confidence = np.full(count, 255, dtype=np.uint8)
        return DecodedKeypointFrame(
            index, timestamp, points.copy(), visibility, confidence
        )
