"""Layered semantic codec: rate adaptation for keypoint streams.

Sec. 4.3 of the paper finds FaceTime's semantic stream has *no* rate
adaptation — below 700 Kbps the persona simply disappears — and notes that
adaptation "can be achieved in 3D content streaming as well [34]".  This
module builds that missing capability as a layered codec (ablation A4):

========  =====================================  ====================
Layer     Contents                               Approx. rate @90 FPS
========  =====================================  ====================
BASE      32 mouth+eye points, float16           ~0.2 Mbps
STANDARD  facial float32 + two hands float16     ~0.5 Mbps
FULL      all 74 points float32 + confidence     ~0.65 Mbps
========  =====================================  ====================

Every layer is independently decodable; reconstruction degrades
gracefully (hands freeze at the rest pose under BASE) instead of failing
outright.  :class:`AdaptiveLayerSelector` picks the highest layer that
fits an estimated available rate — exactly what the fixed-rate FaceTime
pipeline lacks.
"""

from __future__ import annotations

import enum
import lzma
import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import calibration
from repro.keypoints.codec import EncodedKeypointFrame
from repro.keypoints.motion import KeypointFrame
from repro.keypoints.schema import TEMPLATES, semantic_subset

_LZMA_FILTERS = [{"id": lzma.FILTER_LZMA2, "preset": 0}]
_HEADER = struct.Struct("<IdB")  # frame index, timestamp, layer id

#: Point counts of the semantic layout: 32 facial + 21 + 21.
_FACIAL = calibration.FACIAL_SEMANTIC_KEYPOINTS
_HAND = calibration.HAND_KEYPOINTS


class Layer(enum.IntEnum):
    """Quality layers, ordered by rate.

    Values start at 1 so every member is truthy — ``select()`` returns
    ``None`` for "no layer fits" and a falsy BASE would be ambiguous.
    """

    BASE = 1
    STANDARD = 2
    FULL = 3


@dataclass(frozen=True)
class LayeredFrame:
    """A decoded layered frame.

    Attributes:
        index: Frame number.
        timestamp: Capture time, seconds.
        layer: The layer that was delivered.
        points: ``(74, 3)`` float32 keypoints; hand rows are the template
            rest pose when the layer did not carry them.
        degraded: True when any group was synthesized from the rest pose.
    """

    index: int
    timestamp: float
    layer: Layer
    points: np.ndarray
    degraded: bool


def _rest_hands() -> np.ndarray:
    return np.concatenate(
        [TEMPLATES["left_hand"], TEMPLATES["right_hand"]]
    ).astype(np.float32)


class LayeredSemanticCodec:
    """Encode/decode keypoint frames at a chosen quality layer."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def encode(self, frame: KeypointFrame, layer: Layer) -> EncodedKeypointFrame:
        """Compress one frame at ``layer``."""
        points = frame.semantic_points().astype(np.float32)
        facial = points[:_FACIAL]
        hands = points[_FACIAL:]
        if layer is Layer.BASE:
            body = facial.astype(np.float16).tobytes()
        elif layer is Layer.STANDARD:
            body = facial.tobytes() + hands.astype(np.float16).tobytes()
        elif layer is Layer.FULL:
            confidence = self._rng.integers(
                200, 256, calibration.SEMANTIC_KEYPOINTS_TOTAL, dtype=np.uint8
            )
            body = points.tobytes() + confidence.tobytes()
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown layer {layer}")
        header = _HEADER.pack(frame.index, frame.timestamp, int(layer))
        payload = lzma.compress(
            header + body, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS
        )
        return EncodedKeypointFrame(payload)

    def decode(self, encoded: EncodedKeypointFrame) -> LayeredFrame:
        """Reconstruct a layered frame (graceful degradation built in).

        Raises:
            ValueError: On corrupt or truncated payloads.
        """
        try:
            raw = lzma.decompress(
                encoded.payload, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS
            )
        except lzma.LZMAError as exc:
            raise ValueError("corrupt layered frame") from exc
        if len(raw) < _HEADER.size:
            raise ValueError("truncated layered frame header")
        index, timestamp, layer_id = _HEADER.unpack_from(raw)
        try:
            layer = Layer(layer_id)
        except ValueError as exc:
            raise ValueError(f"unknown layer id {layer_id}") from exc
        body = raw[_HEADER.size:]
        if layer is Layer.BASE:
            need = _FACIAL * 3 * 2
            if len(body) < need:
                raise ValueError("truncated BASE body")
            facial = np.frombuffer(body, dtype=np.float16,
                                   count=_FACIAL * 3).astype(np.float32)
            points = np.concatenate(
                [facial.reshape(_FACIAL, 3), _rest_hands()]
            )
            degraded = True
        elif layer is Layer.STANDARD:
            need = _FACIAL * 3 * 4 + 2 * _HAND * 3 * 2
            if len(body) < need:
                raise ValueError("truncated STANDARD body")
            facial = np.frombuffer(body, dtype=np.float32, count=_FACIAL * 3)
            hands = np.frombuffer(
                body, dtype=np.float16, count=2 * _HAND * 3,
                offset=_FACIAL * 3 * 4,
            ).astype(np.float32)
            points = np.concatenate(
                [facial.reshape(_FACIAL, 3), hands.reshape(2 * _HAND, 3)]
            )
            degraded = False
        else:
            total = calibration.SEMANTIC_KEYPOINTS_TOTAL
            need = total * 3 * 4
            if len(body) < need:
                raise ValueError("truncated FULL body")
            points = np.frombuffer(
                body, dtype=np.float32, count=total * 3
            ).reshape(total, 3).copy()
            degraded = False
        return LayeredFrame(index, timestamp, layer, points, degraded)


@dataclass
class AdaptiveLayerSelector:
    """Pick the highest layer whose rate fits the available bandwidth.

    Rates are profiled once from a short synthetic capture, then the
    selector is a pure function of the estimated available rate — the
    control loop a rate-adaptive sender would run per RTCP interval.
    """

    codec: LayeredSemanticCodec
    fps: float = float(calibration.TARGET_FPS)
    headroom: float = 0.9
    profile_frames: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        from repro.keypoints.motion import MotionSynthesizer

        synth = MotionSynthesizer(fps=self.fps, seed=1)
        frames = list(synth.frames(self.profile_frames))
        self.layer_mbps = {}
        for layer in Layer:
            sizes = [self.codec.encode(f, layer).byte_size for f in frames]
            self.layer_mbps[layer] = (
                float(np.mean(sizes)) * 8.0 * self.fps / 1e6
            )

    def select(self, available_mbps: float) -> Optional[Layer]:
        """Highest layer fitting ``available_mbps`` (None: not even BASE)."""
        if available_mbps < 0:
            raise ValueError("available rate cannot be negative")
        budget = available_mbps * self.headroom
        chosen: Optional[Layer] = None
        for layer in Layer:
            if self.layer_mbps[layer] <= budget:
                chosen = layer
        return chosen
