"""Synthetic head/face/hand motion — the ZED 2i capture substitute.

The paper records 2,000 RGB-D frames of a person's head and hands and
extracts keypoints per frame (Sec. 4.3).  This module synthesizes the same
keypoint streams directly: an Ornstein–Uhlenbeck head pose (people sway,
they do not random-walk away), a blink process, a speech-like mouth
envelope, and slow hand gestures.  What matters downstream is that the
streams have realistic temporal statistics, because those determine the
compressed bitrate of the semantic codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.keypoints.schema import FacialLandmarks, TEMPLATES, semantic_subset


@dataclass
class KeypointFrame:
    """All keypoints extracted from one captured frame.

    Attributes:
        index: Frame number.
        timestamp: Capture time in seconds.
        face: ``(68, 3)`` dlib facial landmarks.
        left_hand: ``(21, 3)`` OpenPose hand landmarks.
        right_hand: ``(21, 3)`` OpenPose hand landmarks.
    """

    index: int
    timestamp: float
    face: np.ndarray
    left_hand: np.ndarray
    right_hand: np.ndarray

    def semantic_points(self) -> np.ndarray:
        """The 74 semantic keypoints: 32 mouth+eyes + both hands."""
        return np.concatenate(
            [semantic_subset(self.face), self.left_hand, self.right_hand]
        )


class _OrnsteinUhlenbeck:
    """Mean-reverting Gaussian process, one value per dimension."""

    def __init__(self, dims: int, theta: float, sigma: float,
                 rng: np.random.Generator) -> None:
        self.theta = theta
        self.sigma = sigma
        self.state = np.zeros(dims)
        self._rng = rng

    def step(self, dt: float) -> np.ndarray:
        drift = -self.theta * self.state * dt
        diffusion = self.sigma * np.sqrt(dt) * self._rng.standard_normal(
            self.state.shape
        )
        self.state = self.state + drift + diffusion
        return self.state


def _rotation_matrix(angles: np.ndarray) -> np.ndarray:
    """Rotation from (roll, pitch, yaw) in radians, ZYX convention."""
    roll, pitch, yaw = angles
    cr, sr = np.cos(roll), np.sin(roll)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cy, sy = np.cos(yaw), np.sin(yaw)
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]])
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]])
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]])
    return rz @ ry @ rx


@dataclass
class MotionSynthesizer:
    """Generates keypoint frames at a fixed frame rate.

    Args:
        fps: Capture frame rate.
        seed: Randomness seed; two synthesizers with the same seed emit
            identical streams.
        speech_activity: Fraction of time the subject is talking, driving
            the mouth envelope.
    """

    fps: float = 90.0
    seed: int = 0
    speech_activity: float = 0.6
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        if not 0.0 <= self.speech_activity <= 1.0:
            raise ValueError("speech_activity must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        self._head_pose = _OrnsteinUhlenbeck(3, theta=0.8, sigma=0.06, rng=self._rng)
        self._head_pos = _OrnsteinUhlenbeck(3, theta=0.5, sigma=0.01, rng=self._rng)
        self._hand_pose = _OrnsteinUhlenbeck(6, theta=0.6, sigma=0.05, rng=self._rng)
        self._blink_timer = self._next_blink()
        self._blink_phase = -1.0  # negative: not blinking

    def _next_blink(self) -> float:
        # People blink every 3-6 seconds.
        return float(self._rng.uniform(3.0, 6.0))

    def frames(self, count: int) -> Iterator[KeypointFrame]:
        """Yield ``count`` consecutive frames."""
        if count < 1:
            raise ValueError("count must be >= 1")
        dt = 1.0 / self.fps
        for index in range(count):
            yield self._frame(index, index * dt, dt)

    def _frame(self, index: int, t: float, dt: float) -> KeypointFrame:
        angles = self._head_pose.step(dt)
        position = self._head_pos.step(dt)
        rotation = _rotation_matrix(angles)

        face = TEMPLATES["face"].copy()
        face = self._animate_mouth(face, t)
        face = self._animate_blink(face, dt)
        face = face @ rotation.T + position

        hands = self._hand_pose.step(dt)
        left = TEMPLATES["left_hand"] + hands[:3] * np.array([0.5, 1.0, 1.0])
        right = TEMPLATES["right_hand"] + hands[3:] * np.array([0.5, 1.0, 1.0])
        # Sensor noise: keypoint extractors jitter at the millimeter level.
        noise = lambda shape: self._rng.normal(0.0, 5e-4, shape)  # noqa: E731
        return KeypointFrame(
            index=index,
            timestamp=t,
            face=face + noise(face.shape),
            left_hand=left + noise(left.shape),
            right_hand=right + noise(right.shape),
        )

    def _animate_mouth(self, face: np.ndarray, t: float) -> np.ndarray:
        """Open/close the mouth with a speech-like envelope."""
        talking = self._rng.random() < self.speech_activity
        envelope = 0.5 + 0.5 * np.sin(2 * np.pi * 4.5 * t)  # ~syllable rate
        opening = 0.012 * envelope if talking else 0.001
        lo, hi = FacialLandmarks.MOUTH
        mouth = face[lo:hi]
        below = mouth[:, 2] < mouth[:, 2].mean()
        mouth[below, 2] -= opening
        face[lo:hi] = mouth
        return face

    def _animate_blink(self, face: np.ndarray, dt: float) -> np.ndarray:
        """Close both eyelid rings during a ~150 ms blink."""
        self._blink_timer -= dt
        if self._blink_timer <= 0.0 and self._blink_phase < 0.0:
            self._blink_phase = 0.0
            self._blink_timer = self._next_blink()
        if self._blink_phase >= 0.0:
            closure = np.sin(np.pi * min(self._blink_phase / 0.15, 1.0))
            for lo, hi in (FacialLandmarks.RIGHT_EYE, FacialLandmarks.LEFT_EYE):
                eye = face[lo:hi]
                center_z = eye[:, 2].mean()
                eye[:, 2] = center_z + (eye[:, 2] - center_z) * (1.0 - closure)
                face[lo:hi] = eye
            self._blink_phase += dt
            if self._blink_phase > 0.15:
                self._blink_phase = -1.0
        return face


def capture_session(
    frames: int,
    fps: float = 90.0,
    seed: int = 0,
    speech_activity: float = 0.6,
) -> "list[KeypointFrame]":
    """Record a full synthetic capture (the 2,000-frame ZED session)."""
    synth = MotionSynthesizer(fps=fps, seed=seed, speech_activity=speech_activity)
    return list(synth.frames(frames))
