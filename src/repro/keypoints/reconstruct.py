"""Persona reconstruction from received semantic keypoints.

The receiving Vision Pro turns each semantic frame back into a renderable
persona mesh by deforming the pre-captured template (Sec. 4.3's semantic
communication paradigm, [22]).  Reconstruction is a linear blend: every
template vertex carries Gaussian-falloff weights toward its nearby
keypoints, and the received keypoint displacements are blended through
those weights.

Crucially for the rate-adaptation finding (Sec. 4.3): reconstruction
*requires* the full semantic frame.  When a required keypoint group (eyes,
mouth, either hand) is missing or the frame is corrupt, reconstruction
fails — "missing certain parts of semantic information can result in
failed content reconstruction" — which is what surfaces to the user as
"poor connection" below the 700 Kbps cutoff.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import calibration
from repro.keypoints.codec import DecodedKeypointFrame
from repro.keypoints.motion import KeypointFrame
from repro.keypoints.schema import TEMPLATES, semantic_subset
from repro.mesh.model import TriangleMesh

#: Required keypoint groups and their index ranges within the 74-point
#: semantic frame layout: [eyes 0:12, mouth 12:32, left hand 32:53,
#: right hand 53:74].
SEMANTIC_GROUPS: Dict[str, slice] = {
    "eyes": slice(0, 12),
    "mouth": slice(12, 32),
    "left_hand": slice(32, 53),
    "right_hand": slice(53, 74),
}


class ReconstructionError(RuntimeError):
    """Raised when a persona cannot be reconstructed from received data."""


def check_semantic_frame(frame: DecodedKeypointFrame,
                         min_group_coverage: float = 0.75) -> None:
    """Validate that all required semantic groups were received.

    Raises:
        ReconstructionError: On a missing group or malformed frame.
    """
    if frame.points.shape != (calibration.SEMANTIC_KEYPOINTS_TOTAL, 3):
        raise ReconstructionError(
            f"frame has wrong keypoint shape {frame.points.shape}"
        )
    if not np.all(np.isfinite(frame.points)):
        raise ReconstructionError("frame contains non-finite keypoints")
    for group, index in SEMANTIC_GROUPS.items():
        coverage = float(frame.visibility[index].mean())
        if coverage < min_group_coverage:
            raise ReconstructionError(
                f"semantic group {group!r} coverage {coverage:.0%} "
                f"below {min_group_coverage:.0%}"
            )


def frame_is_reconstructible(frame: DecodedKeypointFrame,
                             min_group_coverage: float = 0.75) -> bool:
    """Boolean form of :func:`check_semantic_frame`."""
    try:
        check_semantic_frame(frame, min_group_coverage)
    except ReconstructionError:
        return False
    return True


def _rest_semantic_points() -> np.ndarray:
    """Rest positions of the 74 semantic keypoints (template pose)."""
    return np.concatenate([
        semantic_subset(TEMPLATES["face"]),
        TEMPLATES["left_hand"],
        TEMPLATES["right_hand"],
    ])


class PersonaReconstructor:
    """Deform a template persona mesh from semantic keypoint frames."""

    def __init__(self, template: TriangleMesh,
                 falloff_m: float = 0.04,
                 min_group_coverage: float = 0.75) -> None:
        """Precompute blend weights from the template.

        Args:
            template: The pre-captured persona mesh (enrollment output).
            falloff_m: Gaussian falloff radius of keypoint influence.
            min_group_coverage: Fraction of a group's keypoints that must
                be visible for the group to count as received.
        """
        if falloff_m <= 0:
            raise ValueError("falloff must be positive")
        if not 0.0 < min_group_coverage <= 1.0:
            raise ValueError("min_group_coverage must be in (0, 1]")
        self.template = template
        self.min_group_coverage = min_group_coverage
        rest = _rest_semantic_points()
        self._rest = rest
        # (V, K) Gaussian weights, normalized per vertex with a mass floor
        # so vertices far from any keypoint stay put.
        diff = template.vertices[:, None, :] - rest[None, :, :]
        dist2 = np.einsum("vkc,vkc->vk", diff, diff)
        weights = np.exp(-dist2 / (2.0 * falloff_m**2))
        mass = weights.sum(axis=1, keepdims=True)
        self._weights = weights / np.maximum(mass, 1.0)
        self.frames_reconstructed = 0
        self.frames_failed = 0

    def check_frame(self, frame: DecodedKeypointFrame) -> None:
        """Validate that all required semantic groups were received.

        Raises:
            ReconstructionError: On a missing group or malformed frame.
        """
        check_semantic_frame(frame, self.min_group_coverage)

    def reconstruct(self, frame: DecodedKeypointFrame) -> TriangleMesh:
        """Produce the persona mesh for one received frame.

        Raises:
            ReconstructionError: When required semantics are missing.
        """
        try:
            self.check_frame(frame)
        except ReconstructionError:
            self.frames_failed += 1
            raise
        displacement = frame.points.astype(np.float64) - self._rest
        vertex_offsets = self._weights @ displacement
        self.frames_reconstructed += 1
        return TriangleMesh(
            self.template.vertices + vertex_offsets,
            self.template.faces,
            name=f"{self.template.name}-frame{frame.index}",
        )

    def reconstruct_reference(self, frame: KeypointFrame) -> TriangleMesh:
        """Sender-side reference reconstruction (no network in between)."""
        decoded = DecodedKeypointFrame(
            index=frame.index,
            timestamp=frame.timestamp,
            points=frame.semantic_points().astype(np.float32),
            visibility=np.ones(calibration.SEMANTIC_KEYPOINTS_TOTAL, dtype=bool),
            confidence=np.full(calibration.SEMANTIC_KEYPOINTS_TOTAL, 255, np.uint8),
        )
        return self.reconstruct(decoded)
