"""Keypoint layouts: dlib 68-point face, OpenPose 21-point hand.

The paper extracts the widely used 68 facial keypoints from dlib and 21
hand keypoints from OpenPose, then keeps the 32 mouth+eye facial points the
Vision Pro sensors actually track, for a total of 32 + 2*21 = 74 semantic
keypoints per frame (Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro import calibration


@dataclass(frozen=True)
class FacialLandmarks:
    """Index ranges of the dlib 68-point facial landmark layout."""

    JAW: Tuple[int, int] = (0, 17)          # 17 points
    RIGHT_BROW: Tuple[int, int] = (17, 22)  # 5 points
    LEFT_BROW: Tuple[int, int] = (22, 27)   # 5 points
    NOSE: Tuple[int, int] = (27, 36)        # 9 points
    RIGHT_EYE: Tuple[int, int] = (36, 42)   # 6 points
    LEFT_EYE: Tuple[int, int] = (42, 48)    # 6 points
    MOUTH: Tuple[int, int] = (48, 68)       # 20 points

    TOTAL: int = 68


@dataclass(frozen=True)
class HandLandmarks:
    """The OpenPose 21-point hand layout: wrist + 4 joints per finger."""

    WRIST: int = 0
    FINGERS: Tuple[str, ...] = ("thumb", "index", "middle", "ring", "pinky")
    JOINTS_PER_FINGER: int = 4

    TOTAL: int = 21


#: Indices (into the 68-point layout) of the mouth+eyes subset the spatial
#: persona tracks: both 6-point eyes and the 20-point mouth = 32 points.
SEMANTIC_FACIAL_INDICES = np.concatenate([
    np.arange(*FacialLandmarks.RIGHT_EYE),
    np.arange(*FacialLandmarks.LEFT_EYE),
    np.arange(*FacialLandmarks.MOUTH),
])

assert len(SEMANTIC_FACIAL_INDICES) == calibration.FACIAL_SEMANTIC_KEYPOINTS


def semantic_subset(facial_points: np.ndarray) -> np.ndarray:
    """Select the 32 mouth+eye points from a (68, 3) facial array."""
    facial_points = np.asarray(facial_points)
    if facial_points.shape != (FacialLandmarks.TOTAL, 3):
        raise ValueError(
            f"expected (68, 3) facial points, got {facial_points.shape}"
        )
    return facial_points[SEMANTIC_FACIAL_INDICES]


def _facial_template() -> np.ndarray:
    """Canonical rest positions of the 68 facial landmarks (meters).

    Head-centric frame: +x out of the face, +y to the subject's left,
    +z up.  Positions are anatomically plausible, not from any dataset.
    """
    points = np.zeros((FacialLandmarks.TOTAL, 3))
    # Jaw line: an arc from ear to ear through the chin.
    jaw_angles = np.linspace(-1.25, 1.25, 17)
    points[0:17, 0] = 0.055 * np.cos(jaw_angles) + 0.01
    points[0:17, 1] = 0.075 * np.sin(jaw_angles)
    points[0:17, 2] = -0.055 - 0.025 * np.cos(jaw_angles)
    # Brows: two arcs above the eyes.
    for start, side in ((17, -1.0), (22, 1.0)):
        t = np.linspace(0, 1, 5)
        points[start:start + 5, 0] = 0.075
        points[start:start + 5, 1] = side * (0.018 + 0.032 * t)[::int(side) or 1]
        points[start:start + 5, 2] = 0.035 + 0.008 * np.sin(np.pi * t)
    # Nose: bridge down then nostril row.
    points[27:31, 0] = np.linspace(0.078, 0.092, 4)
    points[27:31, 2] = np.linspace(0.028, -0.005, 4)
    points[31:36, 0] = 0.082
    points[31:36, 1] = np.linspace(-0.016, 0.016, 5)
    points[31:36, 2] = -0.012
    # Eyes: 6-point rings.
    for start, side in ((36, -1.0), (42, 1.0)):
        ring = np.linspace(0, 2 * np.pi, 6, endpoint=False)
        points[start:start + 6, 0] = 0.072
        points[start:start + 6, 1] = side * 0.032 + 0.012 * np.cos(ring)
        points[start:start + 6, 2] = 0.022 + 0.006 * np.sin(ring)
    # Mouth: outer ring (12) + inner ring (8).
    outer = np.linspace(0, 2 * np.pi, 12, endpoint=False)
    points[48:60, 0] = 0.080
    points[48:60, 1] = 0.026 * np.cos(outer)
    points[48:60, 2] = -0.030 + 0.012 * np.sin(outer)
    inner = np.linspace(0, 2 * np.pi, 8, endpoint=False)
    points[60:68, 0] = 0.079
    points[60:68, 1] = 0.016 * np.cos(inner)
    points[60:68, 2] = -0.030 + 0.006 * np.sin(inner)
    return points


def _hand_template(side: float) -> np.ndarray:
    """Canonical rest positions of one 21-point hand (meters).

    ``side`` is -1 for the right hand, +1 for the left; hands rest about
    30 cm below and 20 cm lateral of the head origin.
    """
    points = np.zeros((HandLandmarks.TOTAL, 3))
    wrist = np.array([0.25, side * 0.22, -0.35])
    points[0] = wrist
    finger_spread = np.linspace(-0.04, 0.04, 5)
    for f in range(5):
        base = wrist + np.array([0.07, side * 0.01 + finger_spread[f], 0.02])
        length = 0.09 if f else 0.06  # thumb shorter
        for j in range(4):
            points[1 + f * 4 + j] = base + np.array(
                [length * (j + 1) / 4.0, 0.0, 0.005 * (j + 1)]
            )
    return points


#: Rest-pose templates used by the motion synthesizer and reconstructor.
TEMPLATES: Dict[str, np.ndarray] = {
    "face": _facial_template(),
    "left_hand": _hand_template(+1.0),
    "right_hand": _hand_template(-1.0),
}
