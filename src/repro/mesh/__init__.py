"""Triangle-mesh substrate.

The spatial persona is a 3D mesh of 78,030 triangles (Sec. 4.3), and the
paper's "direct 3D streaming" experiment compresses 70-90K-triangle human
heads with Draco and streams them at 90 FPS.  This package provides:

- :mod:`repro.mesh.model` — the :class:`TriangleMesh` container.
- :mod:`repro.mesh.generate` — parametric head/hand meshes with *exact*
  triangle counts (substituting for Sketchfab downloads and the TrueDepth
  persona enrollment).
- :mod:`repro.mesh.simplify` — vertex-clustering decimation for LOD levels.
- :mod:`repro.mesh.codec` — a Draco-like compressor (quantization + delta +
  LZMA entropy stage) with bitrates in the published range.
"""

from repro.mesh.model import TriangleMesh
from repro.mesh.generate import head_mesh, persona_mesh, sketchfab_head_set
from repro.mesh.simplify import decimate, decimate_to_target
from repro.mesh.codec import DracoLikeCodec, EncodedMesh
from repro.mesh.texture import TextureAtlas, TextureCodec, skin_texture, textured_streaming_mbps
from repro.mesh.io import save_obj, load_obj, save_ply, load_ply
from repro.mesh.metrics import surface_distance, quality_fraction, sample_surface

__all__ = [
    "TriangleMesh",
    "head_mesh",
    "persona_mesh",
    "sketchfab_head_set",
    "decimate",
    "decimate_to_target",
    "DracoLikeCodec",
    "EncodedMesh",
    "TextureAtlas",
    "TextureCodec",
    "skin_texture",
    "textured_streaming_mbps",
    "save_obj",
    "load_obj",
    "save_ply",
    "load_ply",
    "surface_distance",
    "quality_fraction",
    "sample_surface",
]
