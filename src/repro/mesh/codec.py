"""Draco-like mesh compression.

Stand-in for Google Draco in the Sec. 4.3 "direct 3D data streaming"
experiment.  The pipeline mirrors Draco's structure:

1. positions quantized to ``quantization_bits`` over the bounding box
   (Draco's default is 11 bits),
2. delta + zigzag prediction along the vertex order,
3. connectivity delta-encoded over the face list, and
4. an LZMA entropy stage.

The codec is lossless in topology and lossy only through quantization; the
decoder reconstructs positions to within one quantization step.
"""

from __future__ import annotations

import lzma
import struct
from dataclasses import dataclass

import numpy as np

from repro.mesh.model import TriangleMesh

_MAGIC = b"DRCL"
_LZMA_FILTERS = [{"id": lzma.FILTER_LZMA2, "preset": 1}]


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed deltas to unsigned ints (small magnitudes stay small)."""
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_zigzag`."""
    signed = values.astype(np.int64)
    return (signed >> 1) ^ -(signed & 1)


def _pack_uint(values: np.ndarray) -> bytes:
    """Width-adaptive packing: 16-bit when possible, else 32-bit."""
    if len(values) == 0:
        return b"\x02"
    if values.max() < 2**16:
        return b"\x02" + values.astype("<u2").tobytes()
    if values.max() < 2**32:
        return b"\x04" + values.astype("<u4").tobytes()
    return b"\x08" + values.astype("<u8").tobytes()


def _unpack_uint(blob: bytes, count: int) -> np.ndarray:
    width = blob[0]
    dtype = {2: "<u2", 4: "<u4", 8: "<u8"}[width]
    return np.frombuffer(blob[1:1 + count * width], dtype=dtype).astype(np.uint64)


def _compress(data: bytes) -> bytes:
    return lzma.compress(data, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS)


def _decompress(data: bytes) -> bytes:
    return lzma.decompress(data, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS)


@dataclass(frozen=True)
class EncodedMesh:
    """A compressed mesh frame."""

    payload: bytes

    @property
    def byte_size(self) -> int:
        """Compressed size in bytes."""
        return len(self.payload)

    def bitrate_mbps(self, fps: float) -> float:
        """Bandwidth needed to stream one such frame per tick at ``fps``."""
        return self.byte_size * 8.0 * fps / 1e6


class DracoLikeCodec:
    """Quantize + predict + entropy-code triangle meshes."""

    def __init__(self, quantization_bits: int = 11) -> None:
        if not 4 <= quantization_bits <= 24:
            raise ValueError(
                f"quantization_bits must be in [4, 24], got {quantization_bits}"
            )
        self.quantization_bits = quantization_bits

    def encode(self, mesh: TriangleMesh) -> EncodedMesh:
        """Compress ``mesh`` into a self-contained frame."""
        lo, hi = mesh.bounding_box()
        extent = np.maximum(hi - lo, 1e-12)
        levels = (1 << self.quantization_bits) - 1
        quantized = np.round((mesh.vertices - lo) / extent * levels).astype(np.int64)

        deltas = np.diff(quantized, axis=0, prepend=quantized[:1] * 0)
        position_blob = _pack_uint(_zigzag(deltas.reshape(-1)))

        flat_faces = mesh.faces.astype(np.int64).reshape(-1)
        face_deltas = np.diff(flat_faces, prepend=0)
        face_blob = _pack_uint(_zigzag(face_deltas))

        header = _MAGIC + struct.pack(
            "<BII6d",
            self.quantization_bits,
            mesh.vertex_count,
            mesh.triangle_count,
            *lo,
            *hi,
        )
        body_positions = _compress(position_blob)
        body_faces = _compress(face_blob)
        payload = (
            header
            + struct.pack("<II", len(body_positions), len(body_faces))
            + body_positions
            + body_faces
        )
        return EncodedMesh(payload)

    def decode(self, encoded: EncodedMesh) -> TriangleMesh:
        """Reconstruct the mesh from a frame produced by :meth:`encode`.

        Raises:
            ValueError: If the payload is not a frame of this codec.
        """
        payload = encoded.payload
        if payload[:4] != _MAGIC:
            raise ValueError("not a DracoLike frame")
        header_size = 4 + struct.calcsize("<BII6d")
        qbits, n_vertices, n_faces, *bbox = struct.unpack(
            "<BII6d", payload[4:header_size]
        )
        lo = np.asarray(bbox[:3])
        hi = np.asarray(bbox[3:])
        len_pos, len_faces = struct.unpack(
            "<II", payload[header_size:header_size + 8]
        )
        offset = header_size + 8
        position_blob = _decompress(payload[offset:offset + len_pos])
        face_blob = _decompress(payload[offset + len_pos:offset + len_pos + len_faces])

        deltas = _unzigzag(_unpack_uint(position_blob, n_vertices * 3))
        quantized = np.cumsum(deltas.reshape(n_vertices, 3), axis=0)
        levels = (1 << qbits) - 1
        extent = np.maximum(hi - lo, 1e-12)
        vertices = quantized / levels * extent + lo

        face_deltas = _unzigzag(_unpack_uint(face_blob, n_faces * 3))
        faces = np.cumsum(face_deltas).reshape(n_faces, 3).astype(np.int32)
        return TriangleMesh(vertices, faces, name="decoded")

    def max_position_error(self, mesh: TriangleMesh) -> float:
        """Upper bound on per-axis reconstruction error (half a quantum)."""
        lo, hi = mesh.bounding_box()
        extent = float(np.max(hi - lo))
        return extent / ((1 << self.quantization_bits) - 1)
