"""Parametric human-head meshes with exact triangle counts.

Substitutes for two data sources the paper uses:

- the spatial persona mesh captured by the TrueDepth enrollment, which the
  RealityKit tool reports at exactly 78,030 triangles (Sec. 4.3), and
- the five Sketchfab head meshes (70K-90K triangles) used for the Draco
  streaming experiment.

The base shape is a UV sphere radially deformed by a low-frequency "head"
profile (elongation, jaw, nose, cranium); deterministic per-seed detail
noise makes each generated head geometrically distinct the way different
Sketchfab scans are.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro import calibration
from repro.mesh.model import TriangleMesh


def _sphere_grid(n_lat: int, n_lon: int) -> Tuple[np.ndarray, np.ndarray]:
    """UV sphere with exactly ``2 * n_lat * n_lon`` triangles.

    ``n_lat`` interior latitude rings plus two pole vertices; every
    latitude band contributes ``2 * n_lon`` triangles except the two pole
    fans which contribute ``n_lon`` each, totalling ``2 * n_lat * n_lon``.
    """
    if n_lat < 2 or n_lon < 3:
        raise ValueError("need n_lat >= 2 and n_lon >= 3")
    thetas = np.linspace(0.0, np.pi, n_lat + 2)[1:-1]  # exclude poles
    phis = np.linspace(0.0, 2.0 * np.pi, n_lon, endpoint=False)
    theta_grid, phi_grid = np.meshgrid(thetas, phis, indexing="ij")
    x = np.sin(theta_grid) * np.cos(phi_grid)
    y = np.sin(theta_grid) * np.sin(phi_grid)
    z = np.cos(theta_grid)
    ring_vertices = np.stack([x, y, z], axis=-1).reshape(-1, 3)
    north = np.array([[0.0, 0.0, 1.0]])
    south = np.array([[0.0, 0.0, -1.0]])
    vertices = np.concatenate([ring_vertices, north, south])
    north_idx = len(ring_vertices)
    south_idx = north_idx + 1

    faces: List[Tuple[int, int, int]] = []

    def ring(i: int, j: int) -> int:
        return i * n_lon + (j % n_lon)

    for j in range(n_lon):  # north pole fan
        faces.append((north_idx, ring(0, j), ring(0, j + 1)))
    for i in range(n_lat - 1):  # bands between rings: 2 triangles per quad
        for j in range(n_lon):
            a, b = ring(i, j), ring(i, j + 1)
            c, d = ring(i + 1, j), ring(i + 1, j + 1)
            faces.append((a, c, b))
            faces.append((b, c, d))
    for j in range(n_lon):  # south pole fan
        faces.append((south_idx, ring(n_lat - 1, j + 1), ring(n_lat - 1, j)))

    return vertices, np.asarray(faces, dtype=np.int32)


def _split_faces(vertices: np.ndarray, faces: np.ndarray, n_splits: int,
                 rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Centroid-split ``n_splits`` distinct faces; each split adds 2 faces."""
    if n_splits == 0:
        return vertices, faces
    chosen = rng.choice(len(faces), size=n_splits, replace=False)
    new_vertices = [vertices]
    new_faces = list(faces)
    next_index = len(vertices)
    for count, face_index in enumerate(chosen):
        i, j, k = faces[face_index]
        centroid = (vertices[i] + vertices[j] + vertices[k]) / 3.0
        new_vertices.append(centroid[None, :])
        c = next_index + count
        new_faces[face_index] = (i, j, c)
        new_faces.append((j, k, c))
        new_faces.append((k, i, c))
    return (
        np.concatenate(new_vertices),
        np.asarray(new_faces, dtype=np.int32),
    )


def _head_profile(vertices: np.ndarray, seed: int) -> np.ndarray:
    """Radial deformation turning a unit sphere into a head-like shape."""
    x, y, z = vertices[:, 0], vertices[:, 1], vertices[:, 2]
    radius = np.ones(len(vertices))
    radius += 0.18 * z**2                      # elongated cranium
    radius += 0.10 * np.maximum(x, 0.0) ** 3   # face plane pushed forward
    nose = np.exp(-(((y) ** 2 + (z + 0.1) ** 2) / 0.02)) * np.maximum(x, 0.0)
    radius += 0.25 * nose                      # nose bump
    radius -= 0.12 * np.maximum(-z - 0.5, 0.0) # tapered jaw / neck
    rng = np.random.default_rng(seed)
    harmonics = np.zeros(len(vertices))
    for k in range(1, 5):  # per-seed low-frequency identity variation
        amp = 0.02 / k
        phase = rng.uniform(0, 2 * np.pi, size=3)
        harmonics += amp * (
            np.sin(k * np.arctan2(y, x) + phase[0])
            * np.sin(k * np.arccos(np.clip(z, -1, 1)) + phase[1])
        )
    return radius + harmonics


def _scan_like(vertices: np.ndarray, faces: np.ndarray, seed: int,
               shuffle_window: int = 3,
               detail_noise_m: float = 1e-4) -> Tuple[np.ndarray, np.ndarray]:
    """Make a parametric mesh statistically resemble a 3D scan.

    Two properties of scanned meshes (Sketchfab heads, TrueDepth captures)
    matter to a compressor and are absent from a UV-sphere grid: vertex
    order is only *locally* coherent, and the surface carries sub-millimeter
    detail.  A windowed vertex shuffle plus Gaussian surface noise restores
    both; the parameters are calibrated so the Draco-like codec lands in
    the paper's 107.4 +/- 14.1 Mbps range for 70-90K-triangle heads at
    90 FPS (Sec. 4.3).
    """
    rng = np.random.default_rng(seed + 7)
    n = len(vertices)
    perm = np.arange(n)
    for start in range(0, n, shuffle_window):
        segment = perm[start:start + shuffle_window].copy()
        rng.shuffle(segment)
        perm[start:start + shuffle_window] = segment
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n)
    noisy = vertices[perm] + rng.normal(0.0, detail_noise_m, (n, 3))
    return noisy, inverse[faces].astype(np.int32)


def head_mesh(triangle_count: int, seed: int = 0,
              scale_m: float = 0.11, scan_like: bool = True) -> TriangleMesh:
    """A head-shaped mesh with exactly ``triangle_count`` triangles.

    Args:
        triangle_count: Exact number of triangles (must be >= 24 and even
            counts are produced natively; odd counts raise).
        seed: Identity variation seed.
        scale_m: Nominal head radius in meters (~0.11 m is human scale).
        scan_like: Apply the scan-statistics transform (see
            :func:`_scan_like`); disable for tests that need grid order.
    """
    if triangle_count < 24:
        raise ValueError(f"triangle_count too small: {triangle_count}")
    if triangle_count % 2:
        raise ValueError("triangle_count must be even for a closed UV sphere")
    half = triangle_count // 2
    n_lon = max(3, int(np.sqrt(half)))
    n_lat = max(2, half // n_lon)
    base = 2 * n_lat * n_lon
    while base > triangle_count:
        n_lat -= 1
        base = 2 * n_lat * n_lon
    remainder = triangle_count - base
    vertices, faces = _sphere_grid(n_lat, n_lon)
    rng = np.random.default_rng(seed + 1)
    vertices, faces = _split_faces(vertices, faces, remainder // 2, rng)
    # Deform radially into a head; splits inherit the deformation smoothly
    # because the centroid points sit near the sphere surface already.
    norms = np.linalg.norm(vertices, axis=1, keepdims=True)
    unit = vertices / np.maximum(norms, 1e-12)
    radius = _head_profile(unit, seed)
    deformed = unit * radius[:, None] * scale_m
    if scan_like:
        deformed, faces = _scan_like(deformed, faces, seed)
    mesh = TriangleMesh(deformed, faces, name=f"head-{triangle_count}-s{seed}")
    if mesh.triangle_count != triangle_count:
        raise AssertionError(
            f"generator produced {mesh.triangle_count} != {triangle_count}"
        )
    return mesh


def persona_mesh(seed: int = 0) -> TriangleMesh:
    """The spatial persona mesh: exactly 78,030 triangles (Sec. 4.3)."""
    mesh = head_mesh(calibration.PERSONA_TRIANGLES, seed=seed)
    mesh.name = f"spatial-persona-s{seed}"
    return mesh


def sketchfab_head_set(seed: int = 0) -> List[TriangleMesh]:
    """Five head meshes spanning ~70K to ~90K triangles (Sec. 4.3).

    Stand-ins for the five Sketchfab human-head downloads used in the Draco
    streaming experiment.
    """
    low, high = calibration.SKETCHFAB_HEAD_TRIANGLE_RANGE
    counts = np.linspace(low, high, 5).astype(int)
    counts += counts % 2  # keep them even for the generator
    return [head_mesh(int(c), seed=seed + i) for i, c in enumerate(counts)]
