"""Mesh file I/O: Wavefront OBJ (text) and PLY (binary little-endian).

Lets users round-trip meshes with external tools — the role Sketchfab
downloads played in the paper's Sec. 4.3 experiment.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.mesh.model import TriangleMesh

PathLike = Union[str, Path]


def save_obj(mesh: TriangleMesh, path: PathLike) -> None:
    """Write a mesh as Wavefront OBJ (1-indexed faces)."""
    lines = [f"# {mesh.name}: {mesh.vertex_count} vertices, "
             f"{mesh.triangle_count} triangles"]
    for v in mesh.vertices:
        lines.append(f"v {v[0]:.9g} {v[1]:.9g} {v[2]:.9g}")
    for f in mesh.faces:
        lines.append(f"f {f[0] + 1} {f[1] + 1} {f[2] + 1}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_obj(path: PathLike) -> TriangleMesh:
    """Read a (triangulated) Wavefront OBJ.

    Supports ``v x y z`` and ``f a b c`` records, with the usual
    ``a/b/c``-style index suffixes ignored.

    Raises:
        ValueError: On non-triangular faces or malformed records.
    """
    vertices = []
    faces = []
    for line_no, line in enumerate(Path(path).read_text().splitlines(), 1):
        parts = line.split()
        if not parts or parts[0].startswith("#"):
            continue
        if parts[0] == "v":
            if len(parts) < 4:
                raise ValueError(f"line {line_no}: malformed vertex")
            vertices.append([float(x) for x in parts[1:4]])
        elif parts[0] == "f":
            if len(parts) != 4:
                raise ValueError(
                    f"line {line_no}: only triangles supported"
                )
            faces.append([
                int(token.split("/")[0]) - 1 for token in parts[1:4]
            ])
    name = Path(path).stem
    return TriangleMesh(np.asarray(vertices), np.asarray(faces, dtype=np.int32),
                        name=name)


_PLY_HEADER = """ply
format binary_little_endian 1.0
comment {name}
element vertex {nv}
property float x
property float y
property float z
element face {nf}
property list uchar int vertex_indices
end_header
"""


def save_ply(mesh: TriangleMesh, path: PathLike) -> None:
    """Write a mesh as binary little-endian PLY."""
    header = _PLY_HEADER.format(
        name=mesh.name, nv=mesh.vertex_count, nf=mesh.triangle_count
    ).encode("ascii")
    body = mesh.vertices.astype("<f4").tobytes()
    face_records = bytearray()
    for f in mesh.faces:
        face_records += struct.pack("<Biii", 3, int(f[0]), int(f[1]), int(f[2]))
    Path(path).write_bytes(header + body + bytes(face_records))


def load_ply(path: PathLike) -> TriangleMesh:
    """Read a binary little-endian PLY written by :func:`save_ply`.

    Raises:
        ValueError: On headers this minimal reader does not understand.
    """
    data = Path(path).read_bytes()
    end = data.find(b"end_header\n")
    if end < 0:
        raise ValueError("missing PLY end_header")
    header = data[:end].decode("ascii", errors="replace")
    if "binary_little_endian" not in header:
        raise ValueError("only binary little-endian PLY supported")
    nv = nf = None
    for line in header.splitlines():
        parts = line.split()
        if parts[:2] == ["element", "vertex"]:
            nv = int(parts[2])
        elif parts[:2] == ["element", "face"]:
            nf = int(parts[2])
    if nv is None or nf is None:
        raise ValueError("PLY header missing element counts")
    offset = end + len(b"end_header\n")
    vertices = np.frombuffer(
        data, dtype="<f4", count=nv * 3, offset=offset
    ).reshape(nv, 3).astype(np.float64)
    offset += nv * 12
    faces = np.zeros((nf, 3), dtype=np.int32)
    for i in range(nf):
        count = data[offset]
        if count != 3:
            raise ValueError("only triangle faces supported")
        faces[i] = struct.unpack_from("<iii", data, offset + 1)
        offset += 13
    return TriangleMesh(vertices, faces, name=Path(path).stem)
