"""Mesh quality metrics: how much do decimation and compression hurt?

The paper uses triangle count as its visual-quality proxy (Sec. 3.2).
These metrics put numbers behind that proxy: sampled surface distance
(a one-sided Hausdorff/Chamfer estimate) and bounding-box-normalized
error, so LOD levels and codec quantization settings can be compared on
actual geometric deviation rather than triangle counts alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.mesh.model import TriangleMesh


def sample_surface(mesh: TriangleMesh, n_samples: int,
                   seed: int = 0) -> np.ndarray:
    """Uniform-by-area random points on the mesh surface.

    Raises:
        ValueError: For non-positive sample counts or empty meshes.
    """
    if n_samples < 1:
        raise ValueError("need at least one sample")
    if mesh.triangle_count == 0:
        raise ValueError("cannot sample an empty mesh")
    rng = np.random.default_rng(seed)
    areas = mesh.face_areas()
    total = areas.sum()
    if total <= 0:
        raise ValueError("mesh has zero surface area")
    chosen = rng.choice(len(areas), size=n_samples, p=areas / total)
    a = mesh.vertices[mesh.faces[chosen, 0]]
    b = mesh.vertices[mesh.faces[chosen, 1]]
    c = mesh.vertices[mesh.faces[chosen, 2]]
    # Uniform barycentric sampling.
    r1 = np.sqrt(rng.random((n_samples, 1)))
    r2 = rng.random((n_samples, 1))
    return (1 - r1) * a + r1 * (1 - r2) * b + r1 * r2 * c


@dataclass(frozen=True)
class SurfaceDistance:
    """Sampled surface-to-surface distance statistics (meters)."""

    mean: float
    p95: float
    max: float
    normalized_mean: float  # mean / bbox diagonal of the reference


def surface_distance(reference: TriangleMesh, candidate: TriangleMesh,
                     n_samples: int = 4000, seed: int = 0) -> SurfaceDistance:
    """One-sided sampled distance from ``reference`` toward ``candidate``.

    Samples the reference surface and measures nearest-vertex distance on
    the candidate — an upper bound on point-to-surface distance that is
    cheap and monotone in actual deviation, which is all LOD comparisons
    need.
    """
    points = sample_surface(reference, n_samples, seed)
    tree = cKDTree(candidate.vertices)
    distances, _ = tree.query(points, k=1)
    lo, hi = reference.bounding_box()
    diagonal = float(np.linalg.norm(hi - lo))
    return SurfaceDistance(
        mean=float(distances.mean()),
        p95=float(np.percentile(distances, 95)),
        max=float(distances.max()),
        normalized_mean=float(distances.mean() / max(diagonal, 1e-12)),
    )


def quality_fraction(reference: TriangleMesh, candidate: TriangleMesh,
                     n_samples: int = 2000, seed: int = 0) -> float:
    """A [0, 1] quality score: 1 at zero deviation, decaying with error.

    The nearest-vertex estimator has a resolution floor of roughly one
    edge length (triangle-interior samples are never exactly at a
    vertex), so the reference-to-itself distance is measured as a
    baseline and subtracted; only the *excess* deviation is scored.
    Calibrated so ~1% of the bounding-box diagonal of excess deviation
    costs about half the score.
    """
    distance = surface_distance(reference, candidate, n_samples, seed)
    baseline = surface_distance(reference, reference, n_samples, seed)
    excess = max(0.0, distance.normalized_mean - baseline.normalized_mean)
    return float(np.exp(-excess / 0.01 * 0.69))
