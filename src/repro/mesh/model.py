"""Triangle mesh container and geometric queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class TriangleMesh:
    """An indexed triangle mesh.

    Attributes:
        vertices: ``(V, 3)`` float64 array of positions (meters).
        faces: ``(F, 3)`` int32 array of vertex indices, counter-clockwise.
        name: Optional label for provenance.
    """

    vertices: np.ndarray
    faces: np.ndarray
    name: str = "mesh"

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        self.faces = np.asarray(self.faces, dtype=np.int32)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError(f"vertices must be (V, 3), got {self.vertices.shape}")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise ValueError(f"faces must be (F, 3), got {self.faces.shape}")
        if len(self.faces) and (
            self.faces.min() < 0 or self.faces.max() >= len(self.vertices)
        ):
            raise ValueError("face indices out of range")

    @property
    def triangle_count(self) -> int:
        """Number of triangles — the paper's visual-quality metric (Sec. 3.2)."""
        return len(self.faces)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """(min_corner, max_corner) of the axis-aligned bounding box."""
        if not len(self.vertices):
            raise ValueError("empty mesh has no bounding box")
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def centroid(self) -> np.ndarray:
        """Mean vertex position."""
        return self.vertices.mean(axis=0)

    def face_areas(self) -> np.ndarray:
        """Per-triangle areas."""
        a = self.vertices[self.faces[:, 0]]
        b = self.vertices[self.faces[:, 1]]
        c = self.vertices[self.faces[:, 2]]
        return 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)

    def surface_area(self) -> float:
        """Total surface area."""
        return float(self.face_areas().sum())

    def degenerate_face_count(self, eps: float = 1e-12) -> int:
        """Triangles with (numerically) zero area."""
        return int((self.face_areas() <= eps).sum())

    def translated(self, offset: np.ndarray) -> "TriangleMesh":
        """A copy shifted by ``offset``."""
        return TriangleMesh(self.vertices + np.asarray(offset, dtype=np.float64),
                            self.faces.copy(), name=self.name)

    def scaled(self, factor: float) -> "TriangleMesh":
        """A copy uniformly scaled about the origin."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return TriangleMesh(self.vertices * factor, self.faces.copy(), name=self.name)

    def copy(self) -> "TriangleMesh":
        """A deep copy."""
        return TriangleMesh(self.vertices.copy(), self.faces.copy(), name=self.name)
