"""Mesh decimation by vertex clustering.

Used to build the lower-quality level-of-detail meshes that the rendering
pipeline switches to under foveated and distance-aware optimization
(Sec. 4.4).  Vertex clustering snaps vertices to a uniform grid and merges
every vertex in a cell, collapsing the triangles that become degenerate —
fast, deterministic, and monotone in the grid resolution.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.model import TriangleMesh


def decimate(mesh: TriangleMesh, cells_per_axis: int) -> TriangleMesh:
    """Cluster vertices onto a ``cells_per_axis``³ grid over the bbox.

    Returns a new mesh; triangles whose three corners land in fewer than
    three distinct cells are removed.
    """
    if cells_per_axis < 1:
        raise ValueError(f"cells_per_axis must be >= 1, got {cells_per_axis}")
    lo, hi = mesh.bounding_box()
    extent = np.maximum(hi - lo, 1e-12)
    cell = np.floor((mesh.vertices - lo) / extent * cells_per_axis)
    cell = np.clip(cell, 0, cells_per_axis - 1).astype(np.int64)
    keys = (
        cell[:, 0] * cells_per_axis * cells_per_axis
        + cell[:, 1] * cells_per_axis
        + cell[:, 2]
    )
    unique_keys, inverse = np.unique(keys, return_inverse=True)

    # Representative position of each cluster: mean of member vertices.
    sums = np.zeros((len(unique_keys), 3))
    np.add.at(sums, inverse, mesh.vertices)
    counts = np.bincount(inverse, minlength=len(unique_keys)).astype(float)
    new_vertices = sums / counts[:, None]

    remapped = inverse[mesh.faces]
    keep = (
        (remapped[:, 0] != remapped[:, 1])
        & (remapped[:, 1] != remapped[:, 2])
        & (remapped[:, 0] != remapped[:, 2])
    )
    new_faces = remapped[keep].astype(np.int32)
    return TriangleMesh(new_vertices, new_faces,
                        name=f"{mesh.name}-dec{cells_per_axis}")


def decimate_to_target(
    mesh: TriangleMesh,
    target_triangles: int,
    tolerance: float = 0.08,
    max_iterations: int = 24,
) -> TriangleMesh:
    """Binary-search the grid resolution for a target triangle count.

    Returns the decimated mesh whose triangle count is closest to
    ``target_triangles``; raises if even the finest probe stays outside
    ``tolerance`` *and* no bracketing is possible.
    """
    if target_triangles >= mesh.triangle_count:
        return mesh.copy()
    if target_triangles < 4:
        raise ValueError(f"target too small: {target_triangles}")

    lo_res, hi_res = 2, 2048
    best = None
    best_err = float("inf")
    for _ in range(max_iterations):
        mid = (lo_res + hi_res) // 2
        candidate = decimate(mesh, mid)
        err = abs(candidate.triangle_count - target_triangles)
        if err < best_err:
            best, best_err = candidate, err
        if candidate.triangle_count < target_triangles:
            lo_res = mid + 1
        else:
            hi_res = mid - 1
        if lo_res > hi_res:
            break
    assert best is not None
    relative_err = best_err / target_triangles
    if relative_err > tolerance:
        raise RuntimeError(
            f"could not reach {target_triangles} triangles "
            f"(best {best.triangle_count}, rel err {relative_err:.2%})"
        )
    return best
