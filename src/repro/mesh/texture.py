"""Texture atlas model for textured-mesh streaming cost.

Sec. 4.3 measures Draco streaming at ~107 Mbps "even without texture
(i.e., the surface details of 3D mesh)" — the realistic textured case is
strictly worse.  This module quantifies that caveat: a synthetic skin-like
texture atlas, a DCT-quantization compressor standing in for JPEG, and a
streaming-cost helper that adds the texture bytes to the geometry bytes.

Only the texture's *compressed size behaviour* matters here (resolution,
detail energy, quality factor), so the codec is a real-but-minimal
transform coder: 8x8 DCT, JPEG-style quantization, LZMA entropy stage.
"""

from __future__ import annotations

from dataclasses import dataclass
import lzma

import numpy as np
from scipy.fftpack import dctn, idctn

_LZMA_FILTERS = [{"id": lzma.FILTER_LZMA2, "preset": 1}]


@dataclass
class TextureAtlas:
    """A square single-channel-per-plane texture atlas (YCbCr-like).

    Attributes:
        pixels: ``(H, W, 3)`` float array in [0, 1].
    """

    pixels: np.ndarray

    def __post_init__(self) -> None:
        self.pixels = np.asarray(self.pixels, dtype=np.float64)
        if self.pixels.ndim != 3 or self.pixels.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3), got {self.pixels.shape}")
        if self.pixels.shape[0] % 8 or self.pixels.shape[1] % 8:
            raise ValueError("texture dimensions must be multiples of 8")

    @property
    def resolution(self) -> int:
        """Height (== width for the synthetic atlases)."""
        return self.pixels.shape[0]


def skin_texture(resolution: int = 512, seed: int = 0) -> TextureAtlas:
    """A synthetic skin-like atlas: smooth base tone + pore-scale detail.

    Raises:
        ValueError: For resolutions that are not positive multiples of 8.
    """
    if resolution <= 0 or resolution % 8:
        raise ValueError("resolution must be a positive multiple of 8")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:resolution, 0:resolution] / resolution
    base = 0.62 + 0.08 * np.sin(2 * np.pi * x) * np.cos(np.pi * y)
    detail = rng.normal(0.0, 0.02, (resolution, resolution))
    # Cheap low-pass: average shifted copies to make pore-scale blobs.
    detail = (detail + np.roll(detail, 1, 0) + np.roll(detail, 1, 1)) / 3.0
    luma = np.clip(base + detail, 0.0, 1.0)
    cb = np.full_like(luma, 0.45) + 0.01 * detail
    cr = np.full_like(luma, 0.60) + 0.01 * detail
    return TextureAtlas(np.stack([luma, cb, cr], axis=-1))


_BASE_QUANT = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)


class TextureCodec:
    """JPEG-like transform coder: 8x8 DCT + quantization + LZMA.

    Args:
        quality: 1-100, higher is better; scales the quantization table
            the way libjpeg does.
    """

    def __init__(self, quality: int = 75) -> None:
        if not 1 <= quality <= 100:
            raise ValueError(f"quality must be in [1, 100], got {quality}")
        self.quality = quality
        scale = 5000 / quality if quality < 50 else 200 - 2 * quality
        self._quant = np.maximum(1.0, np.floor(_BASE_QUANT * scale / 100 + 0.5))

    def _blocks(self, plane: np.ndarray) -> np.ndarray:
        h, w = plane.shape
        return (
            plane.reshape(h // 8, 8, w // 8, 8)
            .transpose(0, 2, 1, 3)
            .reshape(-1, 8, 8)
        )

    def encode(self, atlas: TextureAtlas) -> bytes:
        """Compress the atlas; returns the full payload bytes."""
        coded = []
        for c in range(3):
            plane = atlas.pixels[:, :, c] * 255.0 - 128.0
            blocks = self._blocks(plane)
            coeffs = dctn(blocks, axes=(1, 2), norm="ortho")
            quantized = np.round(coeffs / self._quant).astype(np.int16)
            coded.append(quantized.tobytes())
        header = atlas.resolution.to_bytes(4, "little") + bytes([self.quality])
        return header + lzma.compress(
            b"".join(coded), format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS
        )

    def decode(self, payload: bytes) -> TextureAtlas:
        """Reconstruct the (lossy) atlas.

        Raises:
            ValueError: On truncated payloads.
        """
        if len(payload) < 5:
            raise ValueError("truncated texture payload")
        resolution = int.from_bytes(payload[:4], "little")
        raw = lzma.decompress(
            payload[5:], format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS
        )
        per_plane = (resolution // 8) ** 2 * 64 * 2
        if len(raw) < 3 * per_plane:
            raise ValueError("truncated texture data")
        planes = []
        n_blocks_side = resolution // 8
        for c in range(3):
            quantized = np.frombuffer(
                raw, dtype=np.int16, count=(resolution // 8) ** 2 * 64,
                offset=c * per_plane,
            ).reshape(-1, 8, 8).astype(np.float64)
            coeffs = quantized * self._quant
            blocks = idctn(coeffs, axes=(1, 2), norm="ortho")
            plane = (
                blocks.reshape(n_blocks_side, n_blocks_side, 8, 8)
                .transpose(0, 2, 1, 3)
                .reshape(resolution, resolution)
            )
            planes.append(np.clip((plane + 128.0) / 255.0, 0.0, 1.0))
        return TextureAtlas(np.stack(planes, axis=-1))


def textured_streaming_mbps(
    geometry_bytes: float,
    texture_bytes: float,
    fps: float,
    texture_refresh_fraction: float = 1.0,
) -> float:
    """Streaming cost of geometry + texture at ``fps``.

    ``texture_refresh_fraction`` < 1 models delta-updated textures (only
    part of the atlas changes per frame).
    """
    if not 0.0 <= texture_refresh_fraction <= 1.0:
        raise ValueError("refresh fraction must be in [0, 1]")
    per_frame = geometry_bytes + texture_bytes * texture_refresh_fraction
    return per_frame * 8.0 * fps / 1e6
