"""Discrete-event network simulator.

This package replaces the paper's physical testbed (two WiFi APs, Wireshark
captures, Linux ``tc``) with a deterministic discrete-event simulation:

- :mod:`repro.netsim.engine` — event scheduler and simulated clock.
- :mod:`repro.netsim.packet` — byte-accurate packets (IP/UDP/TCP framing).
- :mod:`repro.netsim.link` — rate/propagation/queue link model.
- :mod:`repro.netsim.node` — hosts with port bindings.
- :mod:`repro.netsim.network` — wires hosts together using the geographic
  path model for core propagation delays.
- :mod:`repro.netsim.wifi` — the testbed's WiFi access points.
- :mod:`repro.netsim.shaper` — ``tc``-style impairments (delay, rate, loss).
- :mod:`repro.netsim.capture` — Wireshark-style packet captures.
- :mod:`repro.netsim.sfu` — selective-forwarding relay servers.
- :mod:`repro.netsim.batch` — struct-of-arrays cohort engine advancing
  many independent sessions through one event loop.
"""

from repro.netsim.batch import BatchSimulator, LaneSimulator
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet, IPPROTO_UDP, IPPROTO_TCP
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.network import Network
from repro.netsim.wifi import WiFiAccessPoint
from repro.netsim.shaper import TrafficShaper
from repro.netsim.capture import PacketCapture, CapturedPacket, Direction
from repro.netsim.sfu import SelectiveForwardingUnit
from repro.netsim.trace import save_trace, load_trace
from repro.netsim.crosstraffic import BulkTransferSource, OnOffBurstSource

__all__ = [
    "Simulator",
    "BatchSimulator",
    "LaneSimulator",
    "Packet",
    "IPPROTO_UDP",
    "IPPROTO_TCP",
    "Link",
    "Host",
    "Network",
    "WiFiAccessPoint",
    "TrafficShaper",
    "PacketCapture",
    "CapturedPacket",
    "Direction",
    "SelectiveForwardingUnit",
    "save_trace",
    "load_trace",
    "BulkTransferSource",
    "OnOffBurstSource",
]
