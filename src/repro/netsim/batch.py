"""Vectorized multi-session cohort engine (struct-of-arrays event loop).

One :class:`BatchSimulator` advances *N independent sessions* ("lanes")
through a single event loop.  The scalar :class:`~repro.netsim.engine.
Simulator` keeps a binary heap and pays one heappush/heappop per event;
the batch engine instead keeps its queue as **struct-of-arrays** — one
``float64`` time array, one ``int64`` sequence array, and aligned callback
/ handle lists — and restores order with a single vectorized
``np.lexsort`` whenever freshly scheduled events would fire before the
sorted arena's front.  Scheduling is an O(1) list append; sorting is
amortized, batched, and runs in C.

Equivalence contract (enforced by ``tests/test_batch_equivalence.py``):

* Events fire globally in ``(time, seq)`` order, exactly like the scalar
  engine.  Because sequence numbers increase monotonically with
  scheduling, the projection of that order onto any one lane equals the
  scalar engine's per-session ``(time, insertion-order)`` order — so a
  session driven through a :class:`LaneSimulator` view observes *bit
  identical* behaviour to the same session on its own scalar
  ``Simulator``.  Lanes share the clock but no mutable state, so a
  cohort of N sessions equals N independent scalar runs.
* Built-in counters (scheduled / fired / cancelled, queue high-water)
  are attributed **per lane**, not pooled into one global blob, and the
  aggregate equals the fold of the per-lane counters.

On top of the exact event loop, the module provides the numpy kernels
the cohort fast path and ``benchmarks/bench_batch_engine.py`` use to
advance whole cohorts without per-packet Python callbacks:

* :func:`drop_tail_departures` — the scalar :class:`~repro.netsim.link.
  Link` admission/serialization recurrence over arrays (bit-exact,
  including the backlog int truncation);
* :func:`fifo_departures` — fully vectorized Lindley recurrence for
  uncontended/work-conserving FIFOs (documented fp tolerance: the
  prefix-max association differs from the sequential recurrence by a
  few ulps when the queue is busy);
* :func:`windowed_lane_bytes` — per-(lane, window) byte totals in one
  ``np.bincount``, the axis-wise reduction behind cohort throughput
  windows.

Cancellation is lazy exactly like the scalar engine, with the same
compaction policy: when cancelled entries outnumber live ones the arena
and pending buffers are merged and filtered in one vectorized pass, so
fault-heavy cohorts cannot grow the queue without bound.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.engine import (
    COMPACT_MIN_QUEUE,
    EventHandle,
    schedule_periodic,
)
from repro.obs import metrics as obs_metrics


class BatchHandle(EventHandle):
    """A cancellable event scheduled on one lane of a batch engine."""

    __slots__ = ("lane",)

    def __init__(self, time: float, seq: int, lane: int) -> None:
        super().__init__(time, seq)
        self.lane = lane


class CohortHandle(EventHandle):
    """One scheduled event whose firing is attributed to many lanes.

    Used by vectorized cohort stages: a single callback advances a whole
    array of sessions, and the engine books one fired event *per lane*
    so per-session accounting stays truthful.
    """

    __slots__ = ("lanes",)

    def __init__(self, time: float, seq: int, lanes: np.ndarray) -> None:
        super().__init__(time, seq)
        self.lanes = lanes


class BatchSimulator:
    """Shared event loop advancing N independent lanes (sessions).

    The queue is split into a time-sorted *arena* (struct-of-arrays,
    walked by a cursor) and an unsorted *pending* buffer fed by
    ``schedule``.  The loop fires from the arena and merges the pending
    buffer in — one vectorized lexsort — only when a pending event would
    fire before the arena front.  For media workloads, where callbacks
    schedule a little ahead of now, this batches thousands of events per
    sort.
    """

    def __init__(self, n_lanes: int = 0) -> None:
        self._now = 0.0
        self._seq = 0
        self._running = False
        # Sorted arena (struct of arrays) + walk cursor.
        self._at = np.empty(0, dtype=np.float64)
        self._as = np.empty(0, dtype=np.int64)
        self._ah: List[EventHandle] = []
        self._acb: List[Callable[[], Any]] = []
        self._cursor = 0
        # Unsorted pending buffer (plain appends; merged lazily).
        self._pt: List[float] = []
        self._ps: List[int] = []
        self._ph: List[EventHandle] = []
        self._pcb: List[Callable[[], Any]] = []
        self._pmin_time = float("inf")
        self._cancelled_pending = 0
        # Per-lane attribution (satellite: counters are not one global
        # blob in batch mode).
        self._scheduled: List[int] = []
        self._fired: List[int] = []
        self._cancelled: List[int] = []
        self._lane_high_water: List[int] = []
        self._lane_probes: Dict[int, Callable[[str, float, EventHandle], Any]] = {}
        self.merges = 0
        self.queue_high_water = 0
        self._published: Dict[str, float] = {}
        for _ in range(n_lanes):
            self.add_lane()

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------

    @property
    def n_lanes(self) -> int:
        """Number of lanes (sessions) hosted by this engine."""
        return len(self._scheduled)

    def add_lane(self) -> "LaneSimulator":
        """Add one lane and return its scalar-compatible view."""
        lane = len(self._scheduled)
        self._scheduled.append(0)
        self._fired.append(0)
        self._cancelled.append(0)
        self._lane_high_water.append(0)
        return LaneSimulator(self, lane)

    def lane(self, index: int) -> "LaneSimulator":
        """The view of an existing lane."""
        if not 0 <= index < self.n_lanes:
            raise IndexError(f"no lane {index} (have {self.n_lanes})")
        return LaneSimulator(self, index)

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds (shared by all lanes)."""
        return self._now

    def schedule(self, lane: int, delay: float,
                 callback: Callable[[], Any]) -> BatchHandle:
        """Run ``callback`` on ``lane``, ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(lane, self._now + delay, callback)

    def schedule_at(self, lane: int, time: float,
                    callback: Callable[[], Any]) -> BatchHandle:
        """Run ``callback`` on ``lane`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at "
                f"{self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = BatchHandle(time, seq, lane)
        self._append_pending(time, seq, handle, callback)
        self._scheduled[lane] += 1
        live = (self._scheduled[lane] - self._fired[lane]
                - self._cancelled[lane])
        if live > self._lane_high_water[lane]:
            self._lane_high_water[lane] = live
        if self._lane_probes:
            probe = self._lane_probes.get(lane)
            if probe is not None:
                probe("schedule", time, handle)
        return handle

    def schedule_cohort(self, delay: float, lanes: Sequence[int],
                        callback: Callable[[], Any]) -> CohortHandle:
        """Schedule one vectorized event attributed to many lanes.

        The callback runs once; scheduled/fired counters advance on every
        listed lane, so per-session accounting folds correctly even when
        a whole cohort advances in one struct-of-arrays step.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        lanes_arr = np.asarray(lanes, dtype=np.int64)
        if lanes_arr.size == 0:
            raise ValueError("a cohort event needs at least one lane")
        if lanes_arr.min() < 0 or lanes_arr.max() >= self.n_lanes:
            raise IndexError("cohort lane out of range")
        seq = self._seq
        self._seq = seq + 1
        handle = CohortHandle(time, seq, lanes_arr)
        self._append_pending(time, seq, handle, callback)
        for lane in lanes_arr.tolist():  # tolist: cheap Python ints
            self._scheduled[lane] += 1
        return handle

    def _append_pending(self, time: float, seq: int, handle: EventHandle,
                        callback: Callable[[], Any]) -> None:
        self._pt.append(time)
        self._ps.append(seq)
        self._ph.append(handle)
        self._pcb.append(callback)
        if time < self._pmin_time:
            self._pmin_time = time
        depth = (len(self._at) - self._cursor) + len(self._pt)
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def cancel(self, handle: EventHandle) -> bool:
        """Revoke a scheduled event before it fires (lazy, O(1))."""
        if not handle.active:
            return False
        handle._cancelled = True
        self._cancelled_pending += 1
        if isinstance(handle, CohortHandle):
            for lane in handle.lanes.tolist():
                self._cancelled[lane] += 1
        else:
            lane = handle.lane  # type: ignore[attr-defined]
            self._cancelled[lane] += 1
            if self._lane_probes:
                probe = self._lane_probes.get(lane)
                if probe is not None:
                    probe("cancel", handle.time, handle)
        depth = (len(self._at) - self._cursor) + len(self._pt)
        if (self._cancelled_pending * 2 > depth
                and depth >= COMPACT_MIN_QUEUE):
            self._merge()
        return True

    # ------------------------------------------------------------------
    # The struct-of-arrays queue
    # ------------------------------------------------------------------

    def _merge(self) -> None:
        """Fold the pending buffer into the arena with one lexsort.

        Also drops every cancelled entry (this doubles as the compaction
        pass), so ordering keys are untouched and firing order is exactly
        what lazy popping would have produced.
        """
        at = self._at[self._cursor:]
        asq = self._as[self._cursor:]
        ah = self._ah[self._cursor:]
        acb = self._acb[self._cursor:]
        if self._pt:
            at = np.concatenate([at, np.asarray(self._pt, dtype=np.float64)])
            asq = np.concatenate([asq, np.asarray(self._ps, dtype=np.int64)])
            ah = ah + self._ph
            acb = acb + self._pcb
            self._pt, self._ps, self._ph, self._pcb = [], [], [], []
            self._pmin_time = float("inf")
        if self._cancelled_pending:
            live = np.fromiter(
                (not h._cancelled for h in ah), dtype=bool, count=len(ah)
            )
            if not live.all():
                keep = np.flatnonzero(live)
                at = at[keep]
                asq = asq[keep]
                ah = [ah[i] for i in keep]
                acb = [acb[i] for i in keep]
            self._cancelled_pending = 0
        order = np.lexsort((asq, at))
        self._at = at[order]
        self._as = asq[order]
        self._ah = [ah[i] for i in order]
        self._acb = [acb[i] for i in order]
        self._cursor = 0
        self.merges += 1

    def run(self, until: Optional[float] = None) -> None:
        """Fire events in global ``(time, seq)`` order.

        Semantics mirror :meth:`repro.netsim.engine.Simulator.run`: with
        ``until`` the clock stops there and later events stay queued;
        without it the queue drains completely.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run until {until:.6f}, clock already at "
                f"{self._now:.6f}"
            )
        self._running = True
        probes = self._lane_probes
        try:
            while True:
                if self._cursor >= len(self._at):
                    if not self._pt:
                        break
                    self._merge()
                    continue
                if self._pt and self._pmin_time < self._at[self._cursor]:
                    self._merge()
                    continue
                handle = self._ah[self._cursor]
                if handle._cancelled:
                    self._cursor += 1
                    self._cancelled_pending -= 1
                    continue
                time = float(self._at[self._cursor])
                if until is not None and time > until:
                    break
                callback = self._acb[self._cursor]
                self._cursor += 1
                self._now = time
                handle._fired = True
                if isinstance(handle, CohortHandle):
                    for lane in handle.lanes.tolist():
                        self._fired[lane] += 1
                else:
                    lane = handle.lane  # type: ignore[attr-defined]
                    self._fired[lane] += 1
                    if probes:
                        probe = probes.get(lane)
                        if probe is not None:
                            probe("fire", time, handle)
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._publish_metrics()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def events_scheduled(self) -> int:
        """Total events scheduled across all lanes."""
        return sum(self._scheduled)

    @property
    def events_fired(self) -> int:
        """Total callbacks fired across all lanes."""
        return sum(self._fired)

    @property
    def events_cancelled(self) -> int:
        """Total cancellations across all lanes."""
        return sum(self._cancelled)

    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued, all lanes."""
        return ((len(self._at) - self._cursor) + len(self._pt)
                - self._cancelled_pending)

    def lane_stats(self, lane: int) -> Dict[str, float]:
        """One lane's counters — same keys as ``Simulator.stats()``."""
        return {
            "events_scheduled": self._scheduled[lane],
            "events_fired": self._fired[lane],
            "events_cancelled": self._cancelled[lane],
            "heap_compactions": self.merges,
            "queue_high_water": self._lane_high_water[lane],
            "sim_time_s": self._now,
        }

    def stats(self) -> Dict[str, float]:
        """Aggregate counters (the fold of every lane's counters)."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_fired": self.events_fired,
            "events_cancelled": self.events_cancelled,
            "heap_compactions": self.merges,
            "queue_high_water": self.queue_high_water,
            "lanes": self.n_lanes,
            "sim_time_s": self._now,
        }

    def _publish_metrics(self) -> None:
        """Flush counter deltas to the process metrics registry."""
        totals = {
            "netsim.batch.events_scheduled": self.events_scheduled,
            "netsim.batch.events_fired": self.events_fired,
            "netsim.batch.events_cancelled": self.events_cancelled,
            "netsim.batch.merges": self.merges,
            "netsim.batch.sim_time_s": self._now,
        }
        published = self._published
        for name, total in totals.items():
            moved = total - published.get(name, 0)
            if moved:
                obs_metrics.counter(name).inc(moved)
        self._published = totals
        obs_metrics.gauge("netsim.batch.lanes").set_max(self.n_lanes)
        obs_metrics.gauge("netsim.batch.queue_high_water").set_max(
            self.queue_high_water
        )


class LaneSimulator:
    """One lane's scalar-compatible view of a :class:`BatchSimulator`.

    Implements the :class:`~repro.netsim.engine.Simulator` surface —
    ``now``, ``schedule``/``schedule_at``/``schedule_every``, ``cancel``,
    ``run``, counters, ``stats()`` — so existing session machinery runs
    on a shared batch engine unchanged.  ``run`` advances the *whole*
    batch; calling it again for further lanes of the same cohort is a
    no-op because the shared clock has already reached ``until``.
    """

    __slots__ = ("_batch", "_lane")

    def __init__(self, batch: BatchSimulator, lane: int) -> None:
        self._batch = batch
        self._lane = lane

    @property
    def batch(self) -> BatchSimulator:
        """The shared engine behind this lane."""
        return self._batch

    @property
    def lane_index(self) -> int:
        """This lane's index within the batch."""
        return self._lane

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._batch.now

    @property
    def on_event(self):
        """Optional per-lane probe, same contract as ``Simulator``."""
        return self._batch._lane_probes.get(self._lane)

    @on_event.setter
    def on_event(self, probe) -> None:
        if probe is None:
            self._batch._lane_probes.pop(self._lane, None)
        else:
            self._batch._lane_probes[self._lane] = probe

    @property
    def events_scheduled(self) -> int:
        """Events this lane has scheduled."""
        return self._batch._scheduled[self._lane]

    @property
    def events_fired(self) -> int:
        """Callbacks of this lane that ran."""
        return self._batch._fired[self._lane]

    @property
    def events_cancelled(self) -> int:
        """Events this lane cancelled."""
        return self._batch._cancelled[self._lane]

    @property
    def queue_high_water(self) -> int:
        """Most live events this lane ever had queued."""
        return self._batch._lane_high_water[self._lane]

    def schedule(self, delay: float,
                 callback: Callable[[], Any]) -> BatchHandle:
        """Run ``callback`` ``delay`` seconds from now on this lane."""
        return self._batch.schedule(self._lane, delay, callback)

    def schedule_at(self, time: float,
                    callback: Callable[[], Any]) -> BatchHandle:
        """Run ``callback`` at absolute ``time`` on this lane."""
        return self._batch.schedule_at(self._lane, time, callback)

    def schedule_every(self, interval: float, callback: Callable[[], Any],
                       *, start: float = 0.0,
                       until: Optional[float] = None) -> None:
        """Periodic scheduling — the exact scalar tick arithmetic."""
        schedule_periodic(self, interval, callback, start=start, until=until)

    def cancel(self, handle: EventHandle) -> bool:
        """Revoke one of this batch's scheduled events."""
        return self._batch.cancel(handle)

    def run(self, until: Optional[float] = None) -> None:
        """Advance the shared batch engine (all lanes move together)."""
        self._batch.run(until=until)

    def pending_events(self) -> int:
        """Live events still queued on this lane."""
        return (self.events_scheduled - self.events_fired
                - self.events_cancelled)

    def stats(self) -> Dict[str, float]:
        """This lane's counters, scalar ``Simulator.stats()`` shaped."""
        return self._batch.lane_stats(self._lane)


# ----------------------------------------------------------------------
# Vectorized service kernels (the struct-of-arrays fast path)
# ----------------------------------------------------------------------


def drop_tail_departures(
    times: np.ndarray,
    wire_bytes: np.ndarray,
    rate_bps: float,
    queue_bytes: int,
    busy0: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact :class:`~repro.netsim.link.Link` admission over arrays.

    Packets must be offered in non-decreasing time order.  Returns
    ``(departures, accepted)`` where rejected packets carry NaN
    departures.  The recurrence — including the backlog ``int``
    truncation of ``Link.backlog_bytes`` — matches the scalar link
    bit for bit, so kernels built on it reproduce event-driven runs.
    """
    times = np.asarray(times, dtype=np.float64)
    wire = np.asarray(wire_bytes)
    n = len(times)
    dep = np.full(n, np.nan)
    accepted = np.zeros(n, dtype=bool)
    busy = busy0
    byte_rate = rate_bps / 8.0
    for i in range(n):
        now = times[i]
        backlog = int((busy - now) * byte_rate) if busy > now else 0
        w = int(wire[i])
        if backlog + w > queue_bytes:
            continue
        start = now if now > busy else busy
        busy = start + w * 8.0 / rate_bps
        dep[i] = busy
        accepted[i] = True
    return dep, accepted


def fifo_departures(
    arrivals: np.ndarray,
    service_s: np.ndarray,
    busy0: float = 0.0,
) -> np.ndarray:
    """Vectorized work-conserving FIFO (Lindley recurrence), no drops.

    ``dep[i] = max(arr[i], dep[i-1]) + ser[i]`` computed with prefix
    reductions instead of a Python loop.  When a packet finds the link
    idle the result is exactly ``arr + ser`` (bit-identical to the
    scalar link); inside a busy period the prefix-max association can
    differ from the sequential recurrence by a few ulps — the documented
    fp tolerance of the batch fast path.
    """
    arr = np.asarray(arrivals, dtype=np.float64)
    ser = np.asarray(service_s, dtype=np.float64)
    if len(arr) == 0:
        return np.empty(0)
    csum = np.cumsum(ser)
    prev = np.concatenate(([0.0], csum[:-1]))
    slack = arr - prev
    slack[0] = max(slack[0], busy0)
    run_max = np.maximum.accumulate(slack)
    dep = run_max + csum
    idle = run_max == slack  # link idle at arrival: keep arr + ser exact
    dep[idle] = arr[idle] + ser[idle]
    return dep


def windowed_lane_bytes(
    timestamps: np.ndarray,
    lanes: np.ndarray,
    wire_bytes: np.ndarray,
    n_lanes: int,
    t0: float,
    window_s: float,
    n_windows: int,
) -> np.ndarray:
    """Per-(lane, window) byte totals in one axis-wise reduction.

    Records before ``t0`` or beyond the last window are ignored — the
    same head-skip semantics as
    :func:`repro.analysis.throughput.throughput_windows_mbps`.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    if n_windows < 1 or n_lanes < 1:
        return np.zeros((max(n_lanes, 0), max(n_windows, 0)))
    ts = np.asarray(timestamps, dtype=np.float64)
    lane_arr = np.asarray(lanes, dtype=np.int64)
    weights = np.asarray(wire_bytes, dtype=np.float64)
    rel = ts - t0
    idx = (rel / window_s).astype(np.int64)
    valid = (rel >= 0) & (idx < n_windows)
    flat = lane_arr[valid] * n_windows + idx[valid]
    sums = np.bincount(flat, weights=weights[valid],
                       minlength=n_lanes * n_windows)
    return sums.reshape(n_lanes, n_windows)
