"""Wireshark-style packet captures.

The paper runs Wireshark at each WiFi AP (Sec. 3.2).  A
:class:`PacketCapture` records the same observables: timestamp, direction
relative to the monitored host, wire size, the 5-tuple, and the first bytes
of the transport payload (enough for the protocol classifier in
:mod:`repro.analysis.protocol` to recognize RTP vs QUIC, exactly as a
passive observer of encrypted traffic would).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.netsim.packet import Packet

#: How many payload bytes a capture retains (Wireshark snaplen analogue).
SNAP_BYTES = 64


class Direction(enum.Enum):
    """Packet direction relative to the monitored host."""

    UPLINK = "uplink"
    DOWNLINK = "downlink"


@dataclass(frozen=True)
class CapturedPacket:
    """One record in a capture file."""

    timestamp: float
    direction: Direction
    wire_bytes: int
    src: str
    dst: str
    src_port: int
    dst_port: int
    protocol: int
    snap: bytes

    @property
    def flow(self) -> tuple:
        """The 5-tuple identifying the packet's flow."""
        return (self.src, self.dst, self.src_port, self.dst_port, self.protocol)


@dataclass
class PacketCapture:
    """An append-only capture attached to one host's point of attachment."""

    host_address: str
    records: List[CapturedPacket] = field(default_factory=list)

    def observe(self, timestamp: float, packet: Packet) -> None:
        """Record a packet crossing the monitored attachment point."""
        if packet.src == self.host_address:
            direction = Direction.UPLINK
        elif packet.dst == self.host_address:
            direction = Direction.DOWNLINK
        else:
            return  # not our host's traffic; a real AP capture filters too
        self.records.append(
            CapturedPacket(
                timestamp=timestamp,
                direction=direction,
                wire_bytes=packet.wire_bytes,
                src=packet.src,
                dst=packet.dst,
                src_port=packet.src_port,
                dst_port=packet.dst_port,
                protocol=packet.protocol,
                snap=packet.payload[:SNAP_BYTES],
            )
        )

    def filter(
        self,
        direction: Optional[Direction] = None,
        peer: Optional[str] = None,
        protocol: Optional[int] = None,
    ) -> List[CapturedPacket]:
        """Select records, Wireshark display-filter style."""
        out = []
        for rec in self.records:
            if direction is not None and rec.direction is not direction:
                continue
            if protocol is not None and rec.protocol != protocol:
                continue
            if peer is not None:
                other = rec.dst if rec.direction is Direction.UPLINK else rec.src
                if other != peer:
                    continue
            out.append(rec)
        return out

    def total_bytes(self, direction: Optional[Direction] = None) -> int:
        """Sum of wire bytes across (optionally filtered) records."""
        return sum(r.wire_bytes for r in self.filter(direction))

    def duration(self) -> float:
        """Time between first and last record, in seconds."""
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    def clear(self) -> None:
        """Drop all records (start a fresh capture)."""
        self.records.clear()
