"""Background cross-traffic generators.

The paper's testbed APs are quiet (>300 Mbps free), but real deployments
share the access link with other devices.  Cross-traffic sources let
experiments study contention: a bulk TCP-like flow that ramps up and
backs off, and an on/off burst source (the classic web-browsing shape).
Both are open-loop enough to stay cheap, but react to drops the way their
real counterparts would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, Packet

#: Wire-size budget per cross-traffic packet.
_SEGMENT_BYTES = 1448


class BulkTransferSource:
    """An AIMD bulk flow (file sync, cloud backup) sharing the uplink.

    Sends at ``rate_mbps`` in 10 ms ticks; every dropped packet halves the
    rate, every clean second adds ``ramp_mbps`` back — a coarse TCP shape
    that responds to queue pressure without simulating real TCP.
    """

    def __init__(self, rate_mbps: float = 50.0, ramp_mbps: float = 5.0,
                 floor_mbps: float = 1.0, seed: int = 0) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        self.rate_mbps = rate_mbps
        self.initial_mbps = rate_mbps
        self.ramp_mbps = ramp_mbps
        self.floor_mbps = floor_mbps
        self._rng = np.random.default_rng(seed)
        self.packets_sent = 0
        self.packets_dropped = 0
        self._clean_ticks = 0

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = 58000,
               until: Optional[float] = None) -> None:
        """Schedule the flow from ``host`` toward the target.

        Congestion feedback comes from two places: an uplink shaper
        rejecting a send outright, and the AP uplink queue's drop counter
        (a coarse stand-in for loss-signal feedback a transport would get
        from missing ACKs).
        """
        ap_uplink = host.network.ap_of(host.address).uplink
        last_ap_drops = ap_uplink.stats.packets_dropped

        def tick() -> None:
            nonlocal last_ap_drops
            bytes_this_tick = self.rate_mbps * 1e6 / 8.0 * 0.010
            n_packets = max(1, int(bytes_this_tick / _SEGMENT_BYTES))
            dropped = False
            for _ in range(n_packets):
                ok = host.send(Packet(
                    src=host.address, dst=target_address,
                    src_port=58001, dst_port=target_port,
                    protocol=IPPROTO_TCP,
                    payload=b"\x00" * (_SEGMENT_BYTES - 40),
                    meta={"kind": "cross-bulk"},
                ))
                self.packets_sent += 1
                if not ok:
                    self.packets_dropped += 1
                    dropped = True
            ap_drops = ap_uplink.stats.packets_dropped
            if ap_drops > last_ap_drops:
                self.packets_dropped += ap_drops - last_ap_drops
                last_ap_drops = ap_drops
                dropped = True
            if dropped:
                self.rate_mbps = max(self.floor_mbps, self.rate_mbps / 2.0)
                self._clean_ticks = 0
            else:
                self._clean_ticks += 1
                if self._clean_ticks >= 100:  # one clean second
                    self.rate_mbps = min(
                        self.initial_mbps, self.rate_mbps + self.ramp_mbps
                    )
                    self._clean_ticks = 0

        sim.schedule_every(0.010, tick, until=until)


class OnOffBurstSource:
    """Web-browsing-shaped traffic: exponential on/off bursts.

    During an on period the source sends at ``burst_mbps``; off periods
    are silent.  Durations are exponential with the given means.
    """

    def __init__(self, burst_mbps: float = 20.0, mean_on_s: float = 0.5,
                 mean_off_s: float = 2.0, seed: int = 0) -> None:
        if burst_mbps <= 0 or mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("burst rate and durations must be positive")
        self.burst_mbps = burst_mbps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self._rng = np.random.default_rng(seed)
        self.packets_sent = 0
        self._on = False
        self._phase_left = 0.0

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = 58100,
               until: Optional[float] = None) -> None:
        """Schedule the on/off process."""

        def tick() -> None:
            self._phase_left -= 0.010
            if self._phase_left <= 0.0:
                self._on = not self._on
                mean = self.mean_on_s if self._on else self.mean_off_s
                self._phase_left = float(self._rng.exponential(mean))
            if not self._on:
                return
            bytes_this_tick = self.burst_mbps * 1e6 / 8.0 * 0.010
            for _ in range(max(1, int(bytes_this_tick / _SEGMENT_BYTES))):
                host.send(Packet(
                    src=host.address, dst=target_address,
                    src_port=58101, dst_port=target_port,
                    protocol=IPPROTO_UDP,
                    payload=b"\x00" * (_SEGMENT_BYTES - 28),
                    meta={"kind": "cross-burst"},
                ))
                self.packets_sent += 1

        sim.schedule_every(0.010, tick, until=until)
