"""Deterministic discrete-event scheduler.

The simulator is a plain priority queue of timestamped callbacks.  Ties are
broken by insertion order, which makes runs fully deterministic for a given
seed and schedule — a property the test suite relies on.

Every ``schedule``/``schedule_at`` call returns an :class:`EventHandle` that
can be passed to :meth:`Simulator.cancel` to revoke the event before it
fires.  Cancellation is lazy: the queue entry stays in the heap and is
skipped (without advancing the clock) when it reaches the front, so
cancelling is O(1) and the heap invariant is never disturbed.  The fault
layer uses this to revoke in-flight packet deliveries when a link blacks
out mid-transfer.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "_seq", "_cancelled", "_fired")

    def __init__(self, time: float, seq: int) -> None:
        self.time = time
        self._seq = seq
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`Simulator.cancel` revoked this event."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback already ran."""
        return self._fired

    @property
    def active(self) -> bool:
        """Still queued: neither fired nor cancelled."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending"
        )
        return f"EventHandle(t={self.time:.6f}, {state})"


class Simulator:
    """Event loop with a simulated clock measured in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[
            Tuple[float, int, Callable[[], Any], EventHandle]
        ] = []
        self._counter = itertools.count()
        self._running = False
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now.

        Returns:
            A cancellable handle for the scheduled event.

        Raises:
            ValueError: If ``delay`` is negative — the past is immutable.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``.

        Returns:
            A cancellable handle for the scheduled event.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at {self._now:.6f}"
            )
        handle = EventHandle(time, next(self._counter))
        heapq.heappush(self._queue, (time, handle._seq, callback, handle))
        return handle

    def cancel(self, handle: EventHandle) -> bool:
        """Revoke a scheduled event before it fires.

        Returns:
            True when the event was still pending and is now cancelled;
            False when it had already fired or was already cancelled
            (cancelling twice is a harmless no-op).
        """
        if not handle.active:
            return False
        handle._cancelled = True
        self._cancelled_pending += 1
        return True

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        start: float = 0.0,
        until: Optional[float] = None,
    ) -> None:
        """Run ``callback`` periodically from ``start`` until ``until``.

        The callback fires at start, start+interval, ... strictly before
        ``until`` (when given).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        base = max(start, self._now)

        def fire(tick: int) -> None:
            callback()
            # Tick times are computed multiplicatively from the base so
            # floating-point drift cannot accumulate an extra firing.
            next_time = base + (tick + 1) * interval
            if until is None or next_time < until - 1e-12:
                self.schedule_at(next_time, lambda: fire(tick + 1))

        if until is None or base < until - 1e-12:
            self.schedule_at(base, lambda: fire(0))

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order.

        Args:
            until: Stop once the clock would pass this time; remaining
                events stay queued.  When None, drain the queue completely.

        Raises:
            ValueError: If ``until`` lies before the current clock — time
                cannot run backwards.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run until {until:.6f}, clock already at "
                f"{self._now:.6f}"
            )
        self._running = True
        try:
            while self._queue:
                time, _seq, callback, handle = self._queue[0]
                if handle._cancelled:
                    # Skip without touching the clock: a cancelled event
                    # must leave no observable trace.
                    heapq.heappop(self._queue)
                    self._cancelled_pending -= 1
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self._now = time
                handle._fired = True
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_pending
