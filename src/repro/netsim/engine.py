"""Deterministic discrete-event scheduler.

The simulator is a plain priority queue of timestamped callbacks.  Ties are
broken by insertion order, which makes runs fully deterministic for a given
seed and schedule — a property the test suite relies on.

Every ``schedule``/``schedule_at`` call returns an :class:`EventHandle` that
can be passed to :meth:`Simulator.cancel` to revoke the event before it
fires.  Cancellation is lazy: the queue entry stays in the heap and is
skipped (without advancing the clock) when it reaches the front, so
cancelling is O(1) and the heap invariant is never disturbed.  The fault
layer uses this to revoke in-flight packet deliveries when a link blacks
out mid-transfer.

Lazy cancellation alone would let a fault-heavy run grow the heap without
bound — a cancelled far-future delivery is only popped when it reaches the
heap front, which for long blackouts is effectively never.  Whenever
cancelled entries outnumber live ones the queue is therefore *compacted*:
one O(n) in-place rebuild that drops every cancelled entry and re-heapifies.
Entries keep their ``(time, seq)`` ordering keys, so compaction can never
change firing order, and the cost is amortized O(1) per cancellation.

The engine is also self-measuring: it keeps cheap built-in counters
(events scheduled/fired/cancelled, compactions, queue-depth high-water
mark; see :meth:`Simulator.stats`) which every ``run`` flushes to the
:mod:`repro.obs.metrics` registry, and an optional :attr:`Simulator.on_event`
probe observes every schedule/cancel/fire edge.  The disabled-probe path
is one ``None`` check per event, held to < 2% loop overhead by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

#: Below this queue size compaction is pointless (the rebuild would cost
#: more than lazily popping the handful of cancelled entries).
COMPACT_MIN_QUEUE = 64


def schedule_periodic(
    sim: Any,
    interval: float,
    callback: Callable[[], Any],
    *,
    start: float = 0.0,
    until: Optional[float] = None,
) -> None:
    """Run ``callback`` periodically on any scheduler exposing the
    ``now``/``schedule_at`` surface.

    The callback fires at start, start+interval, ... strictly before
    ``until`` (when given).  Shared by the scalar :class:`Simulator` and
    the batch engine's lane views so both produce bit-identical tick
    times: each tick is computed multiplicatively from the base
    (``base + (tick + 1) * interval``) with the same float operations.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    base = max(start, sim.now)

    def fire(tick: int) -> None:
        callback()
        # Tick times are computed multiplicatively from the base so
        # floating-point drift cannot accumulate an extra firing.
        next_time = base + (tick + 1) * interval
        if until is None or next_time < until - 1e-12:
            sim.schedule_at(next_time, lambda: fire(tick + 1))

    if until is None or base < until - 1e-12:
        sim.schedule_at(base, lambda: fire(0))


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "_seq", "_cancelled", "_fired")

    def __init__(self, time: float, seq: int) -> None:
        self.time = time
        self._seq = seq
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`Simulator.cancel` revoked this event."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback already ran."""
        return self._fired

    @property
    def active(self) -> bool:
        """Still queued: neither fired nor cancelled."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending"
        )
        return f"EventHandle(t={self.time:.6f}, {state})"


class Simulator:
    """Event loop with a simulated clock measured in seconds.

    Attributes:
        on_event: Optional probe called on every event edge as
            ``on_event(kind, time, handle)`` with kind one of
            ``"schedule"``, ``"cancel"``, ``"fire"``.  Read once at
            :meth:`run` entry for the fire edge, so install it before
            running.  ``None`` (the default) costs one pointer check.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[
            Tuple[float, int, Callable[[], Any], EventHandle]
        ] = []
        self._seq = 0
        self._running = False
        self._cancelled_pending = 0
        self.on_event: Optional[
            Callable[[str, float, EventHandle], Any]
        ] = None
        self.events_cancelled = 0
        self.heap_compactions = 0
        self.queue_high_water = 0
        self._published: Dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled on this simulator."""
        return self._seq

    @property
    def events_fired(self) -> int:
        """Total callbacks that actually ran.

        Derived, not counted: every scheduled event is exactly one of
        fired, cancelled, or still queued live — so the hot loop never
        pays for the bookkeeping.  (Cancelled entries not yet popped are
        in both ``events_cancelled`` and the queue; the pending term
        keeps them from being subtracted twice.)
        """
        return (self._seq - self.events_cancelled
                - (len(self._queue) - self._cancelled_pending))

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now.

        Returns:
            A cancellable handle for the scheduled event.

        Raises:
            ValueError: If ``delay`` is negative — the past is immutable.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``.

        Returns:
            A cancellable handle for the scheduled event.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq)
        queue = self._queue
        heapq.heappush(queue, (time, seq, callback, handle))
        if len(queue) > self.queue_high_water:
            self.queue_high_water = len(queue)
        if self.on_event is not None:
            self.on_event("schedule", time, handle)
        return handle

    def cancel(self, handle: EventHandle) -> bool:
        """Revoke a scheduled event before it fires.

        Returns:
            True when the event was still pending and is now cancelled;
            False when it had already fired or was already cancelled
            (cancelling twice is a harmless no-op).
        """
        if not handle.active:
            return False
        handle._cancelled = True
        self._cancelled_pending += 1
        self.events_cancelled += 1
        if self.on_event is not None:
            self.on_event("cancel", handle.time, handle)
        if (self._cancelled_pending * 2 > len(self._queue)
                and len(self._queue) >= COMPACT_MIN_QUEUE):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop every cancelled entry and rebuild the heap in place.

        In place (slice assignment) because :meth:`run` holds a local
        reference to the queue list; ordering keys are untouched, so
        firing order is exactly what lazy popping would have produced.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[3]._cancelled]
        heapq.heapify(queue)
        self._cancelled_pending = 0
        self.heap_compactions += 1

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        start: float = 0.0,
        until: Optional[float] = None,
    ) -> None:
        """Run ``callback`` periodically from ``start`` until ``until``.

        The callback fires at start, start+interval, ... strictly before
        ``until`` (when given).
        """
        schedule_periodic(self, interval, callback, start=start, until=until)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order.

        Args:
            until: Stop once the clock would pass this time; remaining
                events stay queued.  When None, drain the queue completely.

        Raises:
            ValueError: If ``until`` lies before the current clock — time
                cannot run backwards.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run until {until:.6f}, clock already at "
                f"{self._now:.6f}"
            )
        self._running = True
        queue = self._queue  # compaction mutates in place, never rebinds
        pop = heapq.heappop
        probe = self.on_event
        try:
            while queue:
                time, _seq, callback, handle = queue[0]
                if handle._cancelled:
                    # Skip without touching the clock: a cancelled event
                    # must leave no observable trace.
                    pop(queue)
                    self._cancelled_pending -= 1
                    continue
                if until is not None and time > until:
                    break
                pop(queue)
                self._now = time
                handle._fired = True
                if probe is not None:
                    probe("fire", time, handle)
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._publish_metrics()

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_pending

    def stats(self) -> Dict[str, float]:
        """The engine's built-in counters, as plain numbers."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_fired": self.events_fired,
            "events_cancelled": self.events_cancelled,
            "heap_compactions": self.heap_compactions,
            "queue_high_water": self.queue_high_water,
            "sim_time_s": self._now,
        }

    def _publish_metrics(self) -> None:
        """Flush counter deltas to the process metrics registry.

        Called once per :meth:`run`, so many simulators (one per session,
        one session per sweep cell) aggregate into one process view; the
        per-event hot path never touches the registry.
        """
        totals = {
            "netsim.events_scheduled": self.events_scheduled,
            "netsim.events_fired": self.events_fired,
            "netsim.events_cancelled": self.events_cancelled,
            "netsim.heap_compactions": self.heap_compactions,
            "netsim.sim_time_s": self._now,
        }
        published = self._published
        for name, total in totals.items():
            moved = total - published.get(name, 0)
            if moved:
                obs_metrics.counter(name).inc(moved)
        self._published = totals
        obs_metrics.gauge("netsim.queue_high_water").set_max(
            self.queue_high_water
        )
