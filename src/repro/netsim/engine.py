"""Deterministic discrete-event scheduler.

The simulator is a plain priority queue of timestamped callbacks.  Ties are
broken by insertion order, which makes runs fully deterministic for a given
seed and schedule — a property the test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Simulator:
    """Event loop with a simulated clock measured in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], Any]]] = []
        self._counter = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` ``delay`` seconds from now.

        Raises:
            ValueError: If ``delay`` is negative — the past is immutable.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at {self._now:.6f}"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        start: float = 0.0,
        until: Optional[float] = None,
    ) -> None:
        """Run ``callback`` periodically from ``start`` until ``until``.

        The callback fires at start, start+interval, ... strictly before
        ``until`` (when given).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        base = max(start, self._now)

        def fire(tick: int) -> None:
            callback()
            # Tick times are computed multiplicatively from the base so
            # floating-point drift cannot accumulate an extra firing.
            next_time = base + (tick + 1) * interval
            if until is None or next_time < until - 1e-12:
                self.schedule_at(next_time, lambda: fire(tick + 1))

        if until is None or base < until - 1e-12:
            self.schedule_at(base, lambda: fire(0))

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order.

        Args:
            until: Stop once the clock would pass this time; remaining
                events stay queued.  When None, drain the queue completely.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
