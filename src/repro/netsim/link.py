"""Point-of-attachment link model: rate, queue, drop-tail.

A :class:`Link` models one transmission resource (an access uplink, a WiFi
radio, a server NIC).  Serialization occupies the link for
``wire_bytes * 8 / rate`` seconds; packets arriving while the link is busy
queue behind it, and the queue is drop-tail bounded in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet


@dataclass
class LinkStats:
    """Counters a link accumulates over its lifetime."""

    packets_sent: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were dropped."""
        offered = self.packets_sent + self.packets_dropped
        return self.packets_dropped / offered if offered else 0.0


class Link:
    """A transmission resource with finite rate and a drop-tail queue."""

    def __init__(
        self,
        rate_bps: float,
        queue_bytes: int = 256 * 1024,
        name: str = "link",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if queue_bytes <= 0:
            raise ValueError(f"queue must be positive, got {queue_bytes}")
        self.rate_bps = rate_bps
        self.queue_bytes = queue_bytes
        self.name = name
        self.stats = LinkStats()
        self.up = True
        self._busy_until = 0.0
        self._queued_bytes = 0

    def set_rate(self, rate_bps: float) -> None:
        """Change the link rate mid-run (fault injection, modulation).

        Packets already accepted keep their original departure times; only
        packets offered after the change see the new rate.

        Raises:
            ValueError: For a non-positive rate.
        """
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.rate_bps = rate_bps

    def serialization_delay(self, packet: Packet) -> float:
        """Seconds needed to clock the packet onto the wire."""
        return packet.wire_bytes * 8.0 / self.rate_bps

    def backlog_bytes(self, now: float) -> int:
        """Bytes currently waiting (approximation from busy horizon)."""
        if self._busy_until <= now:
            return 0
        return int((self._busy_until - now) * self.rate_bps / 8.0)

    def transmit(
        self,
        sim: Simulator,
        packet: Packet,
        on_transmitted: Callable[[Packet], None],
        extra_delay: float = 0.0,
    ) -> bool:
        """Enqueue ``packet``; invoke ``on_transmitted`` when it leaves.

        Args:
            sim: The event scheduler (provides the clock).
            packet: The datagram to send.
            on_transmitted: Called at the instant the last bit leaves the
                link (propagation is added by the caller).
            extra_delay: Additional fixed latency (e.g. a shaper's netem
                delay) applied after serialization.

        Returns:
            False when the drop-tail queue rejected the packet.
        """
        if not self.up:
            self.stats.packets_dropped += 1
            return False
        now = sim.now
        if self.backlog_bytes(now) + packet.wire_bytes > self.queue_bytes:
            self.stats.packets_dropped += 1
            return False
        start = max(now, self._busy_until)
        done = start + self.serialization_delay(packet)
        self._busy_until = done
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.wire_bytes
        sim.schedule_at(done + extra_delay, lambda: on_transmitted(packet))
        return True

    def utilization(self, now: float) -> float:
        """Fraction of time the link has spent busy so far (approximate)."""
        if now <= 0:
            return 0.0
        busy = self.stats.bytes_sent * 8.0 / self.rate_bps
        return min(1.0, busy / now)
