"""The network fabric: hosts, APs, shapers, and the wide-area core.

Packets traverse, in order:

1. the sender's uplink shaper (if installed — this is where ``tc`` lives),
2. the sender's AP uplink (serialization + queueing),
3. the wide-area core, modeled as the one-way delay of the geographic
   :class:`~repro.geo.latency.PathModel` between the two hosts,
4. the receiver's downlink shaper (if installed),
5. the receiver's AP downlink, then delivery to the host.

Captures observe uplink packets as they clear the sender's AP and downlink
packets as they arrive at the receiver's AP — the same vantage Wireshark has
in the paper's testbed.

Fault injection hooks: every attachment can carry a :class:`LinkFault`
(blackout, burst loss, burst jitter) installed by
:class:`repro.faults.injector.FaultInjector`.  Sender-side faults act before
the AP uplink (the sender's capture never sees the packet, like a radio
drop); receiver-side faults act before the receiver's AP capture (the loss
happened upstream of the Wireshark vantage).  In-flight core crossings are
tracked per destination so a blackout can revoke them via the simulator's
cancellable event handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.geo.latency import PathModel, DEFAULT_PATH_MODEL
from repro.netsim.capture import PacketCapture
from repro.netsim.engine import EventHandle, Simulator
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.shaper import TrafficShaper
from repro.netsim.wifi import WiFiAccessPoint


@dataclass
class LinkFault:
    """Transient impairment of one host's point of attachment.

    Attributes:
        blackout: Drop every packet to or from the host.
        loss: Extra independent per-packet drop probability in [0, 1].
        jitter_ms: Amplitude of extra uniform random one-way delay.
        packets_dropped: Packets this fault has destroyed so far.
    """

    blackout: bool = False
    loss: float = 0.0
    jitter_ms: float = 0.0
    packets_dropped: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter_ms}")


@dataclass
class _Attachment:
    """Everything the network knows about one attached host."""

    host: Host
    ap: WiFiAccessPoint
    uplink_shaper: Optional[TrafficShaper] = None
    downlink_shaper: Optional[TrafficShaper] = None
    capture: Optional[PacketCapture] = None
    fault: Optional[LinkFault] = None
    inflight: Set[EventHandle] = field(default_factory=set)


@dataclass
class NetworkStats:
    """Fabric-wide counters."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0


class Network:
    """Wires hosts together over a geographic wide-area core."""

    def __init__(self, sim: Simulator, path_model: Optional[PathModel] = None) -> None:
        self.sim = sim
        self.path_model = path_model or DEFAULT_PATH_MODEL
        self.stats = NetworkStats()
        self._attachments: Dict[str, _Attachment] = {}
        self._fault_rng: Optional[np.random.Generator] = None

    def attach(
        self,
        host: Host,
        ap: Optional[WiFiAccessPoint] = None,
        uplink_shaper: Optional[TrafficShaper] = None,
        downlink_shaper: Optional[TrafficShaper] = None,
    ) -> _Attachment:
        """Join ``host`` to the fabric behind ``ap`` (a fresh AP by default)."""
        if host.address in self._attachments:
            raise ValueError(f"address {host.address} already attached")
        attachment = _Attachment(
            host=host,
            ap=ap or WiFiAccessPoint(name=f"ap-{host.name}"),
            uplink_shaper=uplink_shaper,
            downlink_shaper=downlink_shaper,
        )
        self._attachments[host.address] = attachment
        host.attach(self)
        return attachment

    def host(self, address: str) -> Host:
        """Look up an attached host by address."""
        return self._attachments[address].host

    def ap_of(self, address: str) -> WiFiAccessPoint:
        """The access point a host sits behind (for congestion feedback)."""
        return self._attachments[address].ap

    def set_uplink_shaper(self, address: str, shaper: Optional[TrafficShaper]) -> None:
        """Install (or remove) a ``tc`` shaper on a host's uplink."""
        self._attachments[address].uplink_shaper = shaper

    def set_downlink_shaper(self, address: str, shaper: Optional[TrafficShaper]) -> None:
        """Install (or remove) a ``tc`` shaper on a host's downlink."""
        self._attachments[address].downlink_shaper = shaper

    def start_capture(self, address: str) -> PacketCapture:
        """Start a Wireshark-style capture at the host's AP."""
        attachment = self._attachments[address]
        attachment.capture = attachment.ap.start_capture(address)
        return attachment.capture

    def one_way_delay_s(self, src_address: str, dst_address: str) -> float:
        """Core one-way delay between two attached hosts, in seconds."""
        src = self._attachments[src_address].host
        dst = self._attachments[dst_address].host
        return self.path_model.one_way_ms(src.location, dst.location) / 1000.0

    # ------------------------------------------------------------------
    # Fault-injection surface
    # ------------------------------------------------------------------

    def seed_faults(self, seed: int) -> None:
        """(Re)seed the RNG behind fault loss/jitter processes.

        The fault layer calls this with a seed derived from the session
        seed so fault runs are exactly reproducible.  Without faults this
        RNG is never drawn from, keeping clean runs byte-identical.
        """
        self._fault_rng = np.random.default_rng(seed)

    def _rng(self) -> np.random.Generator:
        if self._fault_rng is None:
            self._fault_rng = np.random.default_rng(0)
        return self._fault_rng

    def set_fault(self, address: str, fault: Optional[LinkFault]) -> None:
        """Install (or clear, with None) a fault on a host's attachment."""
        self._attachments[address].fault = fault

    def fault_of(self, address: str) -> Optional[LinkFault]:
        """The currently installed fault of an attachment, if any."""
        return self._attachments[address].fault

    def is_blacked_out(self, address: str) -> bool:
        """Whether the attachment currently drops all traffic."""
        fault = self._attachments[address].fault
        return fault is not None and fault.blackout

    def drop_inflight(self, address: str) -> int:
        """Revoke every core crossing currently headed to ``address``.

        Uses the simulator's cancellable handles — this is what makes a
        blackout instantaneous instead of "no *new* packets".  Returns the
        number of deliveries revoked.
        """
        attachment = self._attachments[address]
        dropped = 0
        for handle in attachment.inflight:
            if self.sim.cancel(handle):
                dropped += 1
        attachment.inflight.clear()
        self.stats.packets_dropped += dropped
        if attachment.fault is not None:
            attachment.fault.packets_dropped += dropped
        return dropped

    def _fault_drops(self, fault: Optional[LinkFault]) -> bool:
        """Whether ``fault`` destroys the next packet (draws RNG on loss)."""
        if fault is None:
            return False
        if fault.blackout:
            fault.packets_dropped += 1
            return True
        if fault.loss > 0.0 and self._rng().random() < fault.loss:
            fault.packets_dropped += 1
            return True
        return False

    def _fault_jitter_s(self, *faults: Optional[LinkFault]) -> float:
        """Extra one-way delay contributed by active jitter faults."""
        amplitude_ms = sum(f.jitter_ms for f in faults if f is not None)
        if amplitude_ms <= 0.0:
            return 0.0
        return float(self._rng().uniform(0.0, amplitude_ms)) / 1000.0

    # ------------------------------------------------------------------
    # The forwarding path
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Inject a packet at its source host's uplink."""
        sender = self._attachments.get(packet.src)
        receiver = self._attachments.get(packet.dst)
        if sender is None:
            raise KeyError(f"unknown source address {packet.src}")
        if receiver is None:
            raise KeyError(f"unknown destination address {packet.dst}")
        packet.created_at = self.sim.now
        self.stats.packets_sent += 1

        if self._fault_drops(sender.fault):
            self.stats.packets_dropped += 1
            return False

        if sender.uplink_shaper is not None:
            accepted = sender.uplink_shaper.process(
                self.sim, packet, lambda p: self._enter_ap_uplink(sender, receiver, p)
            )
        else:
            accepted = True
            self._enter_ap_uplink(sender, receiver, packet)
        if not accepted:
            self.stats.packets_dropped += 1
        return accepted

    def _enter_ap_uplink(self, sender: _Attachment, receiver: _Attachment,
                         packet: Packet) -> None:
        accepted = sender.ap.uplink.transmit(
            self.sim, packet, lambda p: self._cross_core(sender, receiver, p)
        )
        if not accepted:
            self.stats.packets_dropped += 1

    def _cross_core(self, sender: _Attachment, receiver: _Attachment,
                    packet: Packet) -> None:
        if sender.capture is not None:
            sender.capture.observe(self.sim.now, packet)
        delay = self.path_model.one_way_ms(
            sender.host.location, receiver.host.location
        ) / 1000.0
        if sender.fault is not None or receiver.fault is not None:
            delay += self._fault_jitter_s(sender.fault, receiver.fault)

        def arrive() -> None:
            receiver.inflight.discard(handle)
            self._arrive_at_receiver(receiver, packet)

        handle = self.sim.schedule(delay, arrive)
        receiver.inflight.add(handle)

    def _arrive_at_receiver(self, receiver: _Attachment, packet: Packet) -> None:
        if self._fault_drops(receiver.fault):
            self.stats.packets_dropped += 1
            return
        if receiver.capture is not None:
            receiver.capture.observe(self.sim.now, packet)
        if receiver.downlink_shaper is not None:
            accepted = receiver.downlink_shaper.process(
                self.sim, packet, lambda p: self._enter_ap_downlink(receiver, p)
            )
            if not accepted:
                self.stats.packets_dropped += 1
        else:
            self._enter_ap_downlink(receiver, packet)

    def _enter_ap_downlink(self, receiver: _Attachment, packet: Packet) -> None:
        accepted = receiver.ap.downlink.transmit(
            self.sim, packet, lambda p: self._deliver(receiver, p)
        )
        if not accepted:
            self.stats.packets_dropped += 1

    def _deliver(self, receiver: _Attachment, packet: Packet) -> None:
        self.stats.packets_delivered += 1
        receiver.host.deliver(packet)
