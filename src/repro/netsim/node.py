"""Hosts: addressable endpoints with port bindings.

A :class:`Host` is anything with an IP address in the simulated testbed — a
Vision Pro, a MacBook, or a VCA relay server.  Hosts bind handlers to UDP/TCP
ports; unbound traffic lands in a default inbox so tests can always assert on
what arrived.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.geo.coords import GeoPoint
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.network import Network

PacketHandler = Callable[[Packet], None]


class Host:
    """An addressable endpoint attached to the simulated network."""

    def __init__(self, address: str, location: GeoPoint, name: Optional[str] = None) -> None:
        self.address = address
        self.location = location
        self.name = name or address
        self._handlers: Dict[int, PacketHandler] = {}
        self.inbox: List[Packet] = []
        self._network: Optional["Network"] = None

    def attach(self, network: "Network") -> None:
        """Called by the network when the host joins it."""
        self._network = network

    @property
    def network(self) -> "Network":
        """The network this host is attached to.

        Raises:
            RuntimeError: If the host was never attached.
        """
        if self._network is None:
            raise RuntimeError(f"host {self.name} is not attached to a network")
        return self._network

    def bind(self, port: int, handler: PacketHandler) -> None:
        """Register ``handler`` for packets destined to ``port``."""
        if port in self._handlers:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._handlers[port] = handler

    def unbind(self, port: int) -> None:
        """Remove the handler for ``port`` (no-op if absent)."""
        self._handlers.pop(port, None)

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet``; returns False if dropped on the way out."""
        if packet.src != self.address:
            raise ValueError(
                f"{self.name} cannot send a packet with src {packet.src}"
            )
        return self.network.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Hand an arriving packet to its port handler (or the inbox)."""
        handler = self._handlers.get(packet.dst_port)
        if handler is not None:
            handler(packet)
        else:
            self.inbox.append(packet)

    def __repr__(self) -> str:
        return f"Host({self.name}@{self.address})"
