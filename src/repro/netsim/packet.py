"""Byte-accurate packets.

A packet carries an opaque payload (bytes produced by the transport layer in
:mod:`repro.transport`) plus addressing metadata.  On-the-wire size includes
IPv4 and UDP/TCP header overhead so that captured throughput matches what
Wireshark would report at the testbed APs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20

IPPROTO_UDP = 17
IPPROTO_TCP = 6

#: Conventional media MTU used by the VCAs in this study (payload budget).
MEDIA_MTU_BYTES = 1200

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One IP datagram in flight.

    Attributes:
        src: Source IPv4 address (dotted quad string).
        dst: Destination IPv4 address.
        src_port: Source transport port.
        dst_port: Destination transport port.
        protocol: ``IPPROTO_UDP`` or ``IPPROTO_TCP``.
        payload: Transport-layer bytes (e.g. a full RTP or QUIC packet).
        created_at: Simulated send timestamp (seconds), stamped by the host.
        meta: Free-form annotations (stream id, frame index, media kind) that
            ride along for analysis; they do not contribute to wire size.
    """

    src: str
    dst: str
    src_port: int
    dst_port: int
    protocol: int
    payload: bytes
    created_at: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.protocol not in (IPPROTO_UDP, IPPROTO_TCP):
            raise ValueError(f"unsupported IP protocol {self.protocol}")
        for port in (self.src_port, self.dst_port):
            if not 0 < port < 65536:
                raise ValueError(f"port out of range: {port}")

    @property
    def transport_header_bytes(self) -> int:
        """UDP or TCP header size."""
        if self.protocol == IPPROTO_UDP:
            return UDP_HEADER_BYTES
        return TCP_HEADER_BYTES

    @property
    def wire_bytes(self) -> int:
        """Total on-the-wire size: IP + transport headers + payload."""
        return IPV4_HEADER_BYTES + self.transport_header_bytes + len(self.payload)

    def reply_shell(self, payload: bytes = b"") -> "Packet":
        """A packet headed back to this packet's sender (ports swapped)."""
        return Packet(
            src=self.dst,
            dst=self.src,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
            payload=payload,
        )

    def forward_to(self, dst: str, dst_port: int, src: str, src_port: int) -> "Packet":
        """A copy of this packet re-addressed by a forwarding server."""
        return Packet(
            src=src,
            dst=dst,
            src_port=src_port,
            dst_port=dst_port,
            protocol=self.protocol,
            payload=self.payload,
            meta=dict(self.meta),
        )
