"""Selective forwarding unit (SFU) relay servers.

Sec. 4.2 of the paper finds the VCA servers are "primarily used for data
forwarding": each media packet a participant uploads is copied to every
other participant, which is why downlink throughput grows linearly with the
number of users (Fig. 6(c)).  This module implements exactly that relay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.geo.coords import GeoPoint
from repro.netsim.node import Host
from repro.netsim.packet import Packet


@dataclass
class SfuStats:
    """Forwarding counters of one relay."""

    packets_received: int = 0
    packets_forwarded: int = 0
    bytes_forwarded: int = 0


class SelectiveForwardingUnit(Host):
    """A relay that fans each participant's media out to all the others."""

    #: Port the SFU listens on and forwards from.
    MEDIA_PORT = 3478

    def __init__(self, address: str, location: GeoPoint, name: str = "sfu") -> None:
        super().__init__(address, location, name=name)
        self.participants: Set[str] = set()
        self.sfu_stats = SfuStats()
        self._participant_ports: Dict[str, int] = {}
        self.bind(self.MEDIA_PORT, self._on_media)

    def register(self, address: str, port: int) -> None:
        """Admit a participant; media will be forwarded to ``address:port``."""
        self.participants.add(address)
        self._participant_ports[address] = port

    def unregister(self, address: str) -> None:
        """Remove a participant from the fan-out set."""
        self.participants.discard(address)
        self._participant_ports.pop(address, None)

    def _on_media(self, packet: Packet) -> None:
        self.sfu_stats.packets_received += 1
        for address in sorted(self.participants):
            if address == packet.src:
                continue
            # Keep the original source port so flows (audio vs. video)
            # remain separable by 5-tuple after the relay, as real SFUs
            # keep streams apart by SSRC/port.
            copy = packet.forward_to(
                dst=address,
                dst_port=self._participant_ports[address],
                src=self.address,
                src_port=packet.src_port,
            )
            # Preserve the origin so receivers know whose persona this is.
            copy.meta.setdefault("origin", packet.src)
            if self.send(copy):
                self.sfu_stats.packets_forwarded += 1
                self.sfu_stats.bytes_forwarded += copy.wire_bytes

    def fanout(self) -> int:
        """Copies made per received packet at the current occupancy."""
        return max(0, len(self.participants) - 1)


def forwarding_is_linear(num_users: int, per_stream_bps: float) -> float:
    """Expected per-client downlink rate under pure forwarding.

    Each client receives the streams of all other ``num_users - 1``
    participants — the mechanism behind Fig. 6(c)'s linear growth.
    """
    if num_users < 1:
        raise ValueError("need at least one user")
    return (num_users - 1) * per_stream_bps
