"""Linux ``tc``-style traffic impairments.

The paper uses ``tc`` twice (Sec. 4.3): to inject 0-1000 ms of extra network
delay for the display-latency experiment, and to constrain uplink bandwidth
for the rate-adaptation experiment.  :class:`TrafficShaper` models both, plus
random loss, and can be installed on a host's uplink or downlink in
:class:`repro.netsim.network.Network`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet


class TrafficShaper:
    """netem/tbf-style shaper: fixed delay, rate limit, random loss.

    Args:
        rate_bps: Token-bucket rate limit; None leaves rate unconstrained.
        delay_ms: Extra one-way delay added to every packet.
        loss: Independent per-packet drop probability in [0, 1).
        queue_bytes: Buffer in front of the rate limiter; packets beyond it
            are dropped (this is what starves the semantic stream below the
            700 Kbps cutoff).
        seed: Seed for the loss process.
    """

    def __init__(
        self,
        rate_bps: Optional[float] = None,
        delay_ms: float = 0.0,
        loss: float = 0.0,
        queue_bytes: int = 64 * 1024,
        seed: int = 0,
    ) -> None:
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ms}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.delay_ms = delay_ms
        self.loss = loss
        self._limiter = (
            Link(rate_bps, queue_bytes=queue_bytes, name="shaper") if rate_bps else None
        )
        self._rng = np.random.default_rng(seed)
        self.packets_dropped = 0
        self.packets_passed = 0
        self.bytes_dropped = 0
        self.bytes_passed = 0

    @property
    def rate_bps(self) -> Optional[float]:
        """Configured rate limit, or None when unconstrained."""
        return self._limiter.rate_bps if self._limiter else None

    def process(
        self,
        sim: Simulator,
        packet: Packet,
        deliver: Callable[[Packet], None],
    ) -> bool:
        """Push ``packet`` through the shaper.

        ``deliver`` fires once the packet has cleared the rate limiter and
        the extra delay.  Returns False when the packet was dropped (either
        by the loss process or by the limiter's queue).
        """
        if self.loss > 0.0 and self._rng.random() < self.loss:
            self.packets_dropped += 1
            self.bytes_dropped += packet.wire_bytes
            return False
        extra = self.delay_ms / 1000.0
        if self._limiter is None:
            self.packets_passed += 1
            self.bytes_passed += packet.wire_bytes
            sim.schedule(extra, lambda: deliver(packet))
            return True
        accepted = self._limiter.transmit(sim, packet, deliver, extra_delay=extra)
        if accepted:
            self.packets_passed += 1
            self.bytes_passed += packet.wire_bytes
        else:
            self.packets_dropped += 1
            self.bytes_dropped += packet.wire_bytes
        return accepted

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets dropped so far."""
        offered = self.packets_passed + self.packets_dropped
        return self.packets_dropped / offered if offered else 0.0

    def offered_mbps(self, duration_s: float) -> float:
        """Rate the application *offered* (pre-drop) over ``duration_s``.

        A source with rate adaptation would lower this under a tight
        limit; the spatial persona stream does not (Sec. 4.3).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return (self.bytes_passed + self.bytes_dropped) * 8.0 / duration_s / 1e6
