"""Capture persistence: a pcap-like binary trace format.

The paper promises to "release the source code of our tools and the
collected data"; this is the collected-data half.  Traces serialize
:class:`~repro.netsim.capture.PacketCapture` records to a compact binary
file (magic, version, record count, then fixed-layout records with the
snap bytes) so captures can be archived and re-analyzed offline.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from repro.netsim.capture import CapturedPacket, Direction, PacketCapture

PathLike = Union[str, Path]

_MAGIC = b"RPTR"
_VERSION = 1
_FILE_HEADER = struct.Struct("<4sHI")  # magic, version, record count
#: timestamp, direction flag, wire bytes, ports, protocol, snap length.
_RECORD = struct.Struct("<dBIHHBB")


def _pack_address(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {address!r}")
    return bytes(int(p) for p in parts)


def _unpack_address(blob: bytes) -> str:
    return ".".join(str(b) for b in blob)


def save_trace(capture: PacketCapture, path: PathLike) -> None:
    """Write a capture to ``path``."""
    out = bytearray()
    out += _FILE_HEADER.pack(_MAGIC, _VERSION, len(capture.records))
    out += _pack_address(capture.host_address)
    for rec in capture.records:
        snap = rec.snap[:255]
        out += _RECORD.pack(
            rec.timestamp,
            1 if rec.direction is Direction.UPLINK else 0,
            rec.wire_bytes,
            rec.src_port,
            rec.dst_port,
            rec.protocol,
            len(snap),
        )
        out += _pack_address(rec.src)
        out += _pack_address(rec.dst)
        out += snap
    Path(path).write_bytes(bytes(out))


def load_trace(path: PathLike) -> PacketCapture:
    """Read a capture written by :func:`save_trace`.

    Raises:
        ValueError: On bad magic, unsupported version, or truncation.
    """
    data = Path(path).read_bytes()
    if len(data) < _FILE_HEADER.size + 4:
        raise ValueError("trace file too short")
    magic, version, count = _FILE_HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError("not a repro trace file")
    if version != _VERSION:
        raise ValueError(f"unsupported trace version {version}")
    offset = _FILE_HEADER.size
    host = _unpack_address(data[offset:offset + 4])
    offset += 4
    capture = PacketCapture(host)
    for _ in range(count):
        if offset + _RECORD.size + 8 > len(data):
            raise ValueError("truncated trace record")
        (timestamp, up, wire, sport, dport, proto,
         snap_len) = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        src = _unpack_address(data[offset:offset + 4])
        dst = _unpack_address(data[offset + 4:offset + 8])
        offset += 8
        if offset + snap_len > len(data):
            raise ValueError("truncated snap bytes")
        snap = data[offset:offset + snap_len]
        offset += snap_len
        capture.records.append(CapturedPacket(
            timestamp=timestamp,
            direction=Direction.UPLINK if up else Direction.DOWNLINK,
            wire_bytes=wire,
            src=src, dst=dst, src_port=sport, dst_port=dport,
            protocol=proto, snap=snap,
        ))
    return capture
