"""WiFi access points.

The testbed connects each user to their own AP with > 300 Mbps of measured
throughput (Sec. 3.2).  An AP here is a pair of directional links (uplink
toward the Internet, downlink toward the station) plus the attachment point
where the paper runs Wireshark.
"""

from __future__ import annotations

from typing import Optional

from repro import calibration
from repro.netsim.capture import PacketCapture
from repro.netsim.link import Link


class WiFiAccessPoint:
    """One AP of the testbed: two directional links and a capture point."""

    def __init__(
        self,
        name: str = "ap",
        throughput_mbps: float = calibration.WIFI_AP_MBPS,
        queue_bytes: int = 512 * 1024,
    ) -> None:
        if throughput_mbps <= 0:
            raise ValueError(f"AP throughput must be positive, got {throughput_mbps}")
        rate_bps = throughput_mbps * 1e6
        self.name = name
        self.uplink = Link(rate_bps, queue_bytes=queue_bytes, name=f"{name}-up")
        self.downlink = Link(rate_bps, queue_bytes=queue_bytes, name=f"{name}-down")
        self._capture: Optional[PacketCapture] = None

    def start_capture(self, host_address: str) -> PacketCapture:
        """Begin a Wireshark-style capture for ``host_address`` at this AP."""
        self._capture = PacketCapture(host_address)
        return self._capture

    @property
    def capture(self) -> Optional[PacketCapture]:
        """The active capture, if any."""
        return self._capture
