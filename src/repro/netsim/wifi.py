"""WiFi access points.

The testbed connects each user to their own AP with > 300 Mbps of measured
throughput (Sec. 3.2).  An AP here is a pair of directional links (uplink
toward the Internet, downlink toward the station) plus the attachment point
where the paper runs Wireshark.
"""

from __future__ import annotations

from typing import Optional

from repro import calibration
from repro.netsim.capture import PacketCapture
from repro.netsim.link import Link


class WiFiAccessPoint:
    """One AP of the testbed: two directional links and a capture point."""

    def __init__(
        self,
        name: str = "ap",
        throughput_mbps: float = calibration.WIFI_AP_MBPS,
        queue_bytes: int = 512 * 1024,
    ) -> None:
        if throughput_mbps <= 0:
            raise ValueError(f"AP throughput must be positive, got {throughput_mbps}")
        rate_bps = throughput_mbps * 1e6
        self.name = name
        self.base_rate_bps = rate_bps
        self.uplink = Link(rate_bps, queue_bytes=queue_bytes, name=f"{name}-up")
        self.downlink = Link(rate_bps, queue_bytes=queue_bytes, name=f"{name}-down")
        self._capture: Optional[PacketCapture] = None
        self._degradation = 1.0

    @property
    def degradation(self) -> float:
        """Current rate factor relative to the clean radio (1.0 = clean)."""
        return self._degradation

    def degrade(self, factor: float) -> None:
        """Scale both directional links to ``factor`` of the base rate.

        Models radio degradation (interference, distance, rain fade for a
        fixed-wireless backhaul).  Calling again replaces — not stacks —
        the previous factor; :meth:`restore` sets it back to 1.0.

        Raises:
            ValueError: If ``factor`` is not in (0, 1].
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0, 1], got {factor}")
        self._degradation = factor
        self.uplink.set_rate(self.base_rate_bps * factor)
        self.downlink.set_rate(self.base_rate_bps * factor)

    def restore(self) -> None:
        """Return both links to the clean base rate."""
        self.degrade(1.0)

    def start_capture(self, host_address: str) -> PacketCapture:
        """Begin a Wireshark-style capture for ``host_address`` at this AP."""
        self._capture = PacketCapture(host_address)
        return self._capture

    @property
    def capture(self) -> Optional[PacketCapture]:
        """The active capture, if any."""
        return self._capture
