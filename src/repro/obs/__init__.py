"""Observability: tracing spans and process-local metrics.

``repro.obs`` is the measurement layer *for the testbed itself* — the
paper measures telepresence systems, and this package makes the
simulated reproduction auditable the same way: spans record where wall
and simulated time went (:mod:`repro.obs.trace`, Chrome-trace JSONL),
and counters/gauges/histograms record what every subsystem did
(:mod:`repro.obs.metrics`).

Zero dependencies, no threads, and a free disabled path: nothing here
may slow the event loop down when tracing is off (held to < 2% by
``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    counter,
    delta,
    format_snapshot,
    gauge,
    histogram,
    snapshot,
)
from repro.obs.trace import (
    Tracer,
    chrome_export,
    configure,
    current_tracer,
    install,
    read_trace,
    shutdown,
    span,
    trace_path,
    validate_nesting,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "counter",
    "delta",
    "format_snapshot",
    "gauge",
    "histogram",
    "snapshot",
    "Tracer",
    "chrome_export",
    "configure",
    "current_tracer",
    "install",
    "read_trace",
    "shutdown",
    "span",
    "trace_path",
    "validate_nesting",
]
