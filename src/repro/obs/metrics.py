"""Process-local metrics registry: counters, gauges, histograms.

The paper's contribution is *measurement*, so the testbed itself must be
measurable: every subsystem (event engine, VCA sessions, jitter buffers,
fault injector, sweep runner) records what it did into one process-local
:class:`Registry`.  Zero dependencies, zero background threads, and a
deliberately tiny hot path — an increment is one attribute add — so the
instrumentation can stay always-on (the overhead bench holds the event
loop to < 2%).

Three snapshot-centric operations make the registry useful across the
sweep machinery:

- :meth:`Registry.snapshot` — a plain-dict, JSON-serializable view;
- :func:`delta` — what happened *between* two snapshots (per-cell
  accounting on the serial path, where one registry serves many cells);
- :meth:`Registry.merge` — fold a worker process's snapshot into the
  parent registry so ``--metrics`` reports whole-sweep totals even when
  every cell ran in its own process.

Merge semantics: counters add, gauges keep the maximum (they are used
for high-water marks), histograms combine count/sum/min/max.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing value (int or float amounts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0 to stay monotonic)."""
        self.value += amount


class Gauge:
    """Point-in-time value; ``set_max`` makes it a high-water mark."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        """Keep the largest value ever seen (high-water-mark gauges)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming distribution summary: count, sum, min, max.

    Deliberately reservoir-free: four scalars keep ``observe`` cheap
    enough for per-frame call sites, and the snapshot stays a tiny
    JSON-able dict.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class Registry:
    """Named metrics, one instance per concern (or the process default).

    ``counter``/``gauge``/``histogram`` are get-or-create: call sites
    fetch their instrument once (usually at construction time) and hold
    the object, so the hot path never touches the registry dict.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def reset(self) -> None:
        """Forget every instrument (tests; never needed in production)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict, JSON-serializable view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold another process's snapshot (or delta) into this registry."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set_max(value)
        for name, stats in snap.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += stats.get("count", 0)
            hist.total += stats.get("sum", 0.0)
            for bound, better in (("min", min), ("max", max)):
                incoming = stats.get(bound)
                if incoming is None:
                    continue
                current = getattr(hist, bound)
                setattr(hist, bound,
                        incoming if current is None
                        else better(current, incoming))


def delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """What happened between two snapshots of the *same* registry.

    Counters and histogram count/sum subtract; gauges (and histogram
    min/max, which cannot be un-mixed) report the ``after`` value.  Only
    instruments that actually moved appear, so a quiet subsystem costs
    nothing in the per-cell manifest.
    """
    out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        moved = value - before_counters.get(name, 0)
        if moved:
            out["counters"][name] = moved
    before_gauges = before.get("gauges", {})
    for name, value in after.get("gauges", {}).items():
        if name not in before_gauges or value != before_gauges[name]:
            out["gauges"][name] = value
    before_hists = before.get("histograms", {})
    for name, stats in after.get("histograms", {}).items():
        prior = before_hists.get(name, {})
        count = stats.get("count", 0) - prior.get("count", 0)
        if not count:
            continue
        out["histograms"][name] = {
            "count": count,
            "sum": stats.get("sum", 0.0) - prior.get("sum", 0.0),
            "min": stats.get("min"),
            "max": stats.get("max"),
        }
    return out


def _rows(snap: Dict[str, Any]) -> Iterable[Tuple[str, str]]:
    for name, value in snap.get("counters", {}).items():
        text = f"{value:g}" if isinstance(value, float) else str(value)
        yield name, text
    for name, value in snap.get("gauges", {}).items():
        yield name, f"{value:g}"
    for name, stats in snap.get("histograms", {}).items():
        count = stats.get("count", 0)
        mean = (stats.get("sum", 0.0) / count) if count else 0.0
        yield name, (f"n={count} mean={mean:g} "
                     f"min={stats.get('min')} max={stats.get('max')}")


def format_snapshot(snap: Dict[str, Any],
                    title: Optional[str] = "metrics") -> str:
    """Human-readable rendering for CLI output and reports.

    ``title=None`` drops the heading line (and its indentation) for
    embedding in a surrounding document.
    """
    rows = list(_rows(snap))
    if not rows:
        return f"{title}: (no instruments recorded)" if title else ""
    width = max(len(name) for name, _ in rows)
    indent = "  " if title else ""
    lines = [f"{title}:"] if title else []
    for name, text in rows:
        lines.append(f"{indent}{name:<{width}}  {text}")
    return "\n".join(lines)


#: The process-default registry every built-in instrument records into.
REGISTRY = Registry()


def counter(name: str) -> Counter:
    """Get-or-create a counter on the process-default registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the process-default registry."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram on the process-default registry."""
    return REGISTRY.histogram(name)


def snapshot() -> Dict[str, Any]:
    """Snapshot the process-default registry."""
    return REGISTRY.snapshot()
