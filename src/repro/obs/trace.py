"""Lightweight spans emitted as Chrome-trace-event JSONL.

A span measures one region of work — a campaign, a sweep cell, a session
run — on *two* clocks at once: wall time (``ts``/``dur``, microseconds,
shared epoch across processes) and, when the region drives a simulator,
the simulated clock (``args.sim_t0_s``/``args.sim_dur_s``).  Each
finished span is appended to the trace file as one self-contained JSON
object per line, so

- concurrent worker processes can append to the same file safely
  (O_APPEND, one line per write),
- a killed worker loses at most its in-flight span, never the file, and
- every line is independently parseable — the round-trip/validation
  tooling (:func:`read_trace`, :func:`validate_nesting`) and the CI
  observability job rely on that.

Each line is a complete-phase (``"ph": "X"``) Chrome trace event;
:func:`chrome_export` wraps the JSONL into the JSON array form that
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
directly (``python -m repro.obs.trace trace.jsonl trace.json``).

The disabled path is a single module-global ``None`` check returning a
shared no-op span, so leaving tracing off costs nothing measurable.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

__all__ = [
    "Tracer",
    "span",
    "configure",
    "install",
    "shutdown",
    "current_tracer",
    "trace_path",
    "read_trace",
    "validate_nesting",
    "chrome_export",
]

#: Category recorded on spans unless the call site overrides it.
DEFAULT_CATEGORY = "repro"


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Discard attributes (matching :meth:`_Span.set`)."""


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; emits its trace event when the ``with`` block ends."""

    __slots__ = ("_tracer", "name", "cat", "_sim_clock", "args",
                 "_id", "_parent", "_wall_t0", "_perf_t0", "_sim_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 sim_clock: Optional[Callable[[], float]],
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self._sim_clock = sim_clock
        self.args = args

    def set(self, **attrs: Any) -> None:
        """Attach attributes from inside the block (recorded at exit)."""
        self.args.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._id = tracer._next_id()
        stack = tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self._id)
        self._wall_t0 = time.time()
        self._sim_t0 = self._sim_clock() if self._sim_clock else None
        self._perf_t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        dur_s = time.perf_counter() - self._perf_t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        args = dict(self.args)
        args["id"] = self._id
        if self._parent is not None:
            args["parent"] = self._parent
        if self._sim_t0 is not None:
            args["sim_t0_s"] = round(self._sim_t0, 9)
            args["sim_dur_s"] = round(self._sim_clock() - self._sim_t0, 9)
        if exc_info and exc_info[0] is not None:
            args["error"] = exc_info[0].__name__
        self._tracer._emit({
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "pid": self._tracer.pid,
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "ts": round(self._wall_t0 * 1e6, 3),
            "dur": round(dur_s * 1e6, 3),
            "args": args,
        })
        return False


class Tracer:
    """Appends finished spans to a JSONL file, one event per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _next_id(self) -> str:
        return f"{self.pid}:{next(self._ids)}"

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle.closed:  # pragma: no cover - late span at exit
                return
            self._handle.write(line)
            self._handle.flush()

    def span(self, name: str, *, cat: str = DEFAULT_CATEGORY,
             sim_clock: Optional[Callable[[], float]] = None,
             **attrs: Any) -> _Span:
        """A context manager measuring ``name`` on this tracer."""
        return _Span(self, name, cat, sim_clock, attrs)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


_TRACER: Optional[Tracer] = None


def span(name: str, *, cat: str = DEFAULT_CATEGORY,
         sim_clock: Optional[Callable[[], float]] = None,
         **attrs: Any) -> Union[_Span, _NullSpan]:
    """A span on the installed tracer — or a free no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, sim_clock=sim_clock, **attrs)


def configure(path: Union[str, Path]) -> Tracer:
    """Install (or reuse) a tracer appending to ``path``.

    Idempotent per path: worker processes that inherit an already-open
    tracer via fork keep it instead of re-opening the file.
    """
    global _TRACER
    if (_TRACER is not None and not _TRACER._handle.closed
            and _TRACER.path == Path(path) and _TRACER.pid == os.getpid()):
        return _TRACER
    _TRACER = Tracer(path)
    return _TRACER


def install(tracer: Optional[Tracer]) -> None:
    """Make ``tracer`` the process-global tracer (None disables)."""
    global _TRACER
    _TRACER = tracer


def shutdown() -> None:
    """Flush, close, and uninstall the global tracer (no-op if none)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or None while tracing is disabled."""
    return _TRACER


def trace_path() -> Optional[str]:
    """The installed tracer's file path (ships to worker processes)."""
    return str(_TRACER.path) if _TRACER is not None else None


# ----------------------------------------------------------------------
# Reading back: round-trip, validation, Chrome/Perfetto export
# ----------------------------------------------------------------------


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into event dicts.

    Raises:
        ValueError: On a line that is not a JSON object — a trace that
            does not parse must fail loudly, not validate vacuously.
    """
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(event)
    return events


def validate_nesting(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Check spans nest properly; returns violations (empty = valid).

    Within each (pid, tid) timeline, complete events must form a strict
    hierarchy — a span either contains another or is disjoint from it,
    never partially overlapping — and a recorded ``parent`` id must name
    a span that actually encloses the child.
    """
    problems: List[str] = []
    timelines: Dict[Any, List[Dict[str, Any]]] = {}
    by_id: Dict[Any, Dict[str, Any]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        timelines.setdefault((event.get("pid"), event.get("tid")),
                             []).append(event)
        span_id = (event.get("args") or {}).get("id")
        if span_id is not None:
            by_id[span_id] = event
    for key, group in timelines.items():
        # Outer spans first at identical start times, so the stack walk
        # sees a parent before its zero-gap children.
        group.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[Dict[str, Any]] = []
        for event in group:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and stack[-1]["ts"] + stack[-1]["dur"] <= start:
                stack.pop()
            if stack and end > stack[-1]["ts"] + stack[-1]["dur"] + 1e-6:
                problems.append(
                    f"{key}: span {event.get('name')!r} overlaps "
                    f"{stack[-1].get('name')!r} without nesting"
                )
            stack.append(event)
            parent_id = (event.get("args") or {}).get("parent")
            parent = by_id.get(parent_id)
            if parent is not None and parent.get("pid") == event.get("pid"):
                p_start = parent["ts"]
                p_end = parent["ts"] + parent["dur"]
                if start + 1e-6 < p_start or end > p_end + 1e-6:
                    problems.append(
                        f"{key}: span {event.get('name')!r} not inside "
                        f"its parent {parent.get('name')!r}"
                    )
    return problems


def chrome_export(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """JSONL trace -> Chrome/Perfetto JSON array; returns event count."""
    events = read_trace(src)
    with open(dst, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events}, handle)
    return len(events)


if __name__ == "__main__":  # pragma: no cover - tiny converter CLI
    import sys

    if len(sys.argv) != 3:
        sys.exit("usage: python -m repro.obs.trace TRACE.jsonl OUT.json")
    count = chrome_export(sys.argv[1], sys.argv[2])
    print(f"wrote {sys.argv[2]} ({count} events) — open in "
          f"chrome://tracing or https://ui.perfetto.dev")
