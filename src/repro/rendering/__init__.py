"""Rendering pipeline model: camera, gaze, LOD, frame costs, display.

Replaces the Xcode/RealityKit profiling surface of the paper with a
calibrated model exposing the same counters — rendered triangles, CPU ms,
GPU ms per frame — and the same visibility-aware optimizations the paper
dissects in Sec. 4.4:

- viewport adaptation (36-triangle proxy outside the view frustum),
- foveated rendering (reduced mesh + reduced shading rate in the periphery),
- distance-aware LOD (reduced mesh beyond 3 m), and
- occlusion-aware rendering (implemented, but *disabled* in the FaceTime
  profile because the paper finds it is not adopted).
"""

from repro.rendering.camera import Camera, head_coverage
from repro.rendering.gaze import AttentionModel
from repro.rendering.lod import LodPolicy, LodDecision, VisibilityState, PersonaView
from repro.rendering.cost import GpuCostModel, CpuCostModel, FRAME_COST_FIT
from repro.rendering.pipeline import RenderPipeline, FrameStats
from repro.rendering.framerate import FrameRateReport, analyze_frame_rate, vsync_slots
from repro.rendering.display import (
    DisplayLatencyModel,
    ContentDeliveryMode,
)

__all__ = [
    "Camera",
    "head_coverage",
    "AttentionModel",
    "LodPolicy",
    "LodDecision",
    "VisibilityState",
    "PersonaView",
    "GpuCostModel",
    "CpuCostModel",
    "FRAME_COST_FIT",
    "RenderPipeline",
    "FrameStats",
    "DisplayLatencyModel",
    "ContentDeliveryMode",
    "FrameRateReport",
    "analyze_frame_rate",
    "vsync_slots",
]
