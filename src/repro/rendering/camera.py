"""Viewer camera: frustum tests, eccentricity, and screen coverage.

Vision Pro's rendering load splits into a geometry term (triangles) and a
fragment term (shaded screen area).  The camera provides the two geometric
inputs those terms need: whether/where a persona falls in the view frustum,
and what fraction of the display it covers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Horizontal field of view of the headset, degrees (full angle).
FOV_HORIZONTAL_DEG = 100.0
#: Vertical field of view, degrees (full angle).
FOV_VERTICAL_DEG = 78.0

#: Fraction of the display a human head covers at 1 m viewing distance.
#: This constant anchors the fragment-cost fit in :mod:`repro.rendering.cost`
#: (only the product of coverage and the fitted per-coverage cost matters).
HEAD_COVERAGE_AT_1M = 0.0625


def head_coverage(distance_m: float) -> float:
    """Screen-coverage fraction of a head at ``distance_m`` (inverse square).

    Raises:
        ValueError: For non-positive distances.
    """
    if distance_m <= 0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    return min(1.0, HEAD_COVERAGE_AT_1M / (distance_m * distance_m))


def _normalize(v: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(v)
    if norm < 1e-12:
        raise ValueError("cannot normalize a zero vector")
    return v / norm


@dataclass
class Camera:
    """The viewer's head pose: position plus forward direction.

    The view frustum is centered on ``forward``; gaze (eye direction) is
    tracked separately by :class:`repro.rendering.gaze.AttentionModel`
    because eyes move within a stationary head.
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    forward: np.ndarray = field(default_factory=lambda: np.array([1.0, 0.0, 0.0]))

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        self.forward = _normalize(np.asarray(self.forward, dtype=np.float64))

    def direction_to(self, point: np.ndarray) -> np.ndarray:
        """Unit vector from the camera to ``point``."""
        return _normalize(np.asarray(point, dtype=np.float64) - self.position)

    def distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance to ``point``."""
        return float(np.linalg.norm(np.asarray(point) - self.position))

    def angle_from_forward_deg(self, point: np.ndarray) -> float:
        """Angle between the head's forward axis and ``point``, degrees."""
        cos = float(np.clip(np.dot(self.direction_to(point), self.forward), -1, 1))
        return math.degrees(math.acos(cos))

    def in_viewport(self, point: np.ndarray, margin_deg: float = 0.0) -> bool:
        """Whether ``point`` lies inside the (elliptical) view frustum.

        ``margin_deg`` widens (positive) or narrows (negative) the frustum,
        modeling the guard band renderers keep around the visible region.
        """
        direction = self.direction_to(point)
        forward = self.forward
        # Build a local frame: forward, right, up.
        up_hint = np.array([0.0, 0.0, 1.0])
        if abs(np.dot(forward, up_hint)) > 0.99:
            up_hint = np.array([0.0, 1.0, 0.0])
        right = _normalize(np.cross(forward, up_hint))
        up = np.cross(right, forward)
        x = float(np.dot(direction, forward))
        if x <= 0:
            return False
        yaw = math.degrees(math.atan2(float(np.dot(direction, right)), x))
        pitch = math.degrees(math.atan2(float(np.dot(direction, up)), x))
        half_h = FOV_HORIZONTAL_DEG / 2.0 + margin_deg
        half_v = FOV_VERTICAL_DEG / 2.0 + margin_deg
        return (yaw / half_h) ** 2 + (pitch / half_v) ** 2 <= 1.0

    def turned_toward(self, point: np.ndarray, fraction: float) -> "Camera":
        """A camera rotated ``fraction`` of the way toward ``point``.

        Used by the attention model: the head follows the eyes with a lag.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        target = self.direction_to(point)
        blended = _normalize((1.0 - fraction) * self.forward + fraction * target)
        return Camera(self.position.copy(), blended)
