"""Per-frame CPU/GPU cost models, fit to the paper's anchors at import.

GPU model
---------

``gpu_ms = setup + k_tri * triangles + k_frag * coverage * shading``

where ``shading`` is 1 for full-rate fragments and ``phi < 1`` under
foveated rendering (foveation lowers both the mesh resolution *and* the
shading rate in the periphery).  The four parameters ``(setup, k_tri,
k_frag, phi)`` are solved exactly from the four Fig. 5 operating points:

- baseline:  78,030 triangles, 1 m coverage, full shading  -> 6.55 ms
- viewport:      36 triangles, zero coverage               -> 2.68 ms
- distance:  45,036 triangles, 3 m coverage, full shading  -> 3.91 ms
- foveated:  21,036 triangles, 1 m coverage, phi shading   -> 3.97 ms

The first three are linear in ``(setup, k_tri, k_frag)``; ``phi`` then
follows from the foveated anchor.  By construction the model reproduces
Fig. 5 exactly, and — with the session layout in
:mod:`repro.vca.scene` — lands on the Fig. 6 means without further tuning.

CPU model
---------

The paper finds CPU time is *not* reduced by visibility optimizations
(delivery is visibility-oblivious, and the CPU mainly processes received
data).  CPU time therefore depends only on the persona count:
``cpu_ms = base + k_decode * n_personas``, fit to the Fig. 6(b) endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import calibration
from repro.rendering.camera import head_coverage
from repro.rendering.lod import LodDecision


def _solve_gpu_fit() -> "FrameCostFit":
    """Solve the cost parameters from the Fig. 5 calibration anchors."""
    t_bl = float(calibration.PERSONA_TRIANGLES)
    t_v = float(calibration.VIEWPORT_CULLED_TRIANGLES)
    t_d = float(calibration.DISTANCE_TRIANGLES)
    t_f = float(calibration.FOVEATED_TRIANGLES)
    c1 = head_coverage(1.0)
    c3 = head_coverage(calibration.DISTANCE_LOD_THRESHOLD_M)
    gpu_bl = calibration.GPU_MS_BASELINE[0]
    gpu_v = calibration.GPU_MS_VIEWPORT[0]
    gpu_d = calibration.GPU_MS_DISTANCE[0]
    gpu_f = calibration.GPU_MS_FOVEATED[0]

    # Rows: viewport (no coverage), baseline, distance.
    matrix = np.array([
        [1.0, t_v, 0.0],
        [1.0, t_bl, c1],
        [1.0, t_d, c3],
    ])
    setup, k_tri, k_frag = np.linalg.solve(matrix, [gpu_v, gpu_bl, gpu_d])
    phi = (gpu_f - setup - k_tri * t_f) / (k_frag * c1)
    return FrameCostFit(
        setup_ms=float(setup),
        k_tri_ms=float(k_tri),
        k_frag_ms=float(k_frag),
        foveated_shading_factor=float(phi),
    )


@dataclass(frozen=True)
class FrameCostFit:
    """GPU cost parameters solved from the Fig. 5 anchors."""

    setup_ms: float
    k_tri_ms: float
    k_frag_ms: float
    foveated_shading_factor: float

    def __post_init__(self) -> None:
        for name in ("setup_ms", "k_tri_ms", "k_frag_ms",
                     "foveated_shading_factor"):
            if getattr(self, name) <= 0:
                raise ValueError(f"degenerate fit: {name} <= 0")
        if self.foveated_shading_factor >= 1.0:
            raise ValueError("foveated shading must reduce fragment cost")


#: The fit, computed once at import; tests assert it reproduces Fig. 5.
FRAME_COST_FIT = _solve_gpu_fit()


@dataclass
class GpuCostModel:
    """GPU time per frame given the LOD decisions of the frame.

    Beyond Gaussian measurement noise, frames occasionally pay a
    contention spike (OS scheduling, memory-bandwidth pressure, thermal
    management) — the mechanism behind the long upper whiskers of
    Fig. 6(b), including the > 9 ms 95th percentile at five users.
    Single-persona lab scenarios (Fig. 5) show tight stds because the
    paper pins the scene; the spike process is therefore scaled by the
    number of rendered personas beyond the first.
    """

    fit: FrameCostFit = FRAME_COST_FIT
    noise_std_ms: float = 0.10
    spike_prob: float = 0.08
    spike_scale_ms: float = 0.9
    _rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0), repr=False
    )

    def seed(self, seed: int) -> None:
        """Reseed the measurement-noise source."""
        self._rng = np.random.default_rng(seed)

    def persona_cost_ms(self, decision: LodDecision) -> float:
        """Marginal GPU cost of one persona (geometry + fragments)."""
        shading = (
            self.fit.foveated_shading_factor if decision.foveated_shading else 1.0
        )
        return (
            self.fit.k_tri_ms * decision.triangles
            + self.fit.k_frag_ms * decision.coverage * shading
        )

    def frame_time_ms(self, decisions: Sequence[LodDecision],
                      noisy: bool = True, spike_sources: int = 0) -> float:
        """Total GPU time for one frame.

        Args:
            decisions: LOD decisions of every persona this frame.
            noisy: Apply Gaussian measurement noise.
            spike_sources: Number of independent contention-spike sources
                (0 for controlled single-persona measurements like Fig. 5;
                the persona count for natural sessions like Fig. 6).
        """
        total = self.fit.setup_ms + sum(
            self.persona_cost_ms(d) for d in decisions
        )
        if noisy and self.noise_std_ms > 0:
            total += float(self._rng.normal(0.0, self.noise_std_ms))
        for _ in range(spike_sources):
            if self._rng.random() < self.spike_prob:
                total += float(self._rng.exponential(self.spike_scale_ms))
        return max(total, 0.0)


def _solve_cpu_fit() -> "CpuFit":
    """Fit ``cpu = base + k * personas`` to the Fig. 6(b) endpoints."""
    two = calibration.CPU_MS_TWO_USERS[0]    # 1 persona
    five = calibration.CPU_MS_FIVE_USERS[0]  # 4 personas
    k = (five - two) / 3.0
    base = two - k
    return CpuFit(base_ms=base, per_persona_ms=k)


@dataclass(frozen=True)
class CpuFit:
    """CPU cost parameters solved from the Fig. 6 anchors."""

    base_ms: float
    per_persona_ms: float


CPU_COST_FIT = _solve_cpu_fit()


@dataclass
class CpuCostModel:
    """CPU time per frame: semantic decode + reconstruction per persona.

    Deliberately ignores the LOD decisions — the paper's finding is that
    CPU time does not change under visibility optimizations because every
    persona's data is still received and processed (Sec. 4.4).
    """

    fit: CpuFit = CPU_COST_FIT
    noise_std_ms: float = 0.12
    spike_prob: float = 0.08
    spike_scale_ms: float = 0.9
    _rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0), repr=False
    )

    def seed(self, seed: int) -> None:
        """Reseed the measurement-noise source."""
        self._rng = np.random.default_rng(seed)

    def frame_time_ms(self, n_personas: int, noisy: bool = True,
                      received_fraction: Optional[float] = None,
                      spike_sources: int = 0) -> float:
        """CPU time for one frame with ``n_personas`` remote personas.

        ``received_fraction`` scales the decode term when the network
        starves the streams (used only by shaping experiments; the default
        models a healthy session).  ``spike_sources`` is the contention
        process, as in :meth:`GpuCostModel.frame_time_ms`.
        """
        if n_personas < 0:
            raise ValueError("persona count cannot be negative")
        fraction = 1.0 if received_fraction is None else received_fraction
        total = self.fit.base_ms + self.fit.per_persona_ms * n_personas * fraction
        if noisy and self.noise_std_ms > 0:
            total += float(self._rng.normal(0.0, self.noise_std_ms))
        # The Fig. 6 anchors are session means *including* contention, so
        # the spike process is centered: its expected mass is deducted.
        total -= spike_sources * self.spike_prob * self.spike_scale_ms
        for _ in range(spike_sources):
            if self._rng.random() < self.spike_prob:
                total += float(self._rng.exponential(self.spike_scale_ms))
        return max(total, 0.0)
