"""Video-see-through display-latency model (the Sec. 4.3 experiment).

Vision Pro composites two things onto its screens: the camera passthrough
of the real world, and the rendered personas.  The paper's discriminating
experiment measures the *difference* in display latency between the two
when the viewer abruptly changes viewport, under injected network delay:

- If the persona were **sender-rendered 2D video** (rendered for the
  receiver's predicted viewport), a viewport change would need a network
  round trip before the persona updates — the difference would track the
  injected delay.
- If the persona is **locally reconstructed** (from a 3D model or from
  semantic keypoints), the viewport change is handled locally and the
  difference stays bounded by one or two frame times regardless of
  network delay.  This is what the paper measures (< 16 ms difference
  at up to 1000 ms of injected delay).

Both content modes are implemented so the experiment can discriminate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro import calibration


class ContentDeliveryMode(enum.Enum):
    """How persona content reaches the receiving headset."""

    #: Receiver holds the model and re-renders locally per frame
    #: (direct 3D streaming *or* semantic reconstruction).
    LOCAL_RECONSTRUCTION = "local"

    #: Sender (or an edge) renders a 2D view for the receiver's viewport
    #: and streams video; viewport changes need a network round trip.
    SENDER_RENDERED_VIDEO = "remote"


#: Camera-to-display passthrough latency of the headset, ms.  Public
#: measurements of Vision Pro passthrough place it around 11-12 ms.
PASSTHROUGH_LATENCY_MS = 12.0


@dataclass
class DisplayLatencyModel:
    """Computes display latencies for passthrough vs persona content."""

    mode: ContentDeliveryMode = ContentDeliveryMode.LOCAL_RECONSTRUCTION
    passthrough_ms: float = PASSTHROUGH_LATENCY_MS
    frame_interval_ms: float = 1000.0 / calibration.TARGET_FPS
    jitter_std_ms: float = 1.5
    _rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0), repr=False
    )

    def seed(self, seed: int) -> None:
        """Reseed the jitter source."""
        self._rng = np.random.default_rng(seed)

    def passthrough_latency_ms(self) -> float:
        """Camera-to-photon latency for real-world objects."""
        return self.passthrough_ms + self._sample_scheduling()

    def persona_latency_ms(self, network_rtt_ms: float) -> float:
        """Photon latency for the persona after an abrupt viewport change.

        Args:
            network_rtt_ms: Current round-trip time to the sender,
                including any injected (tc) delay.
        """
        if network_rtt_ms < 0:
            raise ValueError("RTT cannot be negative")
        if self.mode is ContentDeliveryMode.LOCAL_RECONSTRUCTION:
            # The new viewport is rendered from local state next frame.
            return (
                self.passthrough_ms
                + self.frame_interval_ms
                + self._sample_scheduling()
            )
        # Sender-rendered: the viewport change must reach the sender and a
        # freshly rendered video frame must come back.
        return (
            self.passthrough_ms
            + self.frame_interval_ms
            + network_rtt_ms
            + self._sample_scheduling()
        )

    def latency_difference_ms(self, network_rtt_ms: float) -> float:
        """The paper's observable: persona latency minus passthrough."""
        return self.persona_latency_ms(network_rtt_ms) - self.passthrough_latency_ms()

    def _sample_scheduling(self) -> float:
        """Frame-boundary alignment noise (uniform within one vsync)."""
        vsync = float(self._rng.uniform(0.0, self.frame_interval_ms))
        jitter = float(self._rng.normal(0.0, self.jitter_std_ms))
        return max(0.0, vsync * 0.5 + jitter)
