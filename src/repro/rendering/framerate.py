"""Frame-rate accounting: from per-frame GPU times to displayed FPS.

Sec. 3.2 lists "Frame Rate and Rendering Time for Each Frame" among the
metrics: the target is 90 FPS and a frame that overruns its ~11.1 ms
budget misses its vsync slot, so the previous image is shown again and
the *displayed* frame rate drops.  This module turns a session's
:class:`~repro.rendering.pipeline.FrameStats` sequence into that metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro import calibration
from repro.rendering.pipeline import FrameStats


@dataclass(frozen=True)
class FrameRateReport:
    """Displayed-frame-rate summary of one rendered session."""

    target_fps: float
    effective_fps: float
    frames_rendered: int
    frames_missed: int
    worst_consecutive_misses: int

    @property
    def miss_rate(self) -> float:
        """Fraction of frames that overran the vsync budget."""
        if self.frames_rendered == 0:
            return 0.0
        return self.frames_missed / self.frames_rendered

    def meets_target(self, tolerance: float = 0.05) -> bool:
        """Whether the displayed rate stays within ``tolerance`` of target."""
        return self.effective_fps >= self.target_fps * (1.0 - tolerance)


def vsync_slots(gpu_ms: float,
                deadline_ms: float = calibration.FRAME_DEADLINE_MS) -> int:
    """Number of vsync intervals a frame occupies (1 = on time).

    Raises:
        ValueError: For non-positive deadlines.
    """
    if deadline_ms <= 0:
        raise ValueError("deadline must be positive")
    if gpu_ms <= 0:
        return 1
    return max(1, math.ceil(gpu_ms / deadline_ms))


def analyze_frame_rate(
    frames: Sequence[FrameStats],
    target_fps: float = float(calibration.TARGET_FPS),
) -> FrameRateReport:
    """Compute displayed FPS from per-frame GPU times.

    A frame occupying ``k`` vsync slots displays one new image per ``k``
    slots; effective FPS is the target divided by the mean slot count.

    Raises:
        ValueError: On an empty frame sequence.
    """
    if not frames:
        raise ValueError("no frames to analyze")
    deadline_ms = 1000.0 / target_fps
    slots = [vsync_slots(f.gpu_ms, deadline_ms) for f in frames]
    missed = sum(1 for s in slots if s > 1)
    worst_run = run = 0
    for s in slots:
        run = run + 1 if s > 1 else 0
        worst_run = max(worst_run, run)
    effective = target_fps * len(slots) / sum(slots)
    return FrameRateReport(
        target_fps=target_fps,
        effective_fps=effective,
        frames_rendered=len(frames),
        frames_missed=missed,
        worst_consecutive_misses=worst_run,
    )
