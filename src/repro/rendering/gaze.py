"""Scene layout and gaze/attention dynamics.

FaceTime arranges spatial personas on an arc around the viewer; the
viewer's eyes dwell on one participant at a time, saccade between them,
and occasionally glance away, while the head follows the eyes with a lag.
These dynamics are what turn the discrete LOD tiers of
:mod:`repro.rendering.lod` into the *distributions* of Fig. 6: the gazed
persona renders FULL, the rest sit in the periphery, edge personas leave
the viewport when the head turns, and mid-saccade instants briefly put two
personas in the foveal zone (the > 9 ms GPU tail at five users).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.rendering.camera import Camera
from repro.rendering.lod import PersonaView

#: Angular spacing between adjacent personas on the arc, degrees.
ARC_SPACING_DEG = 27.5

#: Viewing distance starts at 1.3 m for an intimate two-person call and
#: grows as the arc accommodates more participants.
BASE_DISTANCE_M = 1.3
DISTANCE_PER_EXTRA_USER_M = 0.1

#: Fraction of the gaze deflection the head follows (eyes lead, head lags).
HEAD_FOLLOW_FRACTION = 0.6


@dataclass(frozen=True)
class ScenePersona:
    """A remote persona placed in the local user's space."""

    persona_id: str
    angle_deg: float
    distance_m: float

    @property
    def position(self) -> np.ndarray:
        """World position; the viewer sits at the origin facing +x."""
        rad = math.radians(self.angle_deg)
        return np.array([
            self.distance_m * math.cos(rad),
            self.distance_m * math.sin(rad),
            0.0,
        ])


#: The arc never spans more than this total angle: with many personas the
#: layout packs them closer so everyone stays (mostly) in view.
MAX_ARC_SPAN_DEG = 110.0


def arrange_personas(persona_ids: Sequence[str],
                     spacing_deg: float = ARC_SPACING_DEG) -> List[ScenePersona]:
    """Place personas on a centered arc at the session's viewing distance.

    With ``n`` participants in the call there are ``n - 1`` remote
    personas; distance scales with participant count the way FaceTime's
    circle grows, and spacing shrinks once the arc would exceed
    ``MAX_ARC_SPAN_DEG`` (the packing pressure that makes a sixth user
    so expensive — see the frame-rate experiment).
    """
    count = len(persona_ids)
    if count < 1:
        raise ValueError("need at least one persona")
    if count > 1:
        spacing_deg = min(spacing_deg, MAX_ARC_SPAN_DEG / count)
    distance = BASE_DISTANCE_M + DISTANCE_PER_EXTRA_USER_M * (count - 1)
    offset = (count - 1) / 2.0
    return [
        ScenePersona(pid, (i - offset) * spacing_deg, distance)
        for i, pid in enumerate(persona_ids)
    ]


@dataclass
class AttentionModel:
    """Markov gaze over the personas plus occasional look-aways.

    Per frame the model advances dwell/saccade state and returns the
    camera (head pose) and per-persona :class:`PersonaView` records with
    gaze eccentricities — exactly the inputs the LOD policy needs.

    Args:
        personas: The arranged scene.
        fps: Frame rate the model is stepped at.
        seed: Randomness seed.
        mean_dwell_s: Mean dwell time on one persona.
        saccade_s: Saccade duration (gaze interpolates during it).
        look_away_prob: Probability a dwell targets the environment
            instead of a persona (glancing at shared content, the room...).
    """

    personas: Sequence[ScenePersona]
    fps: float = 90.0
    seed: int = 0
    mean_dwell_s: float = 1.5
    saccade_s: float = 0.12
    look_away_prob: float = 0.03
    look_away_angle_deg: float = 60.0

    def __post_init__(self) -> None:
        if not self.personas:
            raise ValueError("attention needs at least one persona")
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._gaze_angle = self.personas[0].angle_deg
        self._target_angle = self._gaze_angle
        self._source_angle = self._gaze_angle
        self._dwell_left = self._draw_dwell()
        self._saccade_left = 0.0
        self._head_angle = 0.0

    def _draw_dwell(self) -> float:
        return float(self._rng.exponential(self.mean_dwell_s))

    def _pick_target(self) -> "tuple[float, float]":
        """Next gaze target and its dwell time.

        Look-aways are brief glances (a fraction of a second), dwells on a
        persona follow the exponential attention distribution.
        """
        if self._rng.random() < self.look_away_prob:
            side = 1.0 if self._rng.random() < 0.5 else -1.0
            glance = float(self._rng.uniform(0.3, 0.8))
            return side * self.look_away_angle_deg, glance
        index = int(self._rng.integers(len(self.personas)))
        return self.personas[index].angle_deg, self._draw_dwell()

    def step(self) -> "GazeSample":
        """Advance one frame and report the viewer's pose and the views."""
        dt = 1.0 / self.fps
        if self._saccade_left > 0.0:
            self._saccade_left -= dt
            progress = 1.0 - max(self._saccade_left, 0.0) / self.saccade_s
            self._gaze_angle = (
                self._source_angle
                + (self._target_angle - self._source_angle) * progress
            )
        else:
            self._gaze_angle = self._target_angle
            self._dwell_left -= dt
            if self._dwell_left <= 0.0:
                self._source_angle = self._gaze_angle
                self._target_angle, self._dwell_left = self._pick_target()
                self._saccade_left = self.saccade_s
        # Head follows the gaze with a lag, toward a partial deflection.
        head_target = self._gaze_angle * HEAD_FOLLOW_FRACTION
        self._head_angle += (head_target - self._head_angle) * min(1.0, 8.0 * dt)
        # Micro-saccades / tracker jitter.
        gaze = self._gaze_angle + float(self._rng.normal(0.0, 1.0))

        head_rad = math.radians(self._head_angle)
        camera = Camera(
            position=np.zeros(3),
            forward=np.array([math.cos(head_rad), math.sin(head_rad), 0.0]),
        )
        views = [
            PersonaView(
                persona_id=p.persona_id,
                position=p.position,
                gaze_eccentricity_deg=abs(p.angle_deg - gaze),
            )
            for p in self.personas
        ]
        return GazeSample(camera=camera, views=views, gaze_angle_deg=gaze)


@dataclass(frozen=True)
class GazeSample:
    """One frame of viewer state."""

    camera: Camera
    views: List[PersonaView]
    gaze_angle_deg: float
