"""Level-of-detail policy: the visibility-aware optimizations of Sec. 4.4.

The paper observes four *discrete* persona quality tiers on Vision Pro,
identified by their rendered triangle counts:

====================  =========  =======================================
State                 Triangles  Trigger observed by the paper
====================  =========  =======================================
FULL                  78,030     in viewport, foveal, within 3 m
DISTANT               45,036     in viewport, foveal, beyond 3 m
PERIPHERAL            21,036     in viewport, outside the foveal region
CULLED                36         outside the viewport
====================  =========  =======================================

Occlusion-aware rendering is implemented here as well but defaults to off,
matching the paper's finding that FaceTime does not adopt it; the A3
ablation turns it on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import calibration
from repro.rendering.camera import Camera, head_coverage


class VisibilityState(enum.Enum):
    """Which quality tier a persona is rendered at."""

    FULL = "full"
    DISTANT = "distant"
    PERIPHERAL = "peripheral"
    CULLED = "culled"
    OCCLUDED = "occluded"


#: Triangles rendered per tier (calibration constants from Sec. 4.4).
TIER_TRIANGLES = {
    VisibilityState.FULL: calibration.PERSONA_TRIANGLES,
    VisibilityState.DISTANT: calibration.DISTANCE_TRIANGLES,
    VisibilityState.PERIPHERAL: calibration.FOVEATED_TRIANGLES,
    VisibilityState.CULLED: calibration.VIEWPORT_CULLED_TRIANGLES,
    VisibilityState.OCCLUDED: 0,
}

#: Eccentricity (degrees from the gaze direction) beyond which a persona
#: counts as peripheral.  The foveal region of the human visual system spans
#: only a few degrees; renderers use a wider high-quality zone.
FOVEAL_ECCENTRICITY_DEG = 25.0

#: Angular radius of a head used by the occlusion test, degrees-per-meter
#: of distance (a 0.11 m head at 1 m subtends ~6.3 degrees).
HEAD_ANGULAR_RADIUS_DEG_AT_1M = 6.3


@dataclass
class PersonaView:
    """One remote persona as seen by the local viewer this frame.

    Attributes:
        persona_id: Stable identifier (the remote participant).
        position: World-space position of the persona's head.
        gaze_eccentricity_deg: Angle between the viewer's gaze direction
            and the persona, degrees.
    """

    persona_id: str
    position: np.ndarray
    gaze_eccentricity_deg: float

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)


@dataclass(frozen=True)
class LodDecision:
    """The policy's output for one persona in one frame."""

    persona_id: str
    state: VisibilityState
    triangles: int
    coverage: float
    foveated_shading: bool

    @property
    def rendered(self) -> bool:
        """Whether any geometry is submitted for this persona."""
        return self.state is not VisibilityState.OCCLUDED


@dataclass
class LodPolicy:
    """Configurable visibility-aware optimization stack.

    Defaults mirror what the paper finds FaceTime ships: viewport
    adaptation, foveated rendering, and distance-aware LOD on; occlusion
    culling off.
    """

    viewport_adaptation: bool = True
    foveated_rendering: bool = True
    distance_aware: bool = True
    occlusion_aware: bool = False
    distance_threshold_m: float = calibration.DISTANCE_LOD_THRESHOLD_M
    foveal_eccentricity_deg: float = FOVEAL_ECCENTRICITY_DEG

    def decide(self, camera: Camera,
               personas: Sequence[PersonaView]) -> List[LodDecision]:
        """Classify every persona and pick its quality tier."""
        occluded_ids = (
            self._occluded_ids(camera, personas) if self.occlusion_aware else set()
        )
        decisions = []
        for view in personas:
            decisions.append(self._decide_one(camera, view, view.persona_id in occluded_ids))
        return decisions

    def _decide_one(self, camera: Camera, view: PersonaView,
                    occluded: bool) -> LodDecision:
        distance = camera.distance_to(view.position)
        coverage = head_coverage(distance)
        if occluded:
            return LodDecision(view.persona_id, VisibilityState.OCCLUDED,
                               TIER_TRIANGLES[VisibilityState.OCCLUDED],
                               0.0, False)
        if self.viewport_adaptation and not camera.in_viewport(view.position):
            return LodDecision(view.persona_id, VisibilityState.CULLED,
                               TIER_TRIANGLES[VisibilityState.CULLED],
                               0.0, False)
        if (self.foveated_rendering
                and view.gaze_eccentricity_deg > self.foveal_eccentricity_deg):
            return LodDecision(view.persona_id, VisibilityState.PERIPHERAL,
                               TIER_TRIANGLES[VisibilityState.PERIPHERAL],
                               coverage, True)
        if self.distance_aware and distance > self.distance_threshold_m:
            return LodDecision(view.persona_id, VisibilityState.DISTANT,
                               TIER_TRIANGLES[VisibilityState.DISTANT],
                               coverage, False)
        return LodDecision(view.persona_id, VisibilityState.FULL,
                           TIER_TRIANGLES[VisibilityState.FULL],
                           coverage, False)

    def _occluded_ids(self, camera: Camera,
                      personas: Sequence[PersonaView]) -> set:
        """Personas fully hidden behind a nearer persona (angular test)."""
        occluded = set()
        ordered = sorted(personas, key=lambda v: camera.distance_to(v.position))
        for i, far in enumerate(ordered):
            far_dist = camera.distance_to(far.position)
            far_dir = camera.direction_to(far.position)
            for near in ordered[:i]:
                near_dist = camera.distance_to(near.position)
                near_dir = camera.direction_to(near.position)
                angle = np.degrees(
                    np.arccos(np.clip(np.dot(far_dir, near_dir), -1.0, 1.0))
                )
                near_radius = HEAD_ANGULAR_RADIUS_DEG_AT_1M / near_dist
                far_radius = HEAD_ANGULAR_RADIUS_DEG_AT_1M / far_dist
                if angle + far_radius <= near_radius:
                    occluded.add(far.persona_id)
                    break
        return occluded
