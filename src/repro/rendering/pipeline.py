"""The per-frame render loop with RealityKit-style counters.

Ties together attention, LOD policy, and the cost models, producing the
exact observables the paper reads off the RealityKit tool: rendered
triangles, CPU ms, GPU ms, and missed 11.1 ms deadlines (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import calibration
from repro.rendering.camera import Camera
from repro.rendering.cost import CpuCostModel, GpuCostModel
from repro.rendering.gaze import AttentionModel, ScenePersona, arrange_personas
from repro.rendering.lod import LodDecision, LodPolicy, PersonaView, VisibilityState


@dataclass(frozen=True)
class FrameStats:
    """Counters for one rendered frame."""

    frame_index: int
    triangles: int
    gpu_ms: float
    cpu_ms: float
    decisions: Sequence[LodDecision]

    @property
    def missed_deadline(self) -> bool:
        """Whether GPU work overran the 90 FPS budget (Sec. 4.5)."""
        return self.gpu_ms > calibration.FRAME_DEADLINE_MS

    def states(self) -> Dict[str, VisibilityState]:
        """persona_id -> visibility tier this frame."""
        return {d.persona_id: d.state for d in self.decisions}


@dataclass
class RenderPipeline:
    """Renders a telepresence scene frame by frame.

    Args:
        policy: The visibility-optimization stack (FaceTime defaults).
        gpu: GPU cost model (Fig. 5 fit).
        cpu: CPU cost model (Fig. 6 fit).
        seed: Seed for the cost models' measurement noise.
    """

    policy: LodPolicy = field(default_factory=LodPolicy)
    gpu: GpuCostModel = field(default_factory=GpuCostModel)
    cpu: CpuCostModel = field(default_factory=CpuCostModel)
    seed: int = 0

    def __post_init__(self) -> None:
        self.gpu.seed(self.seed)
        self.cpu.seed(self.seed + 1)

    def render_frame(self, frame_index: int, camera: Camera,
                     views: Sequence[PersonaView],
                     session_realism: bool = False) -> FrameStats:
        """Render one frame of an arbitrary scene.

        ``session_realism`` enables the contention-spike process; it is off
        for controlled single-scenario measurements (Fig. 5 pins the scene
        and shows tight stds) and on for natural sessions (Fig. 6).
        """
        decisions = self.policy.decide(camera, views)
        triangles = sum(d.triangles for d in decisions)
        spike_sources = len(views) if session_realism else 0
        gpu_ms = self.gpu.frame_time_ms(decisions, spike_sources=spike_sources)
        cpu_ms = self.cpu.frame_time_ms(len(views), spike_sources=spike_sources)
        return FrameStats(frame_index, triangles, gpu_ms, cpu_ms, tuple(decisions))

    def render_session(
        self,
        persona_ids: Sequence[str],
        duration_s: float,
        fps: float = float(calibration.TARGET_FPS),
        personas: Optional[Sequence[ScenePersona]] = None,
        attention_seed: Optional[int] = None,
    ) -> List[FrameStats]:
        """Render a whole session with natural attention dynamics.

        Args:
            persona_ids: Remote participants (n users -> n-1 personas).
            duration_s: Session length in seconds.
            fps: Display frame rate.
            personas: Optional explicit scene layout; defaults to the
                FaceTime arc arrangement.
            attention_seed: Seed for gaze dynamics (defaults to ``seed``).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        scene = list(personas) if personas is not None else arrange_personas(persona_ids)
        attention = AttentionModel(
            scene, fps=fps,
            seed=self.seed if attention_seed is None else attention_seed,
        )
        frames = []
        for index in range(int(round(duration_s * fps))):
            sample = attention.step()
            frames.append(
                self.render_frame(index, sample.camera, sample.views,
                                  session_realism=True)
            )
        return frames


def summarize(frames: Sequence[FrameStats]) -> Dict[str, float]:
    """Session-level summary in the paper's terms."""
    if not frames:
        raise ValueError("no frames to summarize")
    gpu = np.array([f.gpu_ms for f in frames])
    cpu = np.array([f.cpu_ms for f in frames])
    tri = np.array([f.triangles for f in frames], dtype=float)
    return {
        "gpu_ms_mean": float(gpu.mean()),
        "gpu_ms_std": float(gpu.std()),
        "gpu_ms_p95": float(np.percentile(gpu, 95)),
        "cpu_ms_mean": float(cpu.mean()),
        "cpu_ms_std": float(cpu.std()),
        "triangles_mean": float(tri.mean()),
        "triangles_p5": float(np.percentile(tri, 5)),
        "triangles_p95": float(np.percentile(tri, 95)),
        "deadline_miss_rate": float(
            np.mean([f.missed_deadline for f in frames])
        ),
    }
