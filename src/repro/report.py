"""Markdown report generation for the full reproduction.

Produces the paper-vs-measured record (the same content as EXPERIMENTS.md)
programmatically, so a user who changes a model can regenerate the whole
comparison with one call or ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import calibration
from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.experiments import (
    ablations,
    content_delivery,
    fig4,
    fig5,
    fig6,
    protocols,
    rate_adaptation,
    table1,
)


@dataclass(frozen=True)
class ReportSettings:
    """Knobs trading fidelity for runtime — and surviving it.

    ``jobs``/``cache`` pass through to every sweep-capable experiment
    driver, so the full reproduction shards over worker processes and
    replays unchanged cells from the on-disk result cache.  The
    crash-safety knobs pass through too: ``cell_timeout`` arms the
    per-cell watchdog, ``max_retries`` bounds transient retries,
    ``journal``/``resume`` checkpoint every finished cell so an
    interrupted report picks up where it stopped, and one shared
    ``manifest`` collects the per-cell audit record across all sweeps.
    """

    duration_s: float = 30.0
    repeats: int = calibration.MIN_REPEATS
    seed: int = 0
    jobs: int = 1
    cache: Optional[ResultCache] = None
    cell_timeout: Optional[float] = None
    max_retries: int = 1
    journal: Optional[RunJournal] = None
    resume: bool = False
    manifest: Optional[RunManifest] = None
    metrics: bool = False

    @classmethod
    def quick(cls) -> "ReportSettings":
        """Short smoke-run settings."""
        return cls(duration_s=8.0, repeats=2)

    def sweep_kwargs(self) -> dict:
        """The runner passthrough shared by every sweep-capable driver."""
        return {
            "jobs": self.jobs,
            "cache": self.cache,
            "timeout": self.cell_timeout,
            "retries": self.max_retries,
            "journal": self.journal,
            "resume": self.resume,
            "manifest": self.manifest,
        }


def _section(title: str, body: List[str]) -> str:
    return "\n".join([f"## {title}", ""] + body + [""])


def table1_section(settings: ReportSettings) -> str:
    """Table 1 markdown section."""
    result = table1.run(repeats=settings.repeats, seed=settings.seed,
                        **settings.sweep_kwargs())
    errors = [abs(m - p) for _, _, m, p in result.paper_comparison()]
    header = "| Users | " + " | ".join(
        f"{vca[:2]}-{label}" for vca, label in calibration.TABLE1_COLUMNS
    ) + " |"
    divider = "|" + "---|" * 11
    rows = [header, divider]
    for region in ("W", "M", "E"):
        cells = " | ".join(f"{v:.1f}" for v in result.row(region))
        rows.append(f"| {region} | {cells} |")
    rows.append("")
    rows.append(
        f"Mean |error| vs paper **{np.mean(errors):.1f} ms** "
        f"(worst {max(errors):.1f} ms); max cell std "
        f"{result.max_std_ms():.1f} ms (paper bound < 7 ms)."
    )
    return _section("Table 1 — server RTT matrix (ms)", rows)


def protocols_section(settings: ReportSettings) -> str:
    """Sec. 4.1 markdown section."""
    rows = ["| VCA | devices | protocol | P2P |", "|---|---|---|---|"]
    for obs in protocols.run_protocol_matrix(seed=settings.seed):
        rows.append(
            f"| {obs.vca} | {obs.device_mix} | {obs.observed_protocol} "
            f"| {obs.p2p} |"
        )
    rows.append("")
    rows.append(
        f"- RTP fallback keeps the 2D-call payload types: "
        f"**{protocols.facetime_fallback_keeps_2d_payload_type(settings.seed)}**"
    )
    verdicts = protocols.run_anycast_check(seed=settings.seed)
    rows.append(f"- Anycast verdicts: {verdicts} (paper: all unicast)")
    return _section("Sec. 4.1 — protocols, P2P, anycast", rows)


def fig4_section(settings: ReportSettings) -> str:
    """Fig. 4 markdown section."""
    result = fig4.run(duration_s=settings.duration_s,
                      repeats=settings.repeats, seed=settings.seed,
                      **settings.sweep_kwargs())
    rows = ["| cfg | measured mean | paper |", "|---|---|---|"]
    for label in fig4.CONFIGURATIONS:
        rows.append(
            f"| {label} | {result.summaries[label].mean:.2f} Mbps "
            f"| ~{fig4.PAPER_MEANS_MBPS[label]} Mbps |"
        )
    rows.append("")
    rows.append(f"Ordering F < Z < F* < T < W holds: **{result.ordering_holds()}**")
    return _section("Fig. 4 — two-party uplink throughput", rows)


def content_section(settings: ReportSettings) -> str:
    """Sec. 4.3 content-analysis markdown section."""
    mesh = content_delivery.run_mesh_streaming(seed=settings.seed)
    keypoints = content_delivery.run_keypoint_streaming(seed=settings.seed)
    latency = content_delivery.run_display_latency(seed=settings.seed)
    rows = [
        f"- Draco mesh streaming: **{mesh.summary.mean:.1f} ± "
        f"{mesh.summary.std:.1f} Mbps** (paper 107.4 ± 14.1) — ruled out.",
        f"- Keypoints + LZMA: **{keypoints.mbps.mean:.3f} ± "
        f"{keypoints.mbps.std:.3f} Mbps** (paper 0.64 ± 0.02) — consistent.",
        f"- Display-latency diff invariant under 0-1000 ms injected delay: "
        f"**{latency.local_mode_invariant()}** (paper: < 16 ms).",
    ]
    return _section("Sec. 4.3 — what is being delivered?", rows)


def rate_section(settings: ReportSettings) -> str:
    """Rate-adaptation markdown section."""
    result = rate_adaptation.run(duration_s=settings.duration_s,
                                 seed=settings.seed)
    rows = ["```", result.format_table(), "```", ""]
    rows.append(
        f"Cutoff **{result.cutoff_kbps():.0f} Kbps** (paper: 700); "
        f"no rate adaptation: **{result.no_rate_adaptation()}**."
    )
    return _section("Sec. 4.3 — rate adaptation", rows)


def fig5_section(settings: ReportSettings) -> str:
    """Fig. 5 markdown section."""
    result = fig5.run(seed=settings.seed, **settings.sweep_kwargs())
    rows = ["| scenario | triangles | GPU ms | paper |", "|---|---|---|---|"]
    for name, (tri, gpu) in fig5.PAPER_ANCHORS.items():
        s = result.gpu_ms[name]
        rows.append(
            f"| {name} | {result.triangles[name]:,} | "
            f"{s.mean:.2f} ± {s.std:.2f} | {tri:,} / {gpu:.2f} |"
        )
    occ = fig5.run_occlusion(occlusion_aware=False)
    rows.append("")
    rows.append(
        f"Occlusion optimization adopted: **{occ.optimization_adopted()}** "
        f"(paper: not adopted)."
    )
    return _section("Fig. 5 — visibility-aware optimizations", rows)


def fig6_section(settings: ReportSettings) -> str:
    """Fig. 6 markdown section."""
    rendering = fig6.run_rendering(duration_s=settings.duration_s,
                                   repeats=settings.repeats,
                                   seed=settings.seed,
                                   **settings.sweep_kwargs())
    network = fig6.run_network(duration_s=settings.duration_s / 2,
                               repeats=settings.repeats, seed=settings.seed,
                               **settings.sweep_kwargs())
    rows = ["```", rendering.format_table(), "", network.format_table(), "```",
            ""]
    rows.append(
        f"GPU p95 at five users > 9 ms: "
        f"**{rendering.gpu_approaches_deadline()}**; downlink linear: "
        f"**{network.grows_linearly()}**."
    )
    return _section("Fig. 6 — scalability", rows)


def ablations_section(settings: ReportSettings) -> str:
    """Ablations markdown section."""
    a1 = ablations.run_delivery_culling(duration_s=settings.duration_s,
                                        seed=settings.seed)
    rows = [
        f"- **A1** delivery-side culling: {a1.baseline_mbps:.2f} → "
        f"{a1.culled_mbps:.2f} Mbps ({a1.savings_fraction:.0%} saved).",
    ]
    for a2 in ablations.run_server_policies():
        rows.append(
            f"- **A2** {a2.scenario}: {a2.initiator_nearest_ms:.0f} → "
            f"{a2.geo_distributed_ms:.0f} ms "
            f"({a2.improvement_fraction:.0%} better)."
        )
    a3 = fig5.run_occlusion(occlusion_aware=True)
    rows.append(
        f"- **A3** occlusion-aware rendering: {a3.spread_triangles:,} → "
        f"{a3.line_triangles:,} triangles."
    )
    a4 = ablations.run_layered_codec(duration_s=settings.duration_s / 2,
                                     seed=settings.seed)
    rows.append(
        f"- **A4** layered semantic codec: available down to "
        f"{a4.cutoff_kbps():.0f} Kbps (FaceTime: 700 Kbps cliff)."
    )
    return _section("Ablations", rows)


def placement_section(settings: ReportSettings) -> str:
    """Placement-study markdown section: policy x k at planetary scale."""
    from repro.experiments import placement_study

    result = placement_study.run(
        users=2000, policies=["initiator-nearest", "client-nearest"],
        k_range=(2, 4), seed=settings.seed, site_step_deg=8.0,
        **settings.sweep_kwargs(),
    )
    rows = ["```", result.format_table(), "```", ""]
    best = result.best()
    rows.append(
        f"Best QoE+cost objective: **{best['policy']}** at k={best['k']} "
        f"(QoE {best['qoe_mean']:.3f}, {best['cost_units']:.1f} cost units)."
    )
    rows.append(
        f"Initiator-nearest leaves **{result.initiator_penalty():+.3f} QoE** "
        f"on the table vs client-nearest — the paper's Sec. 4.1 remedy, "
        f"restated over global demand."
    )
    return _section("Placement study — global demand x selection policy",
                    rows)


def gauntlet_section(settings: ReportSettings) -> str:
    """Fault-gauntlet markdown section: correlated incidents vs a fleet."""
    from repro.experiments import gauntlet

    result = gauntlet.run(
        scenarios=["region-outage", "mixed"],
        policies=["initiator-nearest", "load-aware"],
        fleet_sizes=[50], seed=settings.seed,
        **settings.sweep_kwargs(),
    )
    rows = ["```", result.format_table(), "```", ""]
    worst = result.worst()
    rows.append(
        f"Worst cell: **{worst['scenario']}** under {worst['policy']} at "
        f"n={worst['n_sessions']} — QoE delta {worst['qoe_delta']:+.4f} "
        f"vs the fault-free twin, {worst['recovered_fraction']:.0%} of "
        f"degraded sessions recovered by campaign end."
    )
    return _section("Fault gauntlet — correlated domains at fleet scale",
                    rows)


def scenarios_section(settings: ReportSettings) -> str:
    """Generated scenario campaigns: seeded workloads, vector QoE."""
    from repro.scenario import DISTRIBUTIONS, ScenarioGenerator, run_batch

    count = 4 if settings.repeats < calibration.MIN_REPEATS else 8
    generator = ScenarioGenerator(settings.seed, DISTRIBUTIONS["paper-calls"])
    result = run_batch(generator.batch(count), **settings.sweep_kwargs())
    rows = ["```", result.format_table(), "```", ""]
    worst = result.worst()
    means = result.dimension_means()
    rows.append(
        f"Worst scenario: **{worst['name']}** ({worst['profile']}, "
        f"{worst['topology']}, n={worst['n_participants']}) — mean QoE "
        f"{worst['qoe']:.3f}, floor {worst['qoe_min']:.3f}, limited by "
        f"**{worst['worst_dimension']}**."
    )
    rows.append(
        "Dimension means: " + ", ".join(
            f"{dim} {value:.3f}" for dim, value in means.items()
        ) + "."
    )
    return _section("Generated scenario campaigns — seeded workloads",
                    rows)


def manifest_section(settings: ReportSettings) -> str:
    """Execution audit: what the sweeps did to produce this report."""
    manifest = settings.manifest
    assert manifest is not None
    rows = [f"- {manifest.summary_line()}"]
    for cell in manifest.retried():
        rows.append(
            f"- retried: `{cell.name}` x{cell.retries} "
            f"(backoff {', '.join(f'{b:.2f}s' for b in cell.backoff_s)})"
        )
    for cell in manifest.fallbacks():
        rows.append(f"- inline fallback: `{cell.name}` after "
                    f"{cell.attempts} worker attempt(s)")
    for cell in manifest.quarantined():
        reason = (cell.error or {}).get("message", "unknown")
        rows.append(f"- quarantined: `{cell.name}` — {reason}")
    for cell in manifest.failed():
        reason = (cell.error or {}).get("message", "unknown")
        rows.append(f"- failed: `{cell.name}` — {reason}")
    return _section("Run manifest — how the sweeps executed", rows)


def metrics_section(settings: ReportSettings) -> str:
    """Observability: the metrics-registry snapshot after all sweeps."""
    from repro.obs import metrics as obs_metrics

    del settings
    snap = obs_metrics.snapshot()
    body = obs_metrics.format_snapshot(snap, title=None)
    rows = ["```", body if body else "(no instruments recorded)", "```"]
    return _section("Metrics — instrument snapshot", rows)


def generate_report(settings: ReportSettings = ReportSettings()) -> str:
    """The full markdown report."""
    sections = [
        "# Reproduction report — Immersive Telepresence on Apple Vision Pro",
        "",
        table1_section(settings),
        protocols_section(settings),
        fig4_section(settings),
        content_section(settings),
        rate_section(settings),
        fig5_section(settings),
        fig6_section(settings),
        ablations_section(settings),
        placement_section(settings),
        gauntlet_section(settings),
        scenarios_section(settings),
    ]
    if settings.manifest is not None:
        sections.append(manifest_section(settings))
    if settings.metrics:
        sections.append(metrics_section(settings))
    return "\n".join(sections)
