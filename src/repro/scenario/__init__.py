"""Declarative, seeded scenario workloads for the campaign engine.

The engine of PRs 7-9 can host thousands of cohort sessions, but every
workload it ran was a hand-coded experiment driver.  This package closes
the loop:

- :mod:`repro.scenario.spec` — a validated, JSON-round-trippable
  :class:`~repro.scenario.spec.ScenarioSpec` covering participants,
  device mix, geo placement, arrival/departure churn, multi-party
  topologies, cross-traffic storms, and fault-gauntlet attachments;
- :mod:`repro.scenario.generator` — a seeded
  :class:`~repro.scenario.generator.ScenarioGenerator` emitting
  byte-identical spec batches from sha256-derived per-field streams,
  with a library of named distributions;
- :mod:`repro.scenario.compiler` — spec ->
  :class:`~repro.vca.cohort.CohortRunner` /
  :class:`~repro.faults.cohort.CohortInjector` execution, scored with
  the multi-dimensional :class:`~repro.vca.qoe.QoeVector`;
- :mod:`repro.scenario.campaign` — generated batches as
  :class:`~repro.core.parallel.CellTask` cells on the shared parallel /
  cached / resumable campaign runner.
"""

from repro.scenario.campaign import ScenarioCampaignResult, run_batch
from repro.scenario.compiler import run_scenario_cell
from repro.scenario.generator import (
    DISTRIBUTIONS,
    ScenarioDistribution,
    ScenarioGenerator,
    to_jsonl,
)
from repro.scenario.spec import (
    CrossTrafficSpec,
    FaultSpec,
    ParticipantSpec,
    ScenarioSpec,
)

__all__ = [
    "CrossTrafficSpec",
    "DISTRIBUTIONS",
    "FaultSpec",
    "ParticipantSpec",
    "ScenarioCampaignResult",
    "ScenarioDistribution",
    "ScenarioGenerator",
    "ScenarioSpec",
    "run_batch",
    "run_scenario_cell",
    "to_jsonl",
]
