"""Generated scenario batches on the shared campaign runner.

Every scenario is one :class:`~repro.core.parallel.CellTask` whose
kwargs are the spec's plain-dict form — the canonical cache key — so a
batch is parallel, cached, resumable, and distributable exactly like
every other sweep in the package, and a re-run with ``--resume`` replays
byte-identical records from the journal.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.core.parallel import CellTask, run_tasks
from repro.scenario.compiler import run_scenario_cell
from repro.scenario.spec import ScenarioSpec

#: The QoE dimensions a scenario record always carries.
QOE_DIMENSIONS: Tuple[str, ...] = (
    "interactivity", "presence", "fidelity", "comfort",
)


@dataclass
class ScenarioCampaignResult:
    """The per-scenario outcome records of one batch."""

    records: List[Dict[str, object]]

    FIELDS = ("name", "profile", "topology", "persona", "n_participants",
              "duration_s", "fault_scenario", "fault_events",
              "cross_traffic_flows", "qoe", "qoe_min",
              "qoe_interactivity", "qoe_presence", "qoe_fidelity",
              "qoe_comfort", "worst_dimension", "availability_mean",
              "reconnects")

    def __len__(self) -> int:
        return len(self.records)

    def record(self, name: str) -> Dict[str, object]:
        """The record of one scenario by name."""
        for record in self.records:
            if record["name"] == name:
                return record
        raise KeyError(f"no scenario named {name!r} in this batch")

    def worst(self) -> Dict[str, object]:
        """The scenario with the lowest mean QoE."""
        if not self.records:
            raise ValueError("empty campaign result")
        return min(self.records, key=lambda r: r["qoe"])

    def dimension_means(self) -> Dict[str, float]:
        """Batch-mean of each QoE dimension."""
        if not self.records:
            raise ValueError("empty campaign result")
        return {
            dim: float(np.mean([r[f"qoe_{dim}"] for r in self.records]))
            for dim in QOE_DIMENSIONS
        }

    def format_table(self) -> str:
        """Printable per-scenario QoE surface."""
        lines = [
            "scenario              profile   topo       n   faults  storm"
            "    qoe   qmin  worst-dim      avail"
        ]
        for r in self.records:
            lines.append(
                f"{str(r['name']):20s}  {str(r['profile']):8s}"
                f"  {str(r['topology']):8s}  {r['n_participants']:3d}"
                f"  {r['fault_events']:6d}  {r['cross_traffic_flows']:5d}"
                f"  {r['qoe']:5.3f}  {r['qoe_min']:5.3f}"
                f"  {str(r['worst_dimension']):13s}"
                f"  {r['availability_mean']:5.1%}"
            )
        return "\n".join(lines)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Export the flat per-scenario records (stable column set)."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.FIELDS)
            for record in self.records:
                writer.writerow([record[f] for f in self.FIELDS])


def run_batch(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    *,
    timeout: Optional[float] = None,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    manifest: Optional[RunManifest] = None,
) -> ScenarioCampaignResult:
    """Execute a batch of scenarios through the campaign runner.

    Records come back in spec order regardless of execution order; the
    spec dict is both the cell's kwargs and its cache identity, so two
    batches containing the same spec share cached results.
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("scenario names within a batch must be unique")
    tasks = [
        CellTask(
            name=f"scenario/{spec.name}",
            fn=run_scenario_cell,
            kwargs={"spec": spec.to_dict()},
        )
        for spec in specs
    ]
    records = run_tasks(
        tasks, jobs=jobs, cache=cache, retries=retries, progress=progress,
        timeout=timeout, journal=journal, resume=resume, manifest=manifest,
    )
    return ScenarioCampaignResult(records=list(records))


__all__ = ["QOE_DIMENSIONS", "ScenarioCampaignResult", "run_batch"]
