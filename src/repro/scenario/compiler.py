"""Compile a :class:`ScenarioSpec` into cohort execution, score with QoE.

:func:`run_scenario_cell` is the module-level cell function the campaign
runner dispatches (it must be importable by worker processes and take
JSON-canonicalizable kwargs, hence the plain-dict spec argument).  One
call realizes one scenario end to end:

- session topologies (``p2p`` / ``sfu``) build a real
  :class:`~repro.vca.session.TelepresenceSession` on a
  :class:`~repro.vca.cohort.CohortRunner` lane, with churn windows
  realized as link blackouts, fault attachments projected through the
  correlated-domain machinery, and cross-traffic storms attached to the
  declared participants' uplinks;
- ``multi-sfu`` dispatches to the vectorized
  :func:`~repro.vca.cohort.sfu_cohort_downlink` fast path.

Either way the record carries the multi-dimensional
:class:`~repro.vca.qoe.QoeVector` (whose aggregate is bit-identical to
the legacy scalar :func:`~repro.vca.qoe.score`) from the initiator's
vantage — the paper's measurement seat.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import calibration
from repro.core.testbed import Testbed
from repro.faults.domains import build_plan, lane_schedules
from repro.faults.ladder import LEVEL_QUALITY
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    derive_seed,
    standard_disturbance,
)
from repro.geo.regions import city
from repro.netsim.crosstraffic import BulkTransferSource, OnOffBurstSource
from repro.netsim.node import Host
from repro.scenario.spec import DEVICES, ScenarioSpec
from repro.vca.cohort import (
    CohortRunner,
    sfu_cohort_downlink,
    sfu_observer_one_way_ms,
)
from repro.vca.profiles import PROFILES
from repro.vca.qoe import QoeFactors, QoeVector
from repro.vca.session import Participant, SessionResult

#: Sink ports matching the cross-traffic sources' defaults.
_SINK_PORTS = {"bulk": 58000, "burst": 58100}


def _user_id(index: int) -> str:
    return f"U{index + 1}"


def _churn_events(spec: ScenarioSpec) -> List[FaultEvent]:
    """Arrival/departure windows as link blackouts at the attachment.

    A participant arriving at ``t`` is dark over ``[0, t)``; one
    departing at ``t`` is dark over ``[t, duration)`` — the closest the
    static session topology comes to membership churn, and exactly what
    an AP-side observer of a late join or early leave records.
    """
    events: List[FaultEvent] = []
    for index, member in enumerate(spec.participants):
        target = _user_id(index)
        if member.arrives_s > 0:
            events.append(FaultEvent(FaultKind.LINK_BLACKOUT, target,
                                     0.0, member.arrives_s))
        if (member.departs_s is not None
                and member.departs_s < spec.duration_s):
            events.append(FaultEvent(
                FaultKind.LINK_BLACKOUT, target, member.departs_s,
                spec.duration_s - member.departs_s))
    return events


def _scenario_schedule(spec: ScenarioSpec) -> Optional[FaultSchedule]:
    """The merged churn + fault-attachment schedule (None when empty)."""
    events = _churn_events(spec)
    faults = spec.faults
    victim = _user_id(len(spec.participants) - 1)
    if faults.scenario == "standard":
        events.extend(standard_disturbance(spec.duration_s, victim))
    elif faults.scenario != "none":
        plan = build_plan(
            faults.scenario, spec.seed, spec.duration_s,
            np.array([faults.region_index]), n_regions=faults.n_regions)
        events.extend(lane_schedules(plan, victim)[0])
    if not events:
        return None
    return FaultSchedule.scripted(events)


def _attach_storm(spec: ScenarioSpec, session) -> None:
    """Wire the declared cross-traffic flows onto the session network.

    Each flow gets its own sink host (bound on the source kind's default
    port) and an RNG stream salted by the flow's ``seed_salt``, and is
    scheduled to start/stop inside the session window.
    """
    for index, flow in enumerate(spec.cross_traffic):
        sink = Host(f"10.9.{index}.2", city("dallas"),
                    name=f"storm-sink-{index}")
        session.network.attach(sink)
        port = _SINK_PORTS[flow.kind]
        sink.bind(port, lambda packet: None)
        seed = derive_seed(spec.seed, "storm", flow.seed_salt)
        if flow.kind == "bulk":
            source = BulkTransferSource(rate_mbps=flow.rate_mbps, seed=seed)
        else:
            source = OnOffBurstSource(burst_mbps=flow.rate_mbps, seed=seed)
        host = session.host_of(_user_id(flow.source))

        def start(source=source, host=host, address=sink.address,
                  port=port, until=flow.stop_s) -> None:
            source.attach(session.sim, host, address, port, until=until)

        session.sim.schedule_at(flow.start_s, start)


def _triangle_fraction(result: SessionResult, sender: str) -> float:
    """Time-weighted rung quality of the sender's degradation ladder."""
    if result.resilience is None:
        return 1.0
    ladder = result.resilience.ladders.get(sender)
    if ladder is None:
        return 1.0
    occupancy = ladder.occupancy(result.duration_s)
    total = sum(occupancy.values())
    if total <= 0:
        return 1.0
    quality = sum(LEVEL_QUALITY[level] * seconds
                  for level, seconds in occupancy.items())
    return min(1.0, quality / total)


def _one_way_ms(session, result: SessionResult,
                observer_index: int, sender_index: int) -> float:
    """Conversational one-way delay between two participants.

    P2P sessions take the direct path; relayed sessions go sender →
    server → observer on the wide-area model the session was built with.
    """
    path = session.network.path_model
    observer = session.participants[observer_index].location
    sender = session.participants[sender_index].location
    if result.p2p or result.server is None:
        return path.one_way_ms(sender, observer)
    relay = result.server.location
    return path.one_way_ms(sender, relay) + path.one_way_ms(relay, observer)


def _observer_vectors(spec: ScenarioSpec, session,
                      result: SessionResult) -> Dict[str, QoeVector]:
    """The initiator's QoE toward every remote sender."""
    observer_index = 0
    observer = _user_id(observer_index)
    vectors: Dict[str, QoeVector] = {}
    profile = PROFILES[spec.profile]
    spatial = observer in result.receivers
    for index in range(1, len(spec.participants)):
        sender = _user_id(index)
        address = result.addresses[sender]
        if spatial:
            stat = result.receiver_of(observer).stats.get(address)
            availability = stat.availability() if stat is not None else 0.0
            fps = stat.delivered_fps() if stat is not None else 0.0
        else:
            try:
                snap = result.stats_of(observer).snapshot(address)
                fps = snap.frame_rate_fps
            except KeyError:
                fps = 0.0
            availability = (min(1.0, fps / profile.video_fps)
                            if profile.video_fps else 0.0)
        factors = QoeFactors(
            one_way_delay_ms=_one_way_ms(session, result,
                                         observer_index, index),
            persona_availability=float(np.clip(availability, 0.0, 1.0)),
            displayed_fps=max(0.0, fps),
            triangle_fraction=_triangle_fraction(result, sender),
        )
        vectors[sender] = QoeVector.from_factors(factors)
    return vectors


def _qoe_record(vectors: List[QoeVector]) -> Dict[str, object]:
    """Aggregate a set of per-stream vectors into the record's QoE block."""
    if not vectors:
        zero = {"interactivity": 0.0, "presence": 0.0, "fidelity": 0.0,
                "comfort": 0.0}
        return {"qoe": 0.0, "qoe_min": 0.0, "worst_dimension": "presence",
                **{f"qoe_{k}": v for k, v in zero.items()}}
    means = QoeVector(
        interactivity=float(np.mean([v.interactivity for v in vectors])),
        presence=float(np.mean([v.presence for v in vectors])),
        fidelity=float(np.mean([v.fidelity for v in vectors])),
        comfort=float(np.mean([v.comfort for v in vectors])),
    )
    aggregates = [v.aggregate() for v in vectors]
    return {
        "qoe": float(np.mean(aggregates)),
        "qoe_min": float(min(aggregates)),
        "worst_dimension": means.worst_dimension(),
        "qoe_interactivity": means.interactivity,
        "qoe_presence": means.presence,
        "qoe_fidelity": means.fidelity,
        "qoe_comfort": means.comfort,
    }


def _run_session_scenario(spec: ScenarioSpec) -> Dict[str, object]:
    participants = [
        Participant(_user_id(index), DEVICES[member.device](),
                    city(member.city))
        for index, member in enumerate(spec.participants)
    ]
    testbed = Testbed(participants)
    schedule = _scenario_schedule(spec)
    runner = CohortRunner()
    injector = None
    if schedule is not None:
        from repro.faults.cohort import CohortInjector

        injector = CohortInjector.of(runner.batch, deferred=True)
    session = runner.add(lambda lane: testbed.session(
        PROFILES[spec.profile], seed=spec.seed, faults=schedule, sim=lane))
    _attach_storm(spec, session)
    if injector is not None:
        injector.seal()
    result = runner.run(spec.duration_s)[0]

    vectors = _observer_vectors(spec, session, result)
    availabilities = [v.presence for v in vectors.values()]
    record: Dict[str, object] = {
        "name": spec.name,
        "profile": spec.profile,
        "topology": spec.topology,
        "persona": result.persona_kind.value,
        "protocol": result.protocol.value,
        "p2p": result.p2p,
        "n_participants": len(spec.participants),
        "duration_s": spec.duration_s,
        "seed": spec.seed,
        "fault_scenario": spec.faults.scenario,
        "fault_events": len(schedule) if schedule is not None else 0,
        "cross_traffic_flows": len(spec.cross_traffic),
        "availability_mean": (float(np.mean(availabilities))
                              if availabilities else 0.0),
        "reconnects": (result.resilience.reconnects
                       if result.resilience is not None else 0),
    }
    record.update(_qoe_record(list(vectors.values())))
    return record


def _run_multi_sfu_scenario(spec: ScenarioSpec) -> Dict[str, object]:
    cohort = sfu_cohort_downlink(spec.fanout, spec.duration_s,
                                 seed=spec.seed)
    one_way = sfu_observer_one_way_ms(spec.fanout)
    vectors = [
        cohort.observer_qoe_vector(obs, float(one_way[obs]))
        for obs in sorted(cohort.observer_windows_mbps)
    ]
    record: Dict[str, object] = {
        "name": spec.name,
        "profile": spec.profile,
        "topology": spec.topology,
        "persona": "spatial",
        "protocol": "quic",
        "p2p": False,
        "n_participants": spec.fanout,
        "duration_s": spec.duration_s,
        "seed": spec.seed,
        "fault_scenario": "none",
        "fault_events": 0,
        "cross_traffic_flows": 0,
        "availability_mean": (float(np.mean([v.presence for v in vectors]))
                              if vectors else 0.0),
        "reconnects": 0,
        "delivered_egress_mbps": cohort.delivered_egress_mbps,
        "ingress_drop_rate": cohort.ingress_drop_rate,
        "egress_drop_rate": cohort.egress_drop_rate,
        "saturated": cohort.saturated,
    }
    record.update(_qoe_record(vectors))
    return record


def run_scenario_cell(spec: Dict[str, object]) -> Dict[str, object]:
    """Execute one scenario; the campaign cell function.

    Takes the spec in plain-dict form (the cache key must canonicalize
    to JSON) and returns a flat JSON-safe record.  Deterministic: equal
    specs yield equal records on any host or process.
    """
    parsed = ScenarioSpec.from_dict(dict(spec))
    if parsed.topology == "multi-sfu":
        return _run_multi_sfu_scenario(parsed)
    return _run_session_scenario(parsed)


__all__ = ["run_scenario_cell"]
