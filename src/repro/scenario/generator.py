"""Seeded generative workloads: distributions over :class:`ScenarioSpec`.

A :class:`ScenarioGenerator` turns ``(seed, distribution)`` into an
unbounded indexed family of scenarios.  Determinism follows the fault
scheduler's salt-chain rule (:func:`repro.faults.schedule.derive_seed`):
every sampled field of scenario ``index`` draws from its own
``derive_seed(seed, "scenario", index, field)`` stream, so

- the same ``(seed, distribution, index)`` always yields the same spec,
  byte-identical through :meth:`ScenarioSpec.to_json`, on any process or
  host; and
- adding a field to one scenario, or generating indices out of order,
  never perturbs any other scenario's draws.

The :data:`DISTRIBUTIONS` library names the shapes the experiments use:
paper-faithful 2–5-persona calls, large-cohort SFU fan-outs, churn-heavy
arrivals/departures, and storm-heavy cross-traffic mixes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.faults.schedule import derive_seed
from repro.scenario.spec import (
    CITIES,
    CROSS_TRAFFIC_KINDS,
    DEVICES,
    CrossTrafficSpec,
    FaultSpec,
    ParticipantSpec,
    ScenarioSpec,
)
from repro.vca.profiles import PROFILES


@dataclass(frozen=True)
class ScenarioDistribution:
    """A named shape for generated scenarios.

    ``fault_scenarios`` weights by repetition: ``("none", "none",
    "brownout")`` attaches a brownout to roughly one scenario in three.
    A ``fanout_range`` switches the distribution to the multi-SFU fast
    path (participants are then counted, not enumerated).
    """

    name: str
    profiles: Tuple[str, ...]
    participants_range: Tuple[int, int]
    devices: Tuple[str, ...]
    spatial_bias: float
    churn_probability: float
    storm_probability: float
    max_storm_flows: int
    fault_scenarios: Tuple[str, ...]
    duration_range: Tuple[float, float]
    fanout_range: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a distribution needs a name")
        for profile in self.profiles:
            if profile not in PROFILES:
                raise ValueError(f"unknown profile {profile!r}")
        for device in self.devices:
            if device not in DEVICES:
                raise ValueError(f"unknown device {device!r}")
        lo, hi = self.participants_range
        if not 2 <= lo <= hi:
            raise ValueError("participants_range must satisfy 2 <= lo <= hi")
        for prob_name in ("spatial_bias", "churn_probability",
                          "storm_probability"):
            value = getattr(self, prob_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{prob_name} must be in [0, 1]")
        if self.max_storm_flows < 0:
            raise ValueError("max_storm_flows must be >= 0")
        if not self.fault_scenarios:
            raise ValueError("fault_scenarios cannot be empty")
        d_lo, d_hi = self.duration_range
        if not 0 < d_lo <= d_hi:
            raise ValueError("duration_range must satisfy 0 < lo <= hi")
        if self.fanout_range is not None:
            f_lo, f_hi = self.fanout_range
            if not 2 <= f_lo <= f_hi:
                raise ValueError("fanout_range must satisfy 2 <= lo <= hi")


#: The named distribution library.
DISTRIBUTIONS: Dict[str, ScenarioDistribution] = {
    # The paper's measurement campaign: small calls, every provider,
    # heavy Vision Pro representation, occasional access-link storms and
    # the scripted standard disturbance.
    "paper-calls": ScenarioDistribution(
        name="paper-calls",
        profiles=("FaceTime", "Zoom", "Webex", "Teams"),
        participants_range=(2, 5),
        devices=("vision-pro", "macbook", "ipad", "iphone"),
        spatial_bias=0.5,
        churn_probability=0.0,
        storm_probability=0.15,
        max_storm_flows=1,
        fault_scenarios=("none", "none", "standard"),
        duration_range=(12.0, 20.0),
    ),
    # Large-cohort SFU fan-outs on the vectorized fast path.
    "large-sfu": ScenarioDistribution(
        name="large-sfu",
        profiles=("FaceTime",),
        participants_range=(2, 2),   # unused: fanout drives the count
        devices=("vision-pro",),
        spatial_bias=1.0,
        churn_probability=0.0,
        storm_probability=0.0,
        max_storm_flows=0,
        fault_scenarios=("none",),
        duration_range=(6.0, 10.0),
        fanout_range=(8, 48),
    ),
    # Mobility churn: most non-initiators arrive late or leave early.
    "churn-heavy": ScenarioDistribution(
        name="churn-heavy",
        profiles=("FaceTime", "Zoom", "Webex", "Teams"),
        participants_range=(3, 5),
        devices=("vision-pro", "macbook", "iphone"),
        spatial_bias=0.3,
        churn_probability=0.85,
        storm_probability=0.0,
        max_storm_flows=0,
        fault_scenarios=("none", "brownout"),
        duration_range=(15.0, 25.0),
    ),
    # Every scenario fights cross-traffic, often alongside a fault.
    "storm-heavy": ScenarioDistribution(
        name="storm-heavy",
        profiles=("FaceTime", "Zoom", "Webex", "Teams"),
        participants_range=(2, 4),
        devices=("vision-pro", "macbook", "ipad", "iphone"),
        spatial_bias=0.4,
        churn_probability=0.0,
        storm_probability=1.0,
        max_storm_flows=3,
        fault_scenarios=("none", "ap-storm", "brownout"),
        duration_range=(12.0, 18.0),
    ),
}


class ScenarioGenerator:
    """Deterministic spec factory over one distribution.

    ``generate(index)`` is a pure function of ``(seed, distribution,
    index)``; ``batch(count)`` is just indices ``0..count-1``.
    """

    def __init__(self, seed: int,
                 distribution: ScenarioDistribution) -> None:
        if seed < 0:
            raise ValueError("seed must be >= 0")
        self.seed = seed
        self.distribution = distribution

    def _rng(self, index: int, fieldname: str) -> np.random.Generator:
        """One independent stream per (scenario, field)."""
        return np.random.default_rng(
            derive_seed(self.seed, "scenario", index, fieldname))

    def generate(self, index: int) -> ScenarioSpec:
        """The scenario at ``index`` (index >= 0)."""
        if index < 0:
            raise ValueError("index must be >= 0")
        dist = self.distribution
        name = f"{dist.name}-{index:05d}"
        session_seed = derive_seed(self.seed, "scenario", index, "session")
        duration_s = self._draw_duration(index)
        if dist.fanout_range is not None:
            fanout = int(self._rng(index, "fanout").integers(
                dist.fanout_range[0], dist.fanout_range[1] + 1))
            return ScenarioSpec(
                name=name, profile=dist.profiles[0], topology="multi-sfu",
                duration_s=duration_s, seed=session_seed, fanout=fanout,
            )
        profile = self._draw_profile(index)
        participants = self._draw_participants(index, profile, duration_s)
        cross_traffic = self._draw_storm(index, len(participants),
                                         duration_s)
        faults = self._draw_faults(index, duration_s)
        devices = [DEVICES[p.device]() for p in participants]
        topology = ("p2p" if PROFILES[profile].uses_p2p(devices)
                    else "sfu")
        return ScenarioSpec(
            name=name, profile=profile, topology=topology,
            duration_s=duration_s, seed=session_seed,
            participants=participants, cross_traffic=cross_traffic,
            faults=faults,
        )

    def batch(self, count: int, start: int = 0) -> List[ScenarioSpec]:
        """Scenarios ``start..start+count-1`` in order."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.generate(start + i) for i in range(count)]

    # ------------------------------------------------------------------
    # Per-field draws (each on its own RNG stream)
    # ------------------------------------------------------------------

    def _draw_duration(self, index: int) -> float:
        lo, hi = self.distribution.duration_range
        # Half-second grid keeps the JSON float representation short and
        # stable across platforms.
        steps = int(round((hi - lo) / 0.5))
        draw = int(self._rng(index, "duration").integers(0, steps + 1))
        return lo + 0.5 * draw

    def _draw_profile(self, index: int) -> str:
        profiles = self.distribution.profiles
        return profiles[int(self._rng(index, "profile").integers(
            0, len(profiles)))]

    def _draw_participants(self, index: int, profile: str,
                           duration_s: float
                           ) -> Tuple[ParticipantSpec, ...]:
        dist = self.distribution
        rng = self._rng(index, "members")
        lo, hi = dist.participants_range
        n = int(rng.integers(lo, hi + 1))
        spatial = (profile == "FaceTime"
                   and bool(rng.random() < dist.spatial_bias)
                   and "vision-pro" in dist.devices)
        members: List[ParticipantSpec] = []
        for i in range(n):
            if i == 0 or spatial:
                # The paper measures from a Vision Pro; the initiator
                # always wears one, and spatial calls are all headsets.
                device = "vision-pro"
            else:
                device = dist.devices[int(rng.integers(0,
                                                       len(dist.devices)))]
            city = CITIES[int(rng.integers(0, len(CITIES)))]
            members.append(ParticipantSpec(device=device, city=city))
        return tuple(self._apply_churn(index, members, duration_s))

    def _apply_churn(self, index: int, members: List[ParticipantSpec],
                     duration_s: float) -> List[ParticipantSpec]:
        """Rewrite non-initiators with arrival/departure windows."""
        probability = self.distribution.churn_probability
        if probability <= 0.0:
            return members
        rng = self._rng(index, "churn")
        churned = [members[0]]
        for member in members[1:]:
            if rng.random() >= probability:
                churned.append(member)
                continue
            late = bool(rng.random() < 0.5)
            if late:
                # Join within the first 40% of the call, leave at end.
                arrives = round(float(rng.uniform(0.05, 0.4))
                                * duration_s, 3)
                churned.append(ParticipantSpec(
                    device=member.device, city=member.city,
                    arrives_s=arrives))
            else:
                # Present at start, leave in the last 40%.
                departs = round(float(rng.uniform(0.6, 0.95))
                                * duration_s, 3)
                churned.append(ParticipantSpec(
                    device=member.device, city=member.city,
                    departs_s=departs))
        return churned

    def _draw_storm(self, index: int, n_participants: int,
                    duration_s: float) -> Tuple[CrossTrafficSpec, ...]:
        dist = self.distribution
        if dist.storm_probability <= 0.0 or dist.max_storm_flows == 0:
            return ()
        rng = self._rng(index, "storm")
        if rng.random() >= dist.storm_probability:
            return ()
        n_flows = int(rng.integers(1, dist.max_storm_flows + 1))
        flows: List[CrossTrafficSpec] = []
        for salt in range(n_flows):
            kind = CROSS_TRAFFIC_KINDS[int(rng.integers(
                0, len(CROSS_TRAFFIC_KINDS)))]
            source = int(rng.integers(0, n_participants))
            rate = round(float(rng.uniform(20.0, 120.0)), 1)
            start = round(float(rng.uniform(0.0, 0.4)) * duration_s, 3)
            whole_call = bool(rng.random() < 0.5)
            stop = (None if whole_call else
                    round(float(rng.uniform(0.6, 1.0)) * duration_s, 3))
            flows.append(CrossTrafficSpec(
                kind=kind, source=source, rate_mbps=rate,
                start_s=start, stop_s=stop, seed_salt=salt))
        return tuple(flows)

    def _draw_faults(self, index: int, duration_s: float) -> FaultSpec:
        choices = self.distribution.fault_scenarios
        rng = self._rng(index, "faults")
        scenario = choices[int(rng.integers(0, len(choices)))]
        if scenario == "none":
            return FaultSpec()
        n_regions = 3
        region_index = int(rng.integers(0, n_regions))
        return FaultSpec(scenario=scenario, region_index=region_index,
                         n_regions=n_regions)


def to_jsonl(specs: Iterable[ScenarioSpec]) -> str:
    """One canonical-JSON spec per line; the batch artifact the
    determinism CI job byte-compares across runs."""
    return "".join(spec.to_json() + "\n" for spec in specs)


__all__ = [
    "DISTRIBUTIONS",
    "ScenarioDistribution",
    "ScenarioGenerator",
    "to_jsonl",
]
