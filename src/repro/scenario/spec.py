"""The declarative scenario specification and its JSON round trip.

A :class:`ScenarioSpec` is the complete, validated description of one
telepresence workload: who joins (device + home city), when they arrive
and leave, which provider carries the call, which topology the session
takes (P2P relay-free, SFU-relayed, or the vectorized multi-SFU fan-out
fast path), what shares the access links (cross-traffic storms), and
which fault-gauntlet scenario rides along.

Specs are frozen dataclasses with eager validation, and round-trip
losslessly through plain dicts and canonical JSON
(``sort_keys + compact separators``), so a generated batch serialized to
JSONL is byte-identical across runs and processes — the determinism
contract the scenario CI job ``cmp``'s.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import calibration
from repro.devices.models import IPad, IPhone, MacBook, VisionPro
from repro.faults.domains import SCENARIOS
from repro.vca.profiles import PROFILES, PersonaKind

#: Device-kind slug -> factory, the spec's device vocabulary.
DEVICES = {
    "vision-pro": VisionPro,
    "macbook": MacBook,
    "ipad": IPad,
    "iphone": IPhone,
}

#: City slugs resolvable by :func:`repro.geo.regions.city` — the
#: paper's eight US vantage points.
CITIES: Tuple[str, ...] = (
    "san jose", "seattle", "dallas", "chicago", "kansas city",
    "washington", "new york", "miami",
)

#: Session topologies the compiler understands.
TOPOLOGIES: Tuple[str, ...] = ("p2p", "sfu", "multi-sfu")

#: Cross-traffic flavors (:mod:`repro.netsim.crosstraffic`).
CROSS_TRAFFIC_KINDS: Tuple[str, ...] = ("bulk", "burst")

#: Attachable fault scenarios: the correlated-domain catalog plus the
#: scalar resilience study's scripted five-fault ``standard`` gauntlet.
FAULT_SCENARIOS: Tuple[str, ...] = tuple(SCENARIOS) + ("standard",)


def _require_keys(payload: Dict[str, object], allowed: Tuple[str, ...],
                  label: str) -> None:
    """Strict dict schema: unknown keys are an error, not a shrug."""
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ValueError(f"{label} has unknown keys: {unknown} "
                         f"(allowed: {sorted(allowed)})")


@dataclass(frozen=True)
class ParticipantSpec:
    """One user: a device, a home city, and an optional churn window.

    ``arrives_s`` / ``departs_s`` model mobility churn: outside the
    ``[arrives_s, departs_s)`` window the participant's attachment is
    blacked out (the compiler realizes this as
    :class:`~repro.faults.schedule.FaultKind.LINK_BLACKOUT` events), so
    a late joiner contributes no media before arriving and a leaver
    goes dark after departing.
    """

    device: str
    city: str
    arrives_s: float = 0.0
    departs_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.device not in DEVICES:
            raise ValueError(f"unknown device {self.device!r} "
                             f"(known: {sorted(DEVICES)})")
        if self.city not in CITIES:
            raise ValueError(f"unknown city {self.city!r} "
                             f"(known: {list(CITIES)})")
        if self.arrives_s < 0:
            raise ValueError("arrives_s cannot be negative")
        if self.departs_s is not None and self.departs_s <= self.arrives_s:
            raise ValueError("departs_s must be after arrives_s")

    def to_dict(self) -> Dict[str, object]:
        return {"device": self.device, "city": self.city,
                "arrives_s": self.arrives_s, "departs_s": self.departs_s}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ParticipantSpec":
        _require_keys(payload, ("device", "city", "arrives_s", "departs_s"),
                      "participant")
        return cls(
            device=str(payload["device"]),
            city=str(payload["city"]),
            arrives_s=float(payload.get("arrives_s", 0.0)),
            departs_s=(None if payload.get("departs_s") is None
                       else float(payload["departs_s"])),
        )


@dataclass(frozen=True)
class CrossTrafficSpec:
    """One background flow sharing a participant's access link.

    ``source`` is the participant index hosting the flow; ``seed_salt``
    feeds the flow's own RNG stream so two storms in one scenario stay
    independent.
    """

    kind: str
    source: int
    rate_mbps: float
    start_s: float = 0.0
    stop_s: Optional[float] = None
    seed_salt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CROSS_TRAFFIC_KINDS:
            raise ValueError(f"unknown cross-traffic kind {self.kind!r} "
                             f"(known: {list(CROSS_TRAFFIC_KINDS)})")
        if self.source < 0:
            raise ValueError("source participant index must be >= 0")
        if self.rate_mbps <= 0:
            raise ValueError("cross-traffic rate must be positive")
        if self.start_s < 0:
            raise ValueError("start_s cannot be negative")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop_s must be after start_s")
        if self.seed_salt < 0:
            raise ValueError("seed_salt must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "source": self.source,
                "rate_mbps": self.rate_mbps, "start_s": self.start_s,
                "stop_s": self.stop_s, "seed_salt": self.seed_salt}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CrossTrafficSpec":
        _require_keys(payload, ("kind", "source", "rate_mbps", "start_s",
                                "stop_s", "seed_salt"), "cross_traffic")
        return cls(
            kind=str(payload["kind"]),
            source=int(payload["source"]),
            rate_mbps=float(payload["rate_mbps"]),
            start_s=float(payload.get("start_s", 0.0)),
            stop_s=(None if payload.get("stop_s") is None
                    else float(payload["stop_s"])),
            seed_salt=int(payload.get("seed_salt", 0)),
        )


@dataclass(frozen=True)
class FaultSpec:
    """The fault-gauntlet attachment of one scenario.

    ``scenario`` names either a correlated-domain catalog entry
    (:data:`repro.faults.domains.SCENARIOS`) sampled for the session's
    home ``region_index`` out of ``n_regions``, or ``"standard"`` — the
    scalar resilience study's scripted five-fault disturbance.
    """

    scenario: str = "none"
    region_index: int = 0
    n_regions: int = 3

    def __post_init__(self) -> None:
        if self.scenario not in FAULT_SCENARIOS:
            raise ValueError(f"unknown fault scenario {self.scenario!r} "
                             f"(known: {list(FAULT_SCENARIOS)})")
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if not 0 <= self.region_index < self.n_regions:
            raise ValueError("region_index must be in [0, n_regions)")

    def to_dict(self) -> Dict[str, object]:
        return {"scenario": self.scenario,
                "region_index": self.region_index,
                "n_regions": self.n_regions}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        _require_keys(payload, ("scenario", "region_index", "n_regions"),
                      "faults")
        return cls(
            scenario=str(payload.get("scenario", "none")),
            region_index=int(payload.get("region_index", 0)),
            n_regions=int(payload.get("n_regions", 3)),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, validated telepresence workload.

    Topology is not a free choice: for ``p2p``/``sfu`` it must agree
    with what the chosen profile actually does for the device mix
    (:meth:`~repro.vca.profiles.VcaProfile.uses_p2p`), so a spec can
    never describe a session the engine would build differently.
    ``multi-sfu`` selects the vectorized
    :func:`~repro.vca.cohort.sfu_cohort_downlink` fast path instead of
    full sessions: it takes a ``fanout`` participant count, is
    FaceTime-only, and supports neither churn, cross-traffic, nor fault
    attachments (the fast path has no per-lane injector).
    """

    name: str
    profile: str
    topology: str
    duration_s: float
    seed: int
    participants: Tuple[ParticipantSpec, ...] = ()
    cross_traffic: Tuple[CrossTrafficSpec, ...] = ()
    faults: FaultSpec = field(default_factory=FaultSpec)
    fanout: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("a scenario needs a non-empty name")
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r} "
                             f"(known: {sorted(PROFILES)})")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r} "
                             f"(known: {list(TOPOLOGIES)})")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        object.__setattr__(self, "participants", tuple(self.participants))
        object.__setattr__(self, "cross_traffic", tuple(self.cross_traffic))
        if self.topology == "multi-sfu":
            self._validate_multi_sfu()
        else:
            self._validate_session()

    def _validate_multi_sfu(self) -> None:
        if self.fanout is None or self.fanout < 2:
            raise ValueError("multi-sfu needs fanout >= 2")
        if self.profile != "FaceTime":
            raise ValueError("the multi-sfu fast path models FaceTime only")
        if self.participants:
            raise ValueError("multi-sfu enumerates users by fanout, not by "
                             "participant list")
        if self.cross_traffic:
            raise ValueError("the multi-sfu fast path carries no "
                             "cross-traffic")
        if self.faults.scenario != "none":
            raise ValueError("the multi-sfu fast path has no fault injector")

    def _validate_session(self) -> None:
        if self.fanout is not None:
            raise ValueError("fanout is only meaningful for multi-sfu")
        if len(self.participants) < 2:
            raise ValueError("a session scenario needs >= 2 participants")
        profile = PROFILES[self.profile]
        devices = [DEVICES[p.device]() for p in self.participants]
        p2p = profile.uses_p2p(devices)
        if self.topology == "p2p" and not p2p:
            raise ValueError(
                f"{self.profile} does not run this device mix "
                f"peer-to-peer; declare topology 'sfu'")
        if self.topology == "sfu" and p2p:
            raise ValueError(
                f"{self.profile} runs this two-party device mix "
                f"peer-to-peer; declare topology 'p2p'")
        if (profile.persona_kind(devices) is PersonaKind.SPATIAL
                and len(devices) > calibration.MAX_SPATIAL_PERSONAS):
            raise ValueError(
                f"FaceTime caps spatial sessions at "
                f"{calibration.MAX_SPATIAL_PERSONAS} users")
        first = self.participants[0]
        if first.arrives_s != 0.0 or first.departs_s is not None:
            raise ValueError("the initiator (participant 0) anchors the "
                             "call and cannot churn")
        for index, p in enumerate(self.participants):
            if p.arrives_s >= self.duration_s:
                raise ValueError(f"participant {index} arrives after the "
                                 f"session ends")
            if p.departs_s is not None and p.departs_s > self.duration_s:
                raise ValueError(f"participant {index} departs after the "
                                 f"session ends")
        for index, flow in enumerate(self.cross_traffic):
            if flow.source >= len(self.participants):
                raise ValueError(f"cross-traffic flow {index} names "
                                 f"participant {flow.source}, but the "
                                 f"scenario has {len(self.participants)}")
            if flow.start_s >= self.duration_s:
                raise ValueError(f"cross-traffic flow {index} starts after "
                                 f"the session ends")
            if flow.stop_s is not None and flow.stop_s > self.duration_s:
                raise ValueError(f"cross-traffic flow {index} stops after "
                                 f"the session ends")
        if self.faults.scenario == "standard" and self.duration_s < 10.0:
            raise ValueError("the standard disturbance needs >= 10 s of "
                             "session")

    # ------------------------------------------------------------------
    # Round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe, lossless)."""
        return {
            "name": self.name,
            "profile": self.profile,
            "topology": self.topology,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "participants": [p.to_dict() for p in self.participants],
            "cross_traffic": [f.to_dict() for f in self.cross_traffic],
            "faults": self.faults.to_dict(),
            "fanout": self.fanout,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        """Strict inverse of :meth:`to_dict` (unknown keys raise)."""
        _require_keys(payload, ("name", "profile", "topology", "duration_s",
                                "seed", "participants", "cross_traffic",
                                "faults", "fanout"), "scenario")
        return cls(
            name=str(payload["name"]),
            profile=str(payload["profile"]),
            topology=str(payload["topology"]),
            duration_s=float(payload["duration_s"]),
            seed=int(payload["seed"]),
            participants=tuple(
                ParticipantSpec.from_dict(p)
                for p in payload.get("participants", [])
            ),
            cross_traffic=tuple(
                CrossTrafficSpec.from_dict(f)
                for f in payload.get("cross_traffic", [])
            ),
            faults=FaultSpec.from_dict(
                dict(payload.get("faults") or {})),
            fanout=(None if payload.get("fanout") is None
                    else int(payload["fanout"])),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators.

        Byte-identical across runs and processes for equal specs — the
        representation the determinism CI job compares.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @property
    def n_users(self) -> int:
        """Participant count regardless of topology."""
        return self.fanout if self.topology == "multi-sfu" else len(
            self.participants)


__all__ = [
    "CITIES",
    "CROSS_TRAFFIC_KINDS",
    "DEVICES",
    "FAULT_SCENARIOS",
    "TOPOLOGIES",
    "CrossTrafficSpec",
    "FaultSpec",
    "ParticipantSpec",
    "ScenarioSpec",
]
