"""Transport protocols: RTP (RFC 3550), simplified QUIC, and probing.

Sec. 4.1 of the paper identifies the delivery protocol per device mix by
looking at packet bytes with Wireshark: FaceTime uses QUIC when every
participant is on Vision Pro and falls back to RTP (with the Payload Types
of ordinary 2D calls) otherwise; Zoom, Webex, and Teams always use RTP.
This package produces real packet bytes for both protocols so the classifier
in :mod:`repro.analysis.protocol` can re-derive that finding from captures.
"""

from repro.transport.rtp import (
    RtpHeader,
    RtpPacketizer,
    PayloadType,
    FACETIME_VIDEO_PT,
    FACETIME_AUDIO_PT,
)
from repro.transport.quic import QuicConnection, QuicPacketHeader, is_quic_datagram
from repro.transport.probing import TcpPingResponder, tcp_ping
from repro.transport.rtcp import (
    ReceiverReport,
    ReceptionEstimator,
    ReportBlock,
    SenderReport,
    parse_rtcp,
)
from repro.transport.fec import FecDecoder, FecEncoder, FecPacket

__all__ = [
    "RtpHeader",
    "RtpPacketizer",
    "PayloadType",
    "FACETIME_VIDEO_PT",
    "FACETIME_AUDIO_PT",
    "QuicConnection",
    "QuicPacketHeader",
    "is_quic_datagram",
    "TcpPingResponder",
    "tcp_ping",
    "ReceiverReport",
    "ReceptionEstimator",
    "ReportBlock",
    "SenderReport",
    "parse_rtcp",
    "FecDecoder",
    "FecEncoder",
    "FecPacket",
]
