"""Forward error correction for loss-fragile semantic streams.

Sec. 4.3's mechanism for the 700 Kbps cliff is that "missing certain parts
of semantic information can result in failed content reconstruction" — the
stream carries no redundancy.  This module provides the classic remedy:
XOR parity across groups of ``k`` source packets (a 1D interleaved parity
code, the shape RFC 5109 standardizes for RTP).  Any single loss within a
group is recoverable at the cost of ``1/k`` extra bandwidth.

Used by the A5 loss-resilience ablation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Payload type discriminators inside the FEC framing.
_SOURCE = 0
_PARITY = 1

_HEADER = struct.Struct("<BIHH")  # kind, group id, index/k, payload length


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    if len(a) < len(b):
        a, b = b, a
    out = bytearray(a)
    for i, byte in enumerate(b):
        out[i] ^= byte
    return bytes(out)


@dataclass(frozen=True)
class FecPacket:
    """One packet of the protected stream (source or parity)."""

    group: int
    index: int          # source index within the group; k for parity
    k: int
    payload: bytes
    is_parity: bool

    def pack(self) -> bytes:
        """Serialize with the FEC framing header."""
        kind = _PARITY if self.is_parity else _SOURCE
        return _HEADER.pack(kind, self.group, self.index, self.k) + \
            struct.pack("<I", len(self.payload)) + self.payload

    @classmethod
    def parse(cls, data: bytes) -> "FecPacket":
        """Parse a framed packet.

        Raises:
            ValueError: On truncation or unknown kind.
        """
        if len(data) < _HEADER.size + 4:
            raise ValueError("truncated FEC packet")
        kind, group, index, k = _HEADER.unpack_from(data)
        if kind not in (_SOURCE, _PARITY):
            raise ValueError(f"unknown FEC kind {kind}")
        (length,) = struct.unpack_from("<I", data, _HEADER.size)
        payload = data[_HEADER.size + 4:_HEADER.size + 4 + length]
        if len(payload) != length:
            raise ValueError("truncated FEC payload")
        return cls(group, index, k, payload, kind == _PARITY)


def _length_prefixed(payload: bytes) -> bytes:
    """Length-prefix a payload so XOR recovery restores exact lengths.

    RFC 5109 protects the length field the same way: the parity covers
    the 4-byte length plus the payload bytes (implicitly zero-padded to
    the group's longest).
    """
    return struct.pack("<I", len(payload)) + payload


def _strip_length(buffer: bytes) -> bytes:
    (length,) = struct.unpack_from("<I", buffer)
    if length > len(buffer) - 4:
        raise ValueError("recovered length exceeds buffer")
    return buffer[4:4 + length]


class FecEncoder:
    """Groups source payloads and emits XOR parity after every ``k``."""

    def __init__(self, k: int = 4, first_group: int = 0) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        if first_group < 0:
            raise ValueError("first group cannot be negative")
        self.k = k
        self._group = first_group
        self._index = 0
        self._parity = b""
        self.parity_packets_sent = 0

    def protect(self, payload: bytes) -> List[FecPacket]:
        """Wrap one source payload; may append the group's parity packet."""
        packets = [FecPacket(self._group, self._index, self.k, payload, False)]
        self._parity = _xor_bytes(self._parity, _length_prefixed(payload))
        self._index += 1
        if self._index == self.k:
            packets.append(
                FecPacket(self._group, self.k, self.k, self._parity, True)
            )
            self.parity_packets_sent += 1
            self._group += 1
            self._index = 0
            self._parity = b""
        return packets

    @property
    def overhead_fraction(self) -> float:
        """Bandwidth overhead of the parity stream (1/k in packets)."""
        return 1.0 / self.k

    @property
    def next_group(self) -> int:
        """Group id the next full group will use (for encoder handover)."""
        return self._group + (1 if self._index else 0)


class AdaptiveFecPolicy:
    """Maps observed loss to an FEC group size — or None to disable.

    More loss buys more redundancy (smaller ``k``, larger parity share);
    clean links pay nothing.  The mapping is monotone non-increasing in
    ``k`` as loss grows, which the property tests check, and hysteresis is
    left to the caller's control interval (re-evaluating once per interval
    is damping enough for the simulated streams).
    """

    def __init__(self, enable_at: float = 0.005,
                 thresholds: Optional[List[tuple]] = None) -> None:
        if not 0.0 <= enable_at < 1.0:
            raise ValueError("enable threshold must be in [0, 1)")
        self.enable_at = enable_at
        # (loss at least, k) rungs, most aggressive first.
        self._thresholds = thresholds or [(0.15, 2), (0.05, 3), (0.0, 4)]

    def k_for_loss(self, loss: float) -> Optional[int]:
        """Group size for an observed loss fraction (None = FEC off).

        Raises:
            ValueError: For a loss outside [0, 1].
        """
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {loss}")
        if loss < self.enable_at:
            return None
        for at_least, k in self._thresholds:
            if loss >= at_least:
                return k
        return self._thresholds[-1][1]

    def overhead_for_loss(self, loss: float) -> float:
        """Parity bandwidth share the policy spends at this loss level."""
        k = self.k_for_loss(loss)
        return 0.0 if k is None else 1.0 / k


class FecDecoder:
    """Recovers up to one lost source packet per group."""

    def __init__(self) -> None:
        self._groups: Dict[int, Dict[int, bytes]] = {}
        self._parity: Dict[int, bytes] = {}
        self._k: Dict[int, int] = {}
        self.recovered = 0

    def receive(self, packet: FecPacket) -> List[bytes]:
        """Feed one arriving packet; returns newly available payloads.

        Source payloads are returned immediately; a recovered payload is
        returned once the parity plus ``k - 1`` sources are in hand.
        """
        group = self._groups.setdefault(packet.group, {})
        self._k[packet.group] = packet.k
        delivered: List[bytes] = []
        if packet.is_parity:
            self._parity[packet.group] = packet.payload
        else:
            if packet.index not in group:
                group[packet.index] = packet.payload
                delivered.append(packet.payload)
        recovered = self._try_recover(packet.group)
        if recovered is not None:
            delivered.append(recovered)
        self._garbage_collect(packet.group)
        return delivered

    def _try_recover(self, group_id: int) -> Optional[bytes]:
        parity = self._parity.get(group_id)
        group = self._groups.get(group_id, {})
        k = self._k.get(group_id, 0)
        if parity is None or len(group) != k - 1:
            return None
        missing = next(i for i in range(k) if i not in group)
        buffer = parity
        for source in group.values():
            buffer = _xor_bytes(buffer, _length_prefixed(source))
        try:
            payload = _strip_length(buffer)
        except (ValueError, struct.error):
            return None
        group[missing] = payload
        self.recovered += 1
        return payload

    def _garbage_collect(self, newest_group: int,
                         horizon: int = 64) -> None:
        stale = [g for g in self._groups if g < newest_group - horizon]
        for g in stale:
            self._groups.pop(g, None)
            self._parity.pop(g, None)
            self._k.pop(g, None)
