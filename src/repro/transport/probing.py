"""TCP-SYN probing ("TCP ping").

Apple's servers drop ICMP, so the paper measures network latency by running
TCP pings between the WiFi APs and the servers (Sec. 3.2).  Here a
:class:`TcpPingResponder` answers SYNs with SYN-ACKs like a listening
socket, and :func:`tcp_ping` measures the SYN → SYN-ACK round trip through
the full simulated path (shapers, AP queues, wide-area core).
"""

from __future__ import annotations

from typing import List

from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_TCP, Packet

#: TCP flag bytes carried in the probe payloads (symbolic, not a full TCP
#: implementation — only the handshake's timing matters here).
SYN = b"SYN"
SYNACK = b"SYN-ACK"

#: Port the responders listen on; the paper probes the HTTPS-ish service
#: ports the VCA servers expose.
PROBE_PORT = 443


class TcpPingResponder:
    """Attach to a host to make it answer TCP pings on ``port``."""

    def __init__(self, host: Host, port: int = PROBE_PORT) -> None:
        self.host = host
        self.port = port
        self.probes_answered = 0
        host.bind(port, self._on_syn)

    def _on_syn(self, packet: Packet) -> None:
        if packet.payload != SYN:
            return  # not a probe; ignore like a half-open filter would
        reply = packet.reply_shell(payload=SYNACK)
        reply.meta["probe_id"] = packet.meta.get("probe_id")
        self.probes_answered += 1
        self.host.send(reply)


def tcp_ping(
    sim: Simulator,
    client: Host,
    server_address: str,
    count: int = 5,
    interval_s: float = 0.2,
    client_port: int = 52000,
    server_port: int = PROBE_PORT,
    timeout_s: float = 5.0,
) -> List[float]:
    """Measure SYN → SYN-ACK RTTs from ``client`` to ``server_address``.

    Schedules ``count`` probes, runs the simulator until they have all been
    answered (or timed out), and returns the RTTs in milliseconds.

    The caller must not have bound ``client_port`` on the client already.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    send_times = {}
    rtts_ms: List[float] = []

    def on_reply(packet: Packet) -> None:
        probe_id = packet.meta.get("probe_id")
        if packet.payload == SYNACK and probe_id in send_times:
            rtts_ms.append((sim.now - send_times.pop(probe_id)) * 1000.0)

    client.bind(client_port, on_reply)

    def send_probe(probe_id: int) -> None:
        probe = Packet(
            src=client.address,
            dst=server_address,
            src_port=client_port,
            dst_port=server_port,
            protocol=IPPROTO_TCP,
            payload=SYN,
            meta={"probe_id": probe_id},
        )
        send_times[probe_id] = sim.now
        client.send(probe)

    start = sim.now
    for i in range(count):
        sim.schedule(i * interval_s, lambda probe_id=i: send_probe(probe_id))
    sim.run(until=start + count * interval_s + timeout_s)
    client.unbind(client_port)
    return rtts_ms
